"""Small shared utilities (seeded RNG streams, timers)."""

from repro.utils.rng import derive_rng, derive_seed
from repro.utils.timer import Stopwatch

__all__ = ["derive_rng", "derive_seed", "Stopwatch"]
