"""A small stopwatch used by the anytime evaluation harness."""

from __future__ import annotations

import time


class Stopwatch:
    """Measures elapsed wall-clock time since construction or the last reset."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def reset(self) -> None:
        """Restart the stopwatch."""
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds elapsed since construction or the last reset."""
        return time.perf_counter() - self._start

    def exceeded(self, budget: float) -> bool:
        """Return whether more than ``budget`` seconds have elapsed."""
        return self.elapsed >= budget
