"""Deterministic derivation of independent random streams.

Benchmark scenarios need many independent random number generators (one per
test case, per algorithm, per repetition) that are all reproducible from a
single scenario seed.  Deriving them by hashing the seed together with a
stream label avoids accidental correlation between streams and keeps results
stable when the set of algorithms changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

_StreamPart = Union[str, int]


def derive_seed(base_seed: int, *stream: _StreamPart) -> int:
    """Derive a child seed from a base seed and a stream label.

    The derivation is stable across processes and Python versions (it does
    not rely on ``hash()``).
    """
    label = ":".join(str(part) for part in (base_seed, *stream))
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(base_seed: int, *stream: _StreamPart) -> random.Random:
    """A ``random.Random`` seeded with :func:`derive_seed`."""
    return random.Random(derive_seed(base_seed, *stream))
