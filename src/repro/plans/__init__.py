"""Query plan substrate: plans, physical operators and transformations.

Plans follow the paper's model (Section 3): bushy binary trees whose leaves
are table scans and whose inner nodes are binary joins.  Every plan node is
labelled with a physical operator.  Operators also determine the *output data
representation* (materialized vs. pipelined), which is what the pseudo-code's
``SameOutput`` predicate compares.
"""

from repro.plans.arena import PlanArena, resolve_plan_engine
from repro.plans.operators import (
    DataFormat,
    JoinOperator,
    OperatorLibrary,
    ScanOperator,
)
from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.plans.transformations import ArenaTransformationRules, TransformationRules
from repro.plans.printer import explain_plan, plan_signature
from repro.plans.validation import PlanValidationError, validate_plan

__all__ = [
    "DataFormat",
    "ScanOperator",
    "JoinOperator",
    "OperatorLibrary",
    "Plan",
    "ScanPlan",
    "JoinPlan",
    "PlanArena",
    "resolve_plan_engine",
    "TransformationRules",
    "ArenaTransformationRules",
    "explain_plan",
    "plan_signature",
    "validate_plan",
    "PlanValidationError",
]
