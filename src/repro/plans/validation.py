"""Plan validation.

Validation is used by tests and by the benchmark harness to assert that every
plan produced by any algorithm is a well-formed bushy plan for its query:
every query table is scanned exactly once, joins combine disjoint table sets,
operator applicability constraints hold, and the cached cost vector is
consistent (non-negative, right arity).
"""

from __future__ import annotations

from typing import Optional

from repro.plans.operators import DataFormat, OperatorLibrary
from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.query.query import Query


class PlanValidationError(ValueError):
    """Raised when a plan violates a structural invariant."""


def validate_plan(
    plan: Plan,
    query: Query,
    library: Optional[OperatorLibrary] = None,
    num_metrics: Optional[int] = None,
    require_complete: bool = True,
) -> None:
    """Validate a plan against its query.

    Parameters
    ----------
    plan:
        The plan to validate.
    query:
        The query the plan claims to answer.
    library:
        If given, operator applicability (e.g. nested-loop joins requiring a
        materialized inner) is checked against this library.
    num_metrics:
        If given, the plan's cost vector must have exactly this many entries.
    require_complete:
        If True (default) the plan must join exactly the query's full table
        set; set to False to validate partial plans (e.g. plan-cache entries).

    Raises
    ------
    PlanValidationError
        If any invariant is violated.
    """
    if require_complete and plan.rel != query.relations:
        raise PlanValidationError(
            f"plan joins tables {sorted(plan.rel)} but the query has "
            f"tables {sorted(query.relations)}"
        )
    if not plan.rel <= query.relations:
        raise PlanValidationError(
            f"plan references tables {sorted(plan.rel - query.relations)} "
            "that are not part of the query"
        )
    _validate_node(plan, query, library, num_metrics)


def _validate_node(
    plan: Plan,
    query: Query,
    library: Optional[OperatorLibrary],
    num_metrics: Optional[int],
) -> None:
    _validate_cost_vector(plan, num_metrics)
    if isinstance(plan, ScanPlan):
        _validate_scan(plan, query)
        return
    if isinstance(plan, JoinPlan):
        _validate_join(plan, library)
        _validate_node(plan.outer, query, library, num_metrics)
        _validate_node(plan.inner, query, library, num_metrics)
        return
    raise PlanValidationError(f"unknown plan node type: {type(plan)!r}")


def _validate_cost_vector(plan: Plan, num_metrics: Optional[int]) -> None:
    if num_metrics is not None and len(plan.cost) != num_metrics:
        raise PlanValidationError(
            f"plan cost vector has {len(plan.cost)} entries, expected {num_metrics}"
        )
    if any(value < 0 for value in plan.cost):
        raise PlanValidationError(f"plan cost vector has negative entries: {plan.cost}")
    if plan.cardinality < 0:
        raise PlanValidationError(f"plan cardinality is negative: {plan.cardinality}")


def _validate_scan(plan: ScanPlan, query: Query) -> None:
    if plan.table.index not in query.relations:
        raise PlanValidationError(
            f"scan references table index {plan.table.index} outside the query"
        )
    expected = query.table(plan.table.index)
    if expected.cardinality != plan.table.cardinality:
        raise PlanValidationError(
            f"scan of {plan.table.name} uses cardinality {plan.table.cardinality} "
            f"but the query's table has {expected.cardinality}"
        )
    if plan.rel != frozenset((plan.table.index,)):
        raise PlanValidationError("scan plan rel set must contain exactly its table")
    if plan.output_format is not plan.operator.output_format:
        raise PlanValidationError("scan output format must match its operator")


def _validate_join(plan: JoinPlan, library: Optional[OperatorLibrary]) -> None:
    if plan.outer.rel & plan.inner.rel:
        raise PlanValidationError(
            "join children overlap on tables "
            f"{sorted(plan.outer.rel & plan.inner.rel)}"
        )
    if plan.rel != plan.outer.rel | plan.inner.rel:
        raise PlanValidationError("join rel set must be the union of its children")
    if plan.output_format is not plan.operator.output_format:
        raise PlanValidationError("join output format must match its operator")
    if (
        plan.operator.requires_materialized_inner
        and plan.inner.output_format is not DataFormat.MATERIALIZED
    ):
        raise PlanValidationError(
            f"{plan.operator.name} requires a materialized inner input but the "
            f"inner plan produces {plan.inner.output_format}"
        )
    if library is not None:
        applicable = library.applicable_join_operators(
            plan.outer.output_format, plan.inner.output_format
        )
        if plan.operator not in applicable:
            raise PlanValidationError(
                f"operator {plan.operator.name} is not applicable to the "
                "children's output formats under the given library"
            )
