"""Plan pretty-printing and compact signatures.

``explain_plan`` renders a plan as an indented operator tree, similar to a
database ``EXPLAIN`` output.  ``plan_signature`` produces a compact one-line
algebra-style string such as ``((t0 HJ t1) BNL t2)`` which is convenient for
logging and for deduplicating join orders in the benchmark harness.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.plans.plan import JoinPlan, Plan, ScanPlan

#: Abbreviations used by :func:`plan_signature` for the default operators.
_OPERATOR_ABBREVIATIONS = {
    "hash_join": "HJ",
    "hash_join_small": "HJs",
    "hash_join_mat": "HJm",
    "sort_merge_join": "SMJ",
    "bnl_join_small": "BNLs",
    "bnl_join_large": "BNLl",
    "nested_loop_join": "NL",
    "seq_scan": "",
    "seq_scan_mat": "!",
    "index_scan": "#",
}


def _abbreviate(name: str) -> str:
    return _OPERATOR_ABBREVIATIONS.get(name, name)


def plan_signature(plan: Plan) -> str:
    """Compact one-line rendering of a plan's join order and operators."""
    if isinstance(plan, ScanPlan):
        suffix = _abbreviate(plan.operator.name)
        return f"{plan.table.name}{suffix}"
    if isinstance(plan, JoinPlan):
        outer = plan_signature(plan.outer)
        inner = plan_signature(plan.inner)
        op = _abbreviate(plan.operator.name) or plan.operator.name
        return f"({outer} {op} {inner})"
    raise TypeError(f"unknown plan type: {type(plan)!r}")


def explain_plan(
    plan: Plan,
    metric_names: Sequence[str] | None = None,
    indent: str = "  ",
) -> str:
    """Render a plan as an indented operator tree with cost annotations.

    Parameters
    ----------
    plan:
        The plan to render.
    metric_names:
        Names for the entries of the plan's cost vector; generic names
        (``m0``, ``m1`` ...) are used when omitted.
    indent:
        Indentation string per tree level.
    """
    names = (
        list(metric_names)
        if metric_names is not None
        else [f"m{i}" for i in range(len(plan.cost))]
    )
    if len(names) != len(plan.cost):
        raise ValueError(
            f"{len(names)} metric names given for a cost vector of length {len(plan.cost)}"
        )
    lines: List[str] = []
    _explain_into(plan, names, lines, depth=0, indent=indent)
    return "\n".join(lines)


def _explain_into(
    plan: Plan,
    metric_names: Sequence[str],
    lines: List[str],
    depth: int,
    indent: str,
) -> None:
    cost_text = ", ".join(
        f"{name}={value:.3g}" for name, value in zip(metric_names, plan.cost)
    )
    prefix = indent * depth
    if isinstance(plan, ScanPlan):
        lines.append(
            f"{prefix}Scan[{plan.operator.name}] {plan.table.name} "
            f"(rows={plan.cardinality:.3g}, {cost_text})"
        )
        return
    if isinstance(plan, JoinPlan):
        lines.append(
            f"{prefix}Join[{plan.operator.name}] "
            f"(rows={plan.cardinality:.3g}, {cost_text})"
        )
        _explain_into(plan.outer, metric_names, lines, depth + 1, indent)
        _explain_into(plan.inner, metric_names, lines, depth + 1, indent)
        return
    raise TypeError(f"unknown plan type: {type(plan)!r}")
