"""Columnar plan storage: the plan arena.

A :class:`PlanArena` stores plan nodes as parallel NumPy columns instead of
linked ``Plan`` object trees.  A plan is just an ``int`` handle — the row
index of its root node — and every per-node attribute the optimizer reads in
its inner loops (operator code, child handles, cardinality, cost vector) is
one array lookup away:

::

    handle ──►  row h of the columns
                op_code[h]       int32    operator (scan codes first, then joins)
                left[h]          int32    scan: table index · join: outer handle
                right[h]         int32    scan: -1          · join: inner handle
                cardinality[h]   float64  estimated output rows
                cost[h, :]       float64  total cost vector (one column per metric)
                rel[h]           frozenset of joined table indices (Python side-car)

Design points:

* **Hash-consing.**  Nodes are deduplicated on ``(op, left, right)``: the
  same sub-plan built twice gets the same handle, so the arena grows with
  the number of *distinct* plans kept, not the number of candidates
  evaluated.  Costing is deterministic, so sharing rows is safe.
* **Cheap handles, late materialization.**  Search algorithms pass handles
  around; :meth:`to_plan` reconstructs the classic
  :class:`~repro.plans.plan.Plan` object tree (bit-identical costs and
  cardinalities) only when a caller needs one — reporting, printing,
  validation, or returning a frontier.
* **Batch-friendly.**  The cost matrix and cardinality column are exactly
  the operands the batch cost kernel (:mod:`repro.cost.batch`) needs, so
  whole candidate sets are costed with single array expressions.

The arena is storage only; costing lives in
:class:`repro.cost.batch.BatchCostModel`, which owns an arena and mirrors
:class:`~repro.cost.model.MultiObjectiveCostModel`'s plan-building surface.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.plans.operators import DataFormat, JoinOperator, ScanOperator
from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.query.query import Query

__all__ = [
    "ArenaColumnSnapshot",
    "PlanArena",
    "resolve_plan_engine",
    "PLAN_ENGINES",
]

#: Engines accepted by the ``engine=`` parameter of the search algorithms.
PLAN_ENGINES = ("arena", "object")

_INITIAL_CAPACITY = 64


def resolve_plan_engine(engine: str | None) -> str:
    """Resolve an ``engine=`` argument against the process-wide default.

    ``None`` falls back to the ``REPRO_PLAN_ENGINE`` environment variable and
    then to ``"arena"`` (the fast columnar path).  ``"object"`` pins the
    original ``Plan``-tree implementation, which is kept as the property-tested
    scalar reference.
    """
    if engine is None:
        engine = os.environ.get("REPRO_PLAN_ENGINE", "").strip() or "arena"
    if engine not in PLAN_ENGINES:
        raise ValueError(
            f"unknown plan engine {engine!r}; expected one of {PLAN_ENGINES}"
        )
    return engine


@dataclass(frozen=True)
class ArenaColumnSnapshot:
    """Read-only views of one arena row range's numeric columns.

    The export format of :meth:`PlanArena.column_snapshot`: zero-copy views
    (marked non-writeable) of the operator-code, cardinality, and cost
    columns for rows ``[start, stop)``.  Consumers that need the data to
    outlive the arena (or to land in a shared-memory segment) copy the views
    with ``np.copyto`` / slice assignment; consumers that only read — the
    batch cost kernels, the task fabric's publisher — use them in place.
    """

    #: First row covered by the views.
    start: int
    #: One past the last row covered.
    stop: int
    #: Operator codes, ``int32 (stop - start,)``.
    op_codes: np.ndarray
    #: Estimated output cardinalities, ``float64 (stop - start,)``.
    cardinalities: np.ndarray
    #: Total cost rows, ``float64 (stop - start, num_metrics)``.
    costs: np.ndarray

    def __len__(self) -> int:
        return self.stop - self.start


class PlanArena:
    """Columnar storage of plan nodes for one query / operator library.

    Parameters
    ----------
    query:
        The query whose plans are stored (tables are looked up at
        materialization time).
    scan_operators / join_operators:
        The operator library split the arena encodes operator *codes* over:
        scan operators take codes ``0 .. s-1`` in library order, join
        operators ``s .. s+j-1``.
    num_metrics:
        Width of the cost matrix.
    """

    def __init__(
        self,
        query: Query,
        scan_operators: Sequence[ScanOperator],
        join_operators: Sequence[JoinOperator],
        num_metrics: int,
    ) -> None:
        self._query = query
        self._scan_operators: Tuple[ScanOperator, ...] = tuple(scan_operators)
        self._join_operators: Tuple[JoinOperator, ...] = tuple(join_operators)
        self._num_scan_ops = len(self._scan_operators)
        self._operators: Tuple[ScanOperator | JoinOperator, ...] = (
            self._scan_operators + self._join_operators
        )
        self._num_metrics = num_metrics
        # Per-operator lookups used by vectorized consumers.
        formats = list(DataFormat)
        self._format_by_code: Tuple[DataFormat, ...] = tuple(formats)
        format_codes = {fmt: code for code, fmt in enumerate(formats)}
        self._op_format: Tuple[DataFormat, ...] = tuple(
            op.output_format for op in self._operators
        )
        self._op_format_codes = np.asarray(
            [format_codes[op.output_format] for op in self._operators],
            dtype=np.int64,
        )
        # Columns (grown by doubling) + Python side-cars.  The scalar
        # side-cars (operator codes, cardinalities, cost tuples) mirror the
        # columns: per-element NumPy indexing boxes a scalar per access,
        # which is the single hottest operation of candidate enumeration, so
        # scalar reads go through plain lists and the arrays serve the
        # vectorized gathers.
        self._size = 0
        self._op = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._left = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._right = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._card = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._cost = np.empty((_INITIAL_CAPACITY, num_metrics), dtype=np.float64)
        self._op_list: List[int] = []
        self._card_list: List[float] = []
        self._rel: List[FrozenSet[int]] = []
        # Bitset twin of the rel side-car (bit t set ⇔ table t joined);
        # maintained in O(1) per node (scan: 1 << t, join: outer | inner).
        # Python ints, so queries beyond 64 tables stay exact.
        self._rel_bits: List[int] = []
        self._cost_tuples: List[Tuple[float, ...]] = []
        self._op_format_code_list: List[int] = [
            int(code) for code in self._op_format_codes
        ]
        # Hash-consing table: (op_code, left, right) -> handle.
        self._nodes: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        """Number of distinct plan nodes stored."""
        return self._size

    @property
    def query(self) -> Query:
        """The query whose plans this arena stores."""
        return self._query

    @property
    def num_metrics(self) -> int:
        """Width of the cost matrix."""
        return self._num_metrics

    @property
    def num_scan_operators(self) -> int:
        """Number of scan operator codes (join codes start here)."""
        return self._num_scan_ops

    def operator(self, code: int) -> ScanOperator | JoinOperator:
        """The operator object behind an operator code."""
        return self._operators[code]

    @property
    def operators(self) -> Tuple[ScanOperator | JoinOperator, ...]:
        """All operators in code order (scan operators first)."""
        return self._operators

    def is_join(self, handle: int) -> bool:
        """Whether the node is a join (False: a scan)."""
        return self._op_list[handle] >= self._num_scan_ops

    def op_code(self, handle: int) -> int:
        """Operator code of the node."""
        return self._op_list[handle]

    def outer(self, handle: int) -> int:
        """Outer child handle of a join node."""
        return int(self._left[handle])

    def inner(self, handle: int) -> int:
        """Inner child handle of a join node."""
        return int(self._right[handle])

    def table_index(self, handle: int) -> int:
        """Table index of a scan node."""
        return int(self._left[handle])

    def cardinality(self, handle: int) -> float:
        """Estimated output cardinality of the node."""
        return self._card_list[handle]

    def cost(self, handle: int) -> Tuple[float, ...]:
        """Total cost vector of the node as a float tuple."""
        return self._cost_tuples[handle]

    def rel(self, handle: int) -> FrozenSet[int]:
        """The set of table indices joined by the node (``p.rel``)."""
        return self._rel[handle]

    def rel_bits(self, handle: int) -> int:
        """The node's joined table set as an int bitset (bit t ⇔ table t).

        The subset-lattice DP keys its bookkeeping by these bitsets; two
        handles join the same table set iff their ``rel_bits`` are equal.
        """
        return self._rel_bits[handle]

    def output_format(self, handle: int) -> DataFormat:
        """Output data representation of the node."""
        return self._op_format[self._op_list[handle]]

    def format_code(self, handle: int) -> int:
        """Small-integer code of the node's output data representation."""
        return self._op_format_code_list[self._op_list[handle]]

    def format_code_of_op(self, op_code: int) -> int:
        """Small-integer output-format code of an operator code."""
        return self._op_format_code_list[op_code]

    @property
    def op_code_list(self) -> List[int]:
        """Per-node operator codes as a plain list (fast scalar reads).

        Hot enumeration loops bind this once and index it directly —
        per-element NumPy indexing would box a scalar per access.  Treat it
        as read-only.
        """
        return self._op_list

    @property
    def format_code_by_op(self) -> List[int]:
        """Output-format code per operator code (read-only list)."""
        return self._op_format_code_list

    def format_codes_of_ops(self, op_codes: np.ndarray) -> np.ndarray:
        """Output-format codes gathered for an operator-code array."""
        return self._op_format_codes[op_codes]

    def num_nodes(self, handle: int) -> int:
        """Tree-node count of the plan (``k`` scans and ``k - 1`` joins)."""
        return 2 * len(self._rel[handle]) - 1

    # Vectorized column views -------------------------------------------------
    def cardinalities_of(self, handles: np.ndarray) -> np.ndarray:
        """Cardinality column gathered for the given handle array."""
        return self._card[handles]

    def costs_of(self, handles: np.ndarray) -> np.ndarray:
        """Cost-matrix rows gathered for the given handle array."""
        return self._cost[handles]

    def format_codes_of(self, handles: np.ndarray) -> np.ndarray:
        """Output-format codes gathered for the given handle array."""
        return self._op_format_codes[self._op[handles]]

    def column_snapshot(
        self, start: int = 0, stop: int | None = None
    ) -> ArenaColumnSnapshot:
        """Zero-copy read-only views of rows ``[start, stop)``.

        The snapshot/export API of the arena: the shared-memory task fabric
        publishes each DP level by copying exactly the delta rows appended
        since its last publish (``column_snapshot(published, len(arena))``)
        into its segments, and worker processes rebuild a read-only twin of
        the arena over the attached buffers.  ``stop`` defaults to the
        current size.  The views alias the live columns — they stay valid
        (and immutable) until the arena next grows its storage, so take them
        fresh per use rather than holding them across appends.
        """
        stop = self._size if stop is None else stop
        if not 0 <= start <= stop <= self._size:
            raise ValueError(
                f"invalid snapshot range [{start}, {stop}) for arena of "
                f"size {self._size}"
            )
        op_codes = self._op[start:stop]
        cardinalities = self._card[start:stop]
        costs = self._cost[start:stop]
        for view in (op_codes, cardinalities, costs):
            view.flags.writeable = False
        return ArenaColumnSnapshot(
            start=start,
            stop=stop,
            op_codes=op_codes,
            cardinalities=cardinalities,
            costs=costs,
        )

    # -------------------------------------------------------------- updates
    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._op.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(capacity * 2, needed)
        for name in ("_op", "_left", "_right", "_card"):
            column = getattr(self, name)
            grown = np.empty(new_capacity, dtype=column.dtype)
            grown[: self._size] = column[: self._size]
            setattr(self, name, grown)
        cost = np.empty((new_capacity, self._num_metrics), dtype=np.float64)
        cost[: self._size] = self._cost[: self._size]
        self._cost = cost

    def add_scan(
        self,
        op_code: int,
        table_index: int,
        cardinality: float,
        cost: Sequence[float],
    ) -> int:
        """Append (or find) a scan node; returns its handle."""
        key = (op_code, table_index, -1)
        handle = self._nodes.get(key)
        if handle is not None:
            return handle
        return self._append(
            key, frozenset((table_index,)), 1 << table_index, cardinality, cost
        )

    def add_join(
        self,
        op_code: int,
        outer: int,
        inner: int,
        cardinality: float,
        cost: Sequence[float],
    ) -> int:
        """Append (or find) a join node on two existing handles."""
        key = (op_code, outer, inner)
        handle = self._nodes.get(key)
        if handle is not None:
            return handle
        rel = self._rel[outer] | self._rel[inner]
        rel_bits = self._rel_bits[outer] | self._rel_bits[inner]
        return self._append(key, rel, rel_bits, cardinality, cost)

    def find_join(self, op_code: int, outer: int, inner: int) -> int | None:
        """Handle of an existing join node, or ``None``."""
        return self._nodes.get((op_code, outer, inner))

    def find_scan(self, op_code: int, table_index: int) -> int | None:
        """Handle of an existing scan node, or ``None``."""
        return self._nodes.get((op_code, table_index, -1))

    def _append(
        self,
        key: Tuple[int, int, int],
        rel: FrozenSet[int],
        rel_bits: int,
        cardinality: float,
        cost: Sequence[float],
    ) -> int:
        self._ensure_capacity(1)
        handle = self._size
        self._op[handle] = key[0]
        self._left[handle] = key[1]
        self._right[handle] = key[2]
        cardinality = float(cardinality)
        self._card[handle] = cardinality
        row = tuple(float(value) for value in cost)
        self._cost[handle] = row
        self._op_list.append(key[0])
        self._card_list.append(cardinality)
        self._rel.append(rel)
        self._rel_bits.append(rel_bits)
        self._cost_tuples.append(row)
        self._nodes[key] = handle
        self._size += 1
        return handle

    # -------------------------------------------------------- materialization
    def to_plan(self, handle: int, memo: Dict[int, Plan] | None = None) -> Plan:
        """Materialize the classic :class:`Plan` object tree for a handle.

        Costs and cardinalities are the stored ones, so the result is
        bit-identical to building the same plan through
        :class:`~repro.cost.model.MultiObjectiveCostModel`.  Sub-plans
        shared within the handle's tree (the arena hash-conses nodes)
        materialize to shared objects; pass a ``memo`` dict to extend that
        sharing across several calls (see :meth:`to_plans`).
        """
        if memo is None:
            memo = {}
        stack = [handle]
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            if not self.is_join(current):
                table = self._query.table(self.table_index(current))
                operator = self._operators[self.op_code(current)]
                assert isinstance(operator, ScanOperator)
                memo[current] = ScanPlan(
                    table=table,
                    operator=operator,
                    cost=self.cost(current),
                    cardinality=self.cardinality(current),
                )
                stack.pop()
                continue
            outer, inner = self.outer(current), self.inner(current)
            pending = [child for child in (outer, inner) if child not in memo]
            if pending:
                stack.extend(pending)
                continue
            operator = self._operators[self.op_code(current)]
            assert isinstance(operator, JoinOperator)
            memo[current] = JoinPlan(
                outer=memo[outer],
                inner=memo[inner],
                operator=operator,
                cost=self.cost(current),
                cardinality=self.cardinality(current),
            )
            stack.pop()
        return memo[handle]

    def to_plans(self, handles: Sequence[int]) -> List[Plan]:
        """Materialize several handles (sub-plan objects are shared per call)."""
        memo: Dict[int, Plan] = {}
        return [self.to_plan(handle, memo) for handle in handles]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanArena(nodes={self._size}, metrics={self._num_metrics})"
