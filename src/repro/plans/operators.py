"""Physical operators for scans and joins.

The paper abstracts over the concrete operator library: Section 4.3
(footnote 2) only requires that several operator implementations exist per
logical operation and that they realize different cost tradeoffs (e.g. a hash
join trades buffer space for execution time against a block-nested-loop
join).  This module provides such a library.

Operators carry the parameters that the cost models read:

* ``output_format`` — whether the operator materializes its result or streams
  it (the paper's ``SameOutput`` compares this property),
* ``memory_pages`` — how much working memory the operator allocates,
* ``parallelism`` — degree of parallelism (used by the monetary/cloud cost
  metric extension),
* ``sampling_rate`` — fraction of input rows produced by a sampling scan
  (used by the precision cost metric extension).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence, Tuple


class DataFormat(str, Enum):
    """Output data representation of an operator.

    Sub-plans producing different representations cannot be compared by cost
    alone because the representation can influence the cost (or
    applicability) of operators higher up in the plan (Section 4.2).
    """

    MATERIALIZED = "materialized"
    PIPELINED = "pipelined"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class JoinAlgorithm(str, Enum):
    """Join algorithm families with distinct cost behaviour."""

    HASH = "hash"
    SORT_MERGE = "sort_merge"
    BLOCK_NESTED_LOOP = "block_nested_loop"
    NESTED_LOOP = "nested_loop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ScanAlgorithm(str, Enum):
    """Scan algorithm families."""

    FULL = "full"
    INDEX = "index"
    SAMPLE = "sample"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ScanOperator:
    """A physical scan operator.

    Parameters
    ----------
    name:
        Unique operator name within its library.
    algorithm:
        Scan algorithm family.
    output_format:
        Output data representation.
    sampling_rate:
        Fraction of the table's rows the scan produces (1.0 = full table).
        Values below one are used by the approximate-query-processing
        extension and incur a precision-loss cost.
    parallelism:
        Degree of parallelism; speeds up the scan but increases the monetary
        cost metric.
    """

    name: str
    algorithm: ScanAlgorithm = ScanAlgorithm.FULL
    output_format: DataFormat = DataFormat.PIPELINED
    sampling_rate: float = 1.0
    parallelism: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.sampling_rate <= 1:
            raise ValueError(f"sampling rate must be in (0, 1], got {self.sampling_rate}")
        if self.parallelism < 1:
            raise ValueError(f"parallelism must be at least 1, got {self.parallelism}")

    @property
    def is_join(self) -> bool:
        """Scans are never joins; provided for symmetric operator handling."""
        return False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class JoinOperator:
    """A physical join operator.

    Parameters
    ----------
    name:
        Unique operator name within its library.
    algorithm:
        Join algorithm family; drives the time/buffer/disk formulas.
    output_format:
        Output data representation.
    memory_pages:
        Working memory the operator allocates (pages).  Larger budgets lower
        execution time (fewer passes) but raise the buffer-space metric.
    parallelism:
        Degree of parallelism; lowers execution time but raises monetary cost.
    """

    name: str
    algorithm: JoinAlgorithm
    output_format: DataFormat = DataFormat.PIPELINED
    memory_pages: float = 64.0
    parallelism: int = 1

    def __post_init__(self) -> None:
        if self.memory_pages < 1:
            raise ValueError(f"memory pages must be at least 1, got {self.memory_pages}")
        if self.parallelism < 1:
            raise ValueError(f"parallelism must be at least 1, got {self.parallelism}")

    @property
    def is_join(self) -> bool:
        """Join operators are joins; provided for symmetric operator handling."""
        return True

    @property
    def requires_materialized_inner(self) -> bool:
        """Nested-loop style joins must rescan the inner, so it must be stored."""
        return self.algorithm in (
            JoinAlgorithm.BLOCK_NESTED_LOOP,
            JoinAlgorithm.NESTED_LOOP,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class OperatorLibrary:
    """The set of scan and join operators available to the optimizer.

    The library also encodes operator applicability: nested-loop style joins
    require a materialized (re-scannable) inner input, all other operators are
    always applicable.  A hash join is always part of every library so that
    every pair of sub-plans has at least one applicable join operator.
    """

    scan_operators: Tuple[ScanOperator, ...]
    join_operators: Tuple[JoinOperator, ...]

    def __post_init__(self) -> None:
        if not self.scan_operators:
            raise ValueError("operator library needs at least one scan operator")
        if not self.join_operators:
            raise ValueError("operator library needs at least one join operator")
        scan_names = [op.name for op in self.scan_operators]
        join_names = [op.name for op in self.join_operators]
        if len(set(scan_names)) != len(scan_names):
            raise ValueError("duplicate scan operator names")
        if len(set(join_names)) != len(join_names):
            raise ValueError("duplicate join operator names")
        if not any(not op.requires_materialized_inner for op in self.join_operators):
            raise ValueError(
                "library needs at least one join operator applicable to any input"
            )

    # --------------------------------------------------------- applicability
    def applicable_scan_operators(self, table_index: int) -> Tuple[ScanOperator, ...]:
        """Scan operators applicable to the given table (all, in this model)."""
        del table_index  # all scans apply to all tables in the simplified model
        return self.scan_operators

    def applicable_join_operators(
        self, outer_format: DataFormat, inner_format: DataFormat
    ) -> Tuple[JoinOperator, ...]:
        """Join operators applicable to inputs with the given output formats."""
        del outer_format  # only the inner format restricts applicability
        return tuple(
            op
            for op in self.join_operators
            if not op.requires_materialized_inner
            or inner_format is DataFormat.MATERIALIZED
        )

    def scan_operator(self, name: str) -> ScanOperator:
        """Look up a scan operator by name."""
        for op in self.scan_operators:
            if op.name == name:
                return op
        raise KeyError(f"unknown scan operator: {name}")

    def join_operator(self, name: str) -> JoinOperator:
        """Look up a join operator by name."""
        for op in self.join_operators:
            if op.name == name:
                return op
        raise KeyError(f"unknown join operator: {name}")

    @property
    def num_operators(self) -> int:
        """Total number of operators in the library."""
        return len(self.scan_operators) + len(self.join_operators)

    # -------------------------------------------------------------- builders
    @classmethod
    def default(cls) -> "OperatorLibrary":
        """The operator library used by the paper-style experiments.

        Offers enough operator variety that a single join order realizes
        several Pareto-optimal tradeoffs between execution time, buffer space
        and disk footprint (the insight motivating Algorithm 3).
        """
        scans = (
            ScanOperator("seq_scan", ScanAlgorithm.FULL, DataFormat.PIPELINED),
            ScanOperator("seq_scan_mat", ScanAlgorithm.FULL, DataFormat.MATERIALIZED),
            ScanOperator("index_scan", ScanAlgorithm.INDEX, DataFormat.PIPELINED),
        )
        joins = (
            JoinOperator("hash_join", JoinAlgorithm.HASH, DataFormat.PIPELINED, memory_pages=4096),
            JoinOperator(
                "hash_join_small", JoinAlgorithm.HASH, DataFormat.PIPELINED, memory_pages=32
            ),
            JoinOperator(
                "hash_join_mat", JoinAlgorithm.HASH, DataFormat.MATERIALIZED, memory_pages=4096
            ),
            JoinOperator(
                "sort_merge_join", JoinAlgorithm.SORT_MERGE, DataFormat.MATERIALIZED, memory_pages=256
            ),
            JoinOperator(
                "bnl_join_small", JoinAlgorithm.BLOCK_NESTED_LOOP, DataFormat.PIPELINED, memory_pages=8
            ),
            JoinOperator(
                "bnl_join_large", JoinAlgorithm.BLOCK_NESTED_LOOP, DataFormat.PIPELINED, memory_pages=128
            ),
        )
        return cls(scan_operators=scans, join_operators=joins)

    @classmethod
    def minimal(cls) -> "OperatorLibrary":
        """Single scan and join operator; useful for unit tests and examples."""
        scans = (ScanOperator("seq_scan", ScanAlgorithm.FULL, DataFormat.PIPELINED),)
        joins = (
            JoinOperator("hash_join", JoinAlgorithm.HASH, DataFormat.PIPELINED, memory_pages=1024),
        )
        return cls(scan_operators=scans, join_operators=joins)

    @classmethod
    def cloud(cls, parallelism_levels: Sequence[int] = (1, 4, 16)) -> "OperatorLibrary":
        """Library with parallelism variants for the cloud (monetary) scenario.

        Each parallelism level produces one variant of the scan and hash join
        operators; higher parallelism lowers execution time but raises the
        monetary cost metric, which is the tradeoff motivating the cloud
        scenario in the paper's introduction.
        """
        if not parallelism_levels:
            raise ValueError("need at least one parallelism level")
        scans: List[ScanOperator] = []
        joins: List[JoinOperator] = []
        for level in parallelism_levels:
            scans.append(
                ScanOperator(
                    f"seq_scan_p{level}",
                    ScanAlgorithm.FULL,
                    DataFormat.PIPELINED,
                    parallelism=level,
                )
            )
            joins.append(
                JoinOperator(
                    f"hash_join_p{level}",
                    JoinAlgorithm.HASH,
                    DataFormat.PIPELINED,
                    memory_pages=1024,
                    parallelism=level,
                )
            )
            joins.append(
                JoinOperator(
                    f"sort_merge_join_p{level}",
                    JoinAlgorithm.SORT_MERGE,
                    DataFormat.MATERIALIZED,
                    memory_pages=256,
                    parallelism=level,
                )
            )
        return cls(scan_operators=tuple(scans), join_operators=tuple(joins))

    @classmethod
    def sampling(
        cls, sampling_rates: Sequence[float] = (1.0, 0.1, 0.01)
    ) -> "OperatorLibrary":
        """Library with sampling scan variants for approximate query processing.

        Lower sampling rates lower execution time but raise the
        precision-loss cost metric, reproducing the precision/time tradeoff
        scenario from the paper's introduction.
        """
        if not sampling_rates:
            raise ValueError("need at least one sampling rate")
        scans = tuple(
            ScanOperator(
                f"sample_scan_{rate:g}",
                ScanAlgorithm.SAMPLE if rate < 1.0 else ScanAlgorithm.FULL,
                DataFormat.PIPELINED,
                sampling_rate=rate,
            )
            for rate in sampling_rates
        )
        joins = (
            JoinOperator("hash_join", JoinAlgorithm.HASH, DataFormat.PIPELINED, memory_pages=1024),
            JoinOperator(
                "bnl_join_small", JoinAlgorithm.BLOCK_NESTED_LOOP, DataFormat.PIPELINED, memory_pages=8
            ),
        )
        return cls(scan_operators=scans, join_operators=joins)
