"""Local plan transformations for bushy query plans.

Section 4.2 of the paper assumes "the standard mutations for bushy query
plans [Steinbrunn et al.]" applied at each node of the plan tree.  Those
rules, operating on the top two levels of a (sub-)plan rooted at a join node,
are:

* **commutativity** — ``A ⋈ B  →  B ⋈ A``
* **left associativity** — ``(A ⋈ B) ⋈ C  →  A ⋈ (B ⋈ C)``
* **right associativity** — ``A ⋈ (B ⋈ C)  →  (A ⋈ B) ⋈ C``
* **left join exchange** — ``(A ⋈ B) ⋈ C  →  (A ⋈ C) ⋈ B``
* **right join exchange** — ``A ⋈ (B ⋈ C)  →  B ⋈ (A ⋈ C)``
* **operator change** — replace the physical operator of the root node

Scan nodes only mutate by operator change.  Every mutation list also contains
the identity rebuild of the input plan so that hill climbing can keep the
current structure when no transformation improves it.

All transformations are *local*: they only rebuild the top one or two join
nodes, reusing existing sub-plans, so one mutation costs O(#metrics) thanks
to the bottom-up cost vectors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.plans.operators import JoinOperator
from repro.plans.plan import JoinPlan, Plan, ScanPlan

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.cost.model import PlanFactory


class TransformationRules:
    """Generates neighbor plans via the standard bushy-plan transformations.

    Parameters
    ----------
    enable_associativity:
        Allow the two associativity rules; disabling them restricts the
        reachable plan space (useful for ablation experiments).
    enable_exchange:
        Allow the two join-exchange rules.
    enable_operator_change:
        Allow replacing the root operator by other applicable operators.
    """

    def __init__(
        self,
        enable_associativity: bool = True,
        enable_exchange: bool = True,
        enable_operator_change: bool = True,
    ) -> None:
        self.enable_associativity = enable_associativity
        self.enable_exchange = enable_exchange
        self.enable_operator_change = enable_operator_change

    # ----------------------------------------------------------- public API
    def mutations(self, plan: Plan, factory: "PlanFactory") -> List[Plan]:
        """All neighbor plans reachable from ``plan`` via one local transformation.

        The returned list always includes ``plan`` itself (the identity
        mutation) and never contains plans joining a different table set.
        """
        if isinstance(plan, ScanPlan):
            return self._scan_mutations(plan, factory)
        if isinstance(plan, JoinPlan):
            return self._join_mutations(plan, factory)
        raise TypeError(f"unknown plan type: {type(plan)!r}")

    def rebuild_join(
        self,
        outer: Plan,
        inner: Plan,
        preferred: JoinOperator,
        factory: "PlanFactory",
    ) -> JoinPlan:
        """Build ``outer ⋈ inner`` using ``preferred`` if applicable.

        Falls back to the library's first applicable operator when the
        preferred operator cannot be used on the children's output formats
        (e.g. a nested-loop join whose inner became pipelined).
        """
        applicable = factory.join_operators(outer, inner)
        operator = preferred if preferred in applicable else applicable[0]
        return factory.make_join(outer, inner, operator)

    # ------------------------------------------------------------ internals
    def _scan_mutations(self, plan: ScanPlan, factory: "PlanFactory") -> List[Plan]:
        results: List[Plan] = [plan]
        if not self.enable_operator_change:
            return results
        for operator in factory.scan_operators(plan.table.index):
            if operator != plan.operator:
                results.append(factory.make_scan(plan.table.index, operator))
        return results

    def _join_mutations(self, plan: JoinPlan, factory: "PlanFactory") -> List[Plan]:
        results: List[Plan] = [plan]
        outer, inner = plan.outer, plan.inner
        root_operator = plan.operator

        # Operator change at the root.
        if self.enable_operator_change:
            for operator in factory.join_operators(outer, inner):
                if operator != root_operator:
                    results.append(factory.make_join(outer, inner, operator))

        # Commutativity: swap outer and inner.
        for operator in self._root_operators(inner, outer, root_operator, factory):
            results.append(factory.make_join(inner, outer, operator))

        # Rules that require a join as the outer child.
        if isinstance(outer, JoinPlan):
            a, b = outer.outer, outer.inner
            if self.enable_associativity:
                # (A ⋈ B) ⋈ C  →  A ⋈ (B ⋈ C)
                new_inner = self.rebuild_join(b, inner, outer.operator, factory)
                for operator in self._root_operators(a, new_inner, root_operator, factory):
                    results.append(factory.make_join(a, new_inner, operator))
            if self.enable_exchange:
                # (A ⋈ B) ⋈ C  →  (A ⋈ C) ⋈ B
                new_outer = self.rebuild_join(a, inner, outer.operator, factory)
                for operator in self._root_operators(new_outer, b, root_operator, factory):
                    results.append(factory.make_join(new_outer, b, operator))

        # Rules that require a join as the inner child.
        if isinstance(inner, JoinPlan):
            b, c = inner.outer, inner.inner
            if self.enable_associativity:
                # A ⋈ (B ⋈ C)  →  (A ⋈ B) ⋈ C
                new_outer = self.rebuild_join(outer, b, inner.operator, factory)
                for operator in self._root_operators(new_outer, c, root_operator, factory):
                    results.append(factory.make_join(new_outer, c, operator))
            if self.enable_exchange:
                # A ⋈ (B ⋈ C)  →  B ⋈ (A ⋈ C)
                new_inner = self.rebuild_join(outer, c, inner.operator, factory)
                for operator in self._root_operators(b, new_inner, root_operator, factory):
                    results.append(factory.make_join(b, new_inner, operator))

        return results

    def _root_operators(
        self,
        outer: Plan,
        inner: Plan,
        preferred: JoinOperator,
        factory: "PlanFactory",
    ) -> List[JoinOperator]:
        """Operators to try at the root of a structural mutation.

        With operator change enabled every applicable operator is tried,
        otherwise only the preferred operator (or the first applicable one as
        a fallback) is used, keeping the number of mutations per node bounded
        by a constant in both configurations.
        """
        applicable = factory.join_operators(outer, inner)
        if self.enable_operator_change:
            return list(applicable)
        if preferred in applicable:
            return [preferred]
        return [applicable[0]]
