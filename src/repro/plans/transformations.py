"""Local plan transformations for bushy query plans.

Section 4.2 of the paper assumes "the standard mutations for bushy query
plans [Steinbrunn et al.]" applied at each node of the plan tree.  Those
rules, operating on the top two levels of a (sub-)plan rooted at a join node,
are:

* **commutativity** — ``A ⋈ B  →  B ⋈ A``
* **left associativity** — ``(A ⋈ B) ⋈ C  →  A ⋈ (B ⋈ C)``
* **right associativity** — ``A ⋈ (B ⋈ C)  →  (A ⋈ B) ⋈ C``
* **left join exchange** — ``(A ⋈ B) ⋈ C  →  (A ⋈ C) ⋈ B``
* **right join exchange** — ``A ⋈ (B ⋈ C)  →  B ⋈ (A ⋈ C)``
* **operator change** — replace the physical operator of the root node

Scan nodes only mutate by operator change.  Every mutation list also contains
the identity rebuild of the input plan so that hill climbing can keep the
current structure when no transformation improves it.

All transformations are *local*: they only rebuild the top one or two join
nodes, reusing existing sub-plans, so one mutation costs O(#metrics) thanks
to the bottom-up cost vectors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.plans.operators import JoinOperator
from repro.plans.plan import JoinPlan, Plan, ScanPlan

if TYPE_CHECKING:  # pragma: no cover - imports for type checking only
    from repro.cost.batch import BatchCostModel, JoinSpec, PlanRef
    from repro.cost.model import PlanFactory


class TransformationRules:
    """Generates neighbor plans via the standard bushy-plan transformations.

    Parameters
    ----------
    enable_associativity:
        Allow the two associativity rules; disabling them restricts the
        reachable plan space (useful for ablation experiments).
    enable_exchange:
        Allow the two join-exchange rules.
    enable_operator_change:
        Allow replacing the root operator by other applicable operators.
    """

    def __init__(
        self,
        enable_associativity: bool = True,
        enable_exchange: bool = True,
        enable_operator_change: bool = True,
    ) -> None:
        self.enable_associativity = enable_associativity
        self.enable_exchange = enable_exchange
        self.enable_operator_change = enable_operator_change

    # ----------------------------------------------------------- public API
    def mutations(self, plan: Plan, factory: "PlanFactory") -> List[Plan]:
        """All neighbor plans reachable from ``plan`` via one local transformation.

        The returned list always includes ``plan`` itself (the identity
        mutation) and never contains plans joining a different table set.
        """
        if isinstance(plan, ScanPlan):
            return self._scan_mutations(plan, factory)
        if isinstance(plan, JoinPlan):
            return self._join_mutations(plan, factory)
        raise TypeError(f"unknown plan type: {type(plan)!r}")

    def rebuild_join(
        self,
        outer: Plan,
        inner: Plan,
        preferred: JoinOperator,
        factory: "PlanFactory",
    ) -> JoinPlan:
        """Build ``outer ⋈ inner`` using ``preferred`` if applicable.

        Falls back to the library's first applicable operator when the
        preferred operator cannot be used on the children's output formats
        (e.g. a nested-loop join whose inner became pipelined).
        """
        applicable = factory.join_operators(outer, inner)
        operator = preferred if preferred in applicable else applicable[0]
        return factory.make_join(outer, inner, operator)

    # ------------------------------------------------------------ internals
    def _scan_mutations(self, plan: ScanPlan, factory: "PlanFactory") -> List[Plan]:
        results: List[Plan] = [plan]
        if not self.enable_operator_change:
            return results
        for operator in factory.scan_operators(plan.table.index):
            if operator != plan.operator:
                results.append(factory.make_scan(plan.table.index, operator))
        return results

    def _join_mutations(self, plan: JoinPlan, factory: "PlanFactory") -> List[Plan]:
        results: List[Plan] = [plan]
        outer, inner = plan.outer, plan.inner
        root_operator = plan.operator

        # Operator change at the root.
        if self.enable_operator_change:
            for operator in factory.join_operators(outer, inner):
                if operator != root_operator:
                    results.append(factory.make_join(outer, inner, operator))

        # Commutativity: swap outer and inner.
        for operator in self._root_operators(inner, outer, root_operator, factory):
            results.append(factory.make_join(inner, outer, operator))

        # Rules that require a join as the outer child.
        if isinstance(outer, JoinPlan):
            a, b = outer.outer, outer.inner
            if self.enable_associativity:
                # (A ⋈ B) ⋈ C  →  A ⋈ (B ⋈ C)
                new_inner = self.rebuild_join(b, inner, outer.operator, factory)
                for operator in self._root_operators(a, new_inner, root_operator, factory):
                    results.append(factory.make_join(a, new_inner, operator))
            if self.enable_exchange:
                # (A ⋈ B) ⋈ C  →  (A ⋈ C) ⋈ B
                new_outer = self.rebuild_join(a, inner, outer.operator, factory)
                for operator in self._root_operators(new_outer, b, root_operator, factory):
                    results.append(factory.make_join(new_outer, b, operator))

        # Rules that require a join as the inner child.
        if isinstance(inner, JoinPlan):
            b, c = inner.outer, inner.inner
            if self.enable_associativity:
                # A ⋈ (B ⋈ C)  →  (A ⋈ B) ⋈ C
                new_outer = self.rebuild_join(outer, b, inner.operator, factory)
                for operator in self._root_operators(new_outer, c, root_operator, factory):
                    results.append(factory.make_join(new_outer, c, operator))
            if self.enable_exchange:
                # A ⋈ (B ⋈ C)  →  B ⋈ (A ⋈ C)
                new_inner = self.rebuild_join(outer, c, inner.operator, factory)
                for operator in self._root_operators(b, new_inner, root_operator, factory):
                    results.append(factory.make_join(b, new_inner, operator))

        return results

    def _root_operators(
        self,
        outer: Plan,
        inner: Plan,
        preferred: JoinOperator,
        factory: "PlanFactory",
    ) -> List[JoinOperator]:
        """Operators to try at the root of a structural mutation.

        With operator change enabled every applicable operator is tried,
        otherwise only the preferred operator (or the first applicable one as
        a fallback) is used, keeping the number of mutations per node bounded
        by a constant in both configurations.
        """
        applicable = factory.join_operators(outer, inner)
        if self.enable_operator_change:
            return list(applicable)
        if preferred in applicable:
            return [preferred]
        return [applicable[0]]


class ArenaTransformationRules:
    """The same neighborhood, generated over plan-arena references.

    Mirrors :class:`TransformationRules` transformation for transformation —
    same rules, same enumeration order — but produces *uncosted*
    :class:`~repro.cost.batch.JoinSpec` candidates instead of costed
    ``Plan`` objects.  Callers collect the specs a node's whole neighborhood
    needs and cost them in one batched
    :meth:`~repro.cost.batch.BatchCostModel.cost_specs` call; only selected
    candidates are ever realized into arena nodes.  (Structural rebuilds —
    the intermediates of associativity/exchange moves — are realized
    eagerly through the hash-consing ``make_join``, so every candidate has
    handle children.)

    Parameters mirror :class:`TransformationRules`; pass an existing rules
    object to copy its ablation flags.
    """

    def __init__(
        self,
        model: "BatchCostModel",
        rules: TransformationRules | None = None,
    ) -> None:
        flags = rules if rules is not None else TransformationRules()
        self._model = model
        self._arena = model.arena
        self.enable_associativity = flags.enable_associativity
        self.enable_exchange = flags.enable_exchange
        self.enable_operator_change = flags.enable_operator_change

    # ----------------------------------------------------------- public API
    def is_join(self, ref: "PlanRef") -> bool:
        """Whether a reference (handle or pending spec) is a join."""
        return not isinstance(ref, int) or self._arena.is_join(ref)

    def children_of(self, ref: "PlanRef") -> "Tuple[PlanRef, PlanRef]":
        """Outer and inner child references of a join reference."""
        if isinstance(ref, int):
            return self._arena.outer(ref), self._arena.inner(ref)
        return ref.outer, ref.inner

    def op_code_of(self, ref: "PlanRef") -> int:
        """Operator code of a join reference."""
        return ref.op_code if not isinstance(ref, int) else self._arena.op_code(ref)

    def mutations(
        self, ref: "PlanRef", pending: "List[JoinSpec]"
    ) -> "List[PlanRef]":
        """All neighbors of ``ref`` via one local transformation (uncosted).

        Newly created specs are appended to ``pending`` for batched costing;
        the returned candidate list (which always starts with ``ref`` itself)
        matches the object rules' order element for element.
        """
        if not self.is_join(ref):
            return self._scan_mutations(ref)
        return self._join_mutations(ref, pending)

    def rebuild_join(
        self,
        outer: int,
        inner: int,
        preferred_code: int,
    ) -> int:
        """Rebuild ``outer ⋈ inner`` preferring ``preferred_code``.

        Structural rebuilds (the intermediate nodes of associativity and
        exchange moves) are realized eagerly — they are hash-consed and
        memoized, and recur across climb steps — so that every emitted
        candidate has handle children and the whole neighborhood batches
        through one vectorized costing call.
        """
        applicable = self._model.join_codes_for(inner)
        code = preferred_code if preferred_code in applicable else applicable[0]
        return self._model.make_join(outer, inner, code)

    # ------------------------------------------------------------ internals
    def _scan_mutations(self, ref: "PlanRef") -> "List[PlanRef]":
        assert isinstance(ref, int)
        results: "List[PlanRef]" = [ref]
        if not self.enable_operator_change:
            return results
        table_index = self._arena.table_index(ref)
        current_code = self._arena.op_code(ref)
        for op_code in self._model.scan_codes(table_index):
            if op_code != current_code:
                results.append(self._model.make_scan(table_index, op_code))
        return results

    def _join_mutations(
        self, ref: "PlanRef", pending: "List[JoinSpec]"
    ) -> "List[PlanRef]":
        from repro.cost.batch import JoinSpec

        results: "List[PlanRef]" = [ref]
        outer, inner = self.children_of(ref)
        root_code = self.op_code_of(ref)

        def emit(new_outer: "PlanRef", new_inner: "PlanRef", code: int) -> None:
            spec = JoinSpec(new_outer, new_inner, code)
            pending.append(spec)
            results.append(spec)

        # Operator change at the root.
        if self.enable_operator_change:
            for code in self._model.join_codes_for(inner):
                if code != root_code:
                    emit(outer, inner, code)

        # Commutativity: swap outer and inner.
        for code in self._root_codes(outer, root_code):
            emit(inner, outer, code)

        # Rules that require a join as the outer child.
        if self.is_join(outer):
            a, b = self.children_of(outer)
            outer_code = self.op_code_of(outer)
            if self.enable_associativity:
                # (A ⋈ B) ⋈ C  →  A ⋈ (B ⋈ C)
                new_inner = self.rebuild_join(b, inner, outer_code)
                for code in self._root_codes(new_inner, root_code):
                    emit(a, new_inner, code)
            if self.enable_exchange:
                # (A ⋈ B) ⋈ C  →  (A ⋈ C) ⋈ B
                new_outer = self.rebuild_join(a, inner, outer_code)
                for code in self._root_codes(b, root_code):
                    emit(new_outer, b, code)

        # Rules that require a join as the inner child.
        if self.is_join(inner):
            b, c = self.children_of(inner)
            inner_code = self.op_code_of(inner)
            if self.enable_associativity:
                # A ⋈ (B ⋈ C)  →  (A ⋈ B) ⋈ C
                new_outer = self.rebuild_join(outer, b, inner_code)
                for code in self._root_codes(c, root_code):
                    emit(new_outer, c, code)
            if self.enable_exchange:
                # A ⋈ (B ⋈ C)  →  B ⋈ (A ⋈ C)
                new_inner = self.rebuild_join(outer, c, inner_code)
                for code in self._root_codes(new_inner, root_code):
                    emit(b, new_inner, code)

        return results

    def _root_codes(self, inner: "PlanRef", preferred_code: int) -> List[int]:
        """Root operator codes for a structural mutation (see object twin)."""
        applicable = self._model.join_codes_for(inner)
        if self.enable_operator_change:
            return list(applicable)
        if preferred_code in applicable:
            return [preferred_code]
        return [applicable[0]]
