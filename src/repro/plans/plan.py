"""Bushy query plan representation.

Plans mirror the paper's formal model (Section 3):

* ``ScanPlan(q, op)`` scans a single table with scan operator ``op``.
* ``JoinPlan(outer, inner, op)`` joins the results of two sub-plans with join
  operator ``op``.
* ``p.rel`` is the set of table indices joined by plan ``p``.
* ``p.cost`` is the plan's cost vector (one entry per cost metric).

Plans are immutable.  Their cost vector and output cardinality are computed
when the plan is built (by :class:`repro.cost.model.PlanFactory`) so that
dominance checks during search are O(#metrics); this realizes the "recompute
sub-plan cost in constant time" optimization discussed in Section 4.2.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Tuple

from repro.plans.operators import DataFormat, JoinOperator, ScanOperator
from repro.query.table import Table


class Plan:
    """Common interface of scan and join plans.

    Attributes
    ----------
    rel:
        The set of table indices joined by this plan (``p.rel`` in the paper).
    cost:
        Cost vector, one non-negative entry per cost metric.
    cardinality:
        Estimated number of output rows.
    output_format:
        Output data representation (what ``SameOutput`` compares).
    """

    __slots__ = ("rel", "cost", "cardinality", "output_format")

    def __init__(
        self,
        rel: FrozenSet[int],
        cost: Tuple[float, ...],
        cardinality: float,
        output_format: DataFormat,
    ) -> None:
        self.rel = rel
        self.cost = cost
        self.cardinality = cardinality
        self.output_format = output_format

    # ----------------------------------------------------------- structure
    @property
    def is_join(self) -> bool:
        """True for join plans, False for scan plans (``p.isJoin``)."""
        raise NotImplementedError

    @property
    def num_tables(self) -> int:
        """Number of base tables joined by this plan."""
        return len(self.rel)

    def iter_nodes(self) -> Iterator["Plan"]:
        """Iterate over all plan nodes in post-order (children before parents)."""
        raise NotImplementedError

    @property
    def num_nodes(self) -> int:
        """Total number of plan nodes (scans + joins)."""
        return sum(1 for _ in self.iter_nodes())

    @property
    def height(self) -> int:
        """Height of the plan tree (a scan has height one)."""
        raise NotImplementedError

    def join_order_signature(self) -> Tuple:
        """A hashable signature of the join order, ignoring operator choices.

        Two plans with the same signature join the same table sets in the same
        tree shape; they may differ in scan/join operators.  Used by tests and
        by diversity statistics in the benchmark harness.
        """
        raise NotImplementedError

    # ------------------------------------------------------------- equality
    def structurally_equal(self, other: "Plan") -> bool:
        """Deep structural equality: same shape, tables and operators."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tables = ",".join(str(t) for t in sorted(self.rel))
        return f"{type(self).__name__}(rel={{{tables}}}, cost={self.cost})"


class ScanPlan(Plan):
    """A plan scanning a single base table."""

    __slots__ = ("table", "operator")

    def __init__(
        self,
        table: Table,
        operator: ScanOperator,
        cost: Tuple[float, ...],
        cardinality: float,
    ) -> None:
        super().__init__(
            rel=frozenset((table.index,)),
            cost=cost,
            cardinality=cardinality,
            output_format=operator.output_format,
        )
        self.table = table
        self.operator = operator

    @property
    def is_join(self) -> bool:
        return False

    @property
    def height(self) -> int:
        return 1

    def iter_nodes(self) -> Iterator[Plan]:
        yield self

    def join_order_signature(self) -> Tuple:
        return ("scan", self.table.index)

    def structurally_equal(self, other: Plan) -> bool:
        return (
            isinstance(other, ScanPlan)
            and other.table.index == self.table.index
            and other.operator == self.operator
        )


class JoinPlan(Plan):
    """A plan joining the results of an outer and an inner sub-plan."""

    __slots__ = ("outer", "inner", "operator")

    def __init__(
        self,
        outer: Plan,
        inner: Plan,
        operator: JoinOperator,
        cost: Tuple[float, ...],
        cardinality: float,
    ) -> None:
        overlap = outer.rel & inner.rel
        if overlap:
            raise ValueError(
                f"outer and inner plans overlap on tables {sorted(overlap)}"
            )
        super().__init__(
            rel=outer.rel | inner.rel,
            cost=cost,
            cardinality=cardinality,
            output_format=operator.output_format,
        )
        self.outer = outer
        self.inner = inner
        self.operator = operator

    @property
    def is_join(self) -> bool:
        return True

    @property
    def height(self) -> int:
        return 1 + max(self.outer.height, self.inner.height)

    def iter_nodes(self) -> Iterator[Plan]:
        yield from self.outer.iter_nodes()
        yield from self.inner.iter_nodes()
        yield self

    def join_order_signature(self) -> Tuple:
        return (
            "join",
            self.outer.join_order_signature(),
            self.inner.join_order_signature(),
        )

    def structurally_equal(self, other: Plan) -> bool:
        return (
            isinstance(other, JoinPlan)
            and other.operator == self.operator
            and self.outer.structurally_equal(other.outer)
            and self.inner.structurally_equal(other.inner)
        )
