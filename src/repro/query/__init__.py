"""Query model substrate.

A query in this reproduction follows the paper's formal model (Section 3): it
is a set of tables that must be joined, together with the join-graph structure
and join-predicate selectivities that the cost models need.  The submodules
provide:

``table``
    Base-table metadata (cardinality, row width).
``join_graph``
    Join-graph topologies used in the evaluation (chain, cycle, star, clique)
    and selectivity lookup between arbitrary table subsets.
``query``
    The :class:`~repro.query.query.Query` object tying tables and join graph
    together.
``catalog``
    A catalog holding multiple named tables/queries, mimicking a database
    catalog that an optimizer would consult.
``generator``
    Random query generation following Steinbrunn et al. (stratified table
    cardinalities, selectivity model) and Bruno's MinMax selectivity method,
    as used in Section 6.1 and the appendix of the paper.
"""

from repro.query.table import Table
from repro.query.join_graph import GraphShape, JoinGraph
from repro.query.query import Query
from repro.query.catalog import (
    Catalog,
    catalog_from_json_dict,
    job_sample_catalog,
    load_catalog,
)
from repro.query.generator import (
    CardinalityModel,
    GeneratorConfig,
    QueryGenerator,
    SelectivityModel,
)

__all__ = [
    "Table",
    "GraphShape",
    "JoinGraph",
    "Query",
    "Catalog",
    "catalog_from_json_dict",
    "job_sample_catalog",
    "load_catalog",
    "CardinalityModel",
    "GeneratorConfig",
    "QueryGenerator",
    "SelectivityModel",
]
