"""A simple database catalog.

The optimizer proper only needs the per-query :class:`~repro.query.query.Query`
object, but a realistic library also offers a catalog abstraction: a named
collection of base tables from which queries can be assembled.  The examples
use it to define small, readable scenarios (e.g. a cloud analytics schema).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.query.join_graph import JoinGraph
from repro.query.query import Query
from repro.query.table import DEFAULT_ROW_WIDTH_BYTES, Table


class Catalog:
    """Named collection of base tables with statistics.

    Tables registered in a catalog are identified by name.  When a query is
    built from a subset of catalog tables, the tables are re-indexed to the
    contiguous range expected by :class:`Query`.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Tuple[float, float]] = {}

    # ------------------------------------------------------------- mutation
    def add_table(
        self,
        name: str,
        cardinality: float,
        row_width: float = DEFAULT_ROW_WIDTH_BYTES,
    ) -> None:
        """Register a table; re-registering a name overwrites its statistics."""
        if cardinality < 1:
            raise ValueError(f"cardinality must be at least 1, got {cardinality}")
        if row_width <= 0:
            raise ValueError(f"row width must be positive, got {row_width}")
        self._tables[name] = (float(cardinality), float(row_width))

    def remove_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise KeyError(f"unknown table: {name}")
        del self._tables[name]

    # ------------------------------------------------------------ accessors
    def has_table(self, name: str) -> bool:
        """Return whether the catalog knows the table."""
        return name in self._tables

    def cardinality(self, name: str) -> float:
        """Cardinality of a registered table."""
        return self._tables[name][0]

    def table_names(self) -> List[str]:
        """All registered table names in insertion order."""
        return list(self._tables)

    @property
    def num_tables(self) -> int:
        """Number of registered tables."""
        return len(self._tables)

    # -------------------------------------------------------- query building
    def build_query(
        self,
        table_names: Sequence[str],
        predicates: Iterable[Tuple[str, str, float]],
        name: str = "query",
    ) -> Query:
        """Build a :class:`Query` joining the named tables.

        Parameters
        ----------
        table_names:
            Names of the tables to join; their order defines plan table
            indices.
        predicates:
            ``(left_table, right_table, selectivity)`` triples describing the
            join predicates.
        name:
            Name for the resulting query.
        """
        if not table_names:
            raise ValueError("a query needs at least one table")
        missing = [n for n in table_names if n not in self._tables]
        if missing:
            raise KeyError(f"unknown tables: {', '.join(missing)}")
        if len(set(table_names)) != len(table_names):
            raise ValueError("duplicate table names in query")

        index_of = {table_name: i for i, table_name in enumerate(table_names)}
        tables = []
        for i, table_name in enumerate(table_names):
            cardinality, row_width = self._tables[table_name]
            tables.append(
                Table(index=i, name=table_name, cardinality=cardinality, row_width=row_width)
            )

        graph = JoinGraph(len(table_names))
        for left, right, selectivity in predicates:
            if left not in index_of or right not in index_of:
                raise KeyError(f"predicate references a table outside the query: {left}, {right}")
            graph.add_edge(index_of[left], index_of[right], selectivity)
        return Query(tables, graph, name=name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Catalog(num_tables={self.num_tables})"
