"""A simple database catalog, with a JSON schema import path.

The optimizer proper only needs the per-query :class:`~repro.query.query.Query`
object, but a realistic library also offers a catalog abstraction: a named
collection of base tables from which queries can be assembled.  The examples
use it to define small, readable scenarios (e.g. a cloud analytics schema).

Beyond hand-built catalogs, :func:`load_catalog` / :func:`catalog_from_json_dict`
import a JSON schema of *real* table and column statistics (cardinalities,
row widths, per-column distinct counts).  A catalog loaded this way can be
handed to :class:`~repro.query.generator.QueryGenerator` via
``GeneratorConfig(catalog=...)`` so that generated workloads draw their base
tables from fixed, realistic statistics instead of sampled ones — the
JOB-style import path of the workload zoo.  A micro-scaled IMDB/JOB sample
schema ships with the package (:func:`job_sample_catalog`).

Examples
--------
>>> from repro.query.catalog import Catalog, catalog_from_json_dict
>>> catalog = catalog_from_json_dict({
...     "format": "repro-catalog-v1",
...     "tables": [
...         {"name": "title", "cardinality": 1000, "row_width": 94,
...          "columns": {"id": 1000, "kind_id": 7}},
...         {"name": "kind_type", "cardinality": 7, "row_width": 20},
...     ],
... })
>>> catalog.table_names()
['title', 'kind_type']
>>> catalog.join_key_distinct("title")   # largest declared distinct count
1000.0
>>> catalog.join_key_distinct("kind_type")  # no columns: fall back to |T|
7.0
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.query.join_graph import JoinGraph
from repro.query.query import Query
from repro.query.table import DEFAULT_ROW_WIDTH_BYTES, Table

#: Version tag of the catalog JSON schema format.
CATALOG_FORMAT = "repro-catalog-v1"

#: Bundled micro-scaled IMDB/JOB sample schema (shipped with the package).
_JOB_SAMPLE_PATH = os.path.join(os.path.dirname(__file__), "schemas", "imdb_job.json")


@dataclass(frozen=True)
class TableStats:
    """Statistics of one catalog table.

    ``columns`` maps column names to distinct-value counts; it may be empty
    when the schema source only provides table-level statistics.
    """

    cardinality: float
    row_width: float
    columns: Tuple[Tuple[str, float], ...] = field(default=())


class Catalog:
    """Named collection of base tables with statistics.

    Tables registered in a catalog are identified by name.  When a query is
    built from a subset of catalog tables, the tables are re-indexed to the
    contiguous range expected by :class:`Query`.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, TableStats] = {}

    # ------------------------------------------------------------- mutation
    def add_table(
        self,
        name: str,
        cardinality: float,
        row_width: float = DEFAULT_ROW_WIDTH_BYTES,
        columns: Mapping[str, float] | None = None,
    ) -> None:
        """Register a table; re-registering a name overwrites its statistics.

        ``columns`` optionally maps column names to distinct-value counts
        (each at least 1 and at most the table cardinality is *not*
        enforced — real-world statistics are often stale — but counts must
        be positive).
        """
        if cardinality < 1:
            raise ValueError(f"cardinality must be at least 1, got {cardinality}")
        if row_width <= 0:
            raise ValueError(f"row width must be positive, got {row_width}")
        column_stats: List[Tuple[str, float]] = []
        for column_name, distinct in (columns or {}).items():
            if distinct < 1:
                raise ValueError(
                    f"column {name}.{column_name}: distinct count must be at "
                    f"least 1, got {distinct}"
                )
            column_stats.append((column_name, float(distinct)))
        self._tables[name] = TableStats(
            cardinality=float(cardinality),
            row_width=float(row_width),
            columns=tuple(column_stats),
        )

    def remove_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise KeyError(f"unknown table: {name}")
        del self._tables[name]

    # ------------------------------------------------------------ accessors
    def has_table(self, name: str) -> bool:
        """Return whether the catalog knows the table."""
        return name in self._tables

    def cardinality(self, name: str) -> float:
        """Cardinality of a registered table."""
        return self._tables[name].cardinality

    def row_width(self, name: str) -> float:
        """Row width (bytes) of a registered table."""
        return self._tables[name].row_width

    def columns(self, name: str) -> Tuple[Tuple[str, float], ...]:
        """``(column name, distinct count)`` pairs of a registered table."""
        return self._tables[name].columns

    def join_key_distinct(self, name: str) -> float:
        """Distinct count of the table's most selective join key.

        The largest declared per-column distinct count — the canonical
        choice for an equi-join key (primary keys dominate).  Falls back to
        the table cardinality when the schema declares no columns, which is
        the textbook upper bound for a key column.
        """
        stats = self._tables[name]
        if not stats.columns:
            return stats.cardinality
        return max(distinct for _, distinct in stats.columns)

    def table_names(self) -> List[str]:
        """All registered table names in insertion order."""
        return list(self._tables)

    @property
    def num_tables(self) -> int:
        """Number of registered tables."""
        return len(self._tables)

    # -------------------------------------------------------- query building
    def build_query(
        self,
        table_names: Sequence[str],
        predicates: Iterable[Tuple[str, str, float]],
        name: str = "query",
    ) -> Query:
        """Build a :class:`Query` joining the named tables.

        Parameters
        ----------
        table_names:
            Names of the tables to join; their order defines plan table
            indices.
        predicates:
            ``(left_table, right_table, selectivity)`` triples describing the
            join predicates.
        name:
            Name for the resulting query.
        """
        if not table_names:
            raise ValueError("a query needs at least one table")
        missing = [n for n in table_names if n not in self._tables]
        if missing:
            raise KeyError(f"unknown tables: {', '.join(missing)}")
        if len(set(table_names)) != len(table_names):
            raise ValueError("duplicate table names in query")

        index_of = {table_name: i for i, table_name in enumerate(table_names)}
        tables = []
        for i, table_name in enumerate(table_names):
            stats = self._tables[table_name]
            tables.append(
                Table(
                    index=i,
                    name=table_name,
                    cardinality=stats.cardinality,
                    row_width=stats.row_width,
                )
            )

        graph = JoinGraph(len(table_names))
        for left, right, selectivity in predicates:
            if left not in index_of or right not in index_of:
                raise KeyError(f"predicate references a table outside the query: {left}, {right}")
            graph.add_edge(index_of[left], index_of[right], selectivity)
        return Query(tables, graph, name=name)

    # -------------------------------------------------------- serialization
    def to_json_dict(self) -> dict:
        """Plain-JSON schema of the catalog (:data:`CATALOG_FORMAT`).

        Round-trips exactly through :func:`catalog_from_json_dict`; the
        scenario layer embeds this representation in specs so that
        catalog-backed workloads stay serializable and provenance-hashable.
        """
        return {
            "format": CATALOG_FORMAT,
            "tables": [
                {
                    "name": name,
                    "cardinality": stats.cardinality,
                    "row_width": stats.row_width,
                    "columns": {column: distinct for column, distinct in stats.columns},
                }
                for name, stats in self._tables.items()
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Catalog(num_tables={self.num_tables})"


def catalog_from_json_dict(data: dict) -> Catalog:
    """Build a :class:`Catalog` from a JSON schema dict.

    The schema must carry the :data:`CATALOG_FORMAT` tag and a ``tables``
    list; every table needs a unique ``name`` and a ``cardinality``, and may
    declare a ``row_width`` and a ``columns`` mapping of distinct counts.
    Malformed schemas raise ``ValueError`` naming the offending table — a
    corrupt schema must never silently shrink a workload.
    """
    if not isinstance(data, dict):
        raise ValueError(f"catalog schema must be a JSON object, got {type(data).__name__}")
    if data.get("format") != CATALOG_FORMAT:
        raise ValueError(
            f"not a {CATALOG_FORMAT} schema (format={data.get('format')!r})"
        )
    tables = data.get("tables")
    if not isinstance(tables, list) or not tables:
        raise ValueError("catalog schema needs a non-empty 'tables' list")
    catalog = Catalog()
    for position, entry in enumerate(tables):
        if not isinstance(entry, dict) or "name" not in entry or "cardinality" not in entry:
            raise ValueError(
                f"catalog table #{position}: needs at least 'name' and 'cardinality'"
            )
        name = entry["name"]
        if not isinstance(name, str) or not name:
            raise ValueError(f"catalog table #{position}: invalid name {name!r}")
        if catalog.has_table(name):
            raise ValueError(f"catalog table {name!r} is declared twice")
        columns = entry.get("columns") or {}
        if not isinstance(columns, dict):
            raise ValueError(f"catalog table {name!r}: 'columns' must be a mapping")
        try:
            catalog.add_table(
                name,
                float(entry["cardinality"]),
                row_width=float(entry.get("row_width", DEFAULT_ROW_WIDTH_BYTES)),
                columns={column: float(distinct) for column, distinct in columns.items()},
            )
        except (TypeError, ValueError) as error:
            raise ValueError(f"catalog table {name!r}: {error}") from None
    return catalog


def load_catalog(path: str) -> Catalog:
    """Load a :data:`CATALOG_FORMAT` JSON schema file into a :class:`Catalog`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON ({error})") from None
    try:
        return catalog_from_json_dict(data)
    except ValueError as error:
        raise ValueError(f"{path}: {error}") from None


def job_sample_catalog() -> Catalog:
    """The bundled micro-scaled IMDB/JOB sample schema.

    Real table/column statistics (scaled-down cardinalities in the original
    proportions) for twelve IMDB tables of the Join Order Benchmark; the
    fixed-catalog workload of the regression zoo and a ready-made example of
    the JSON import path.
    """
    return load_catalog(_JOB_SAMPLE_PATH)
