"""Random query generation.

Section 6.1 of the paper generates random queries "in the same way as in prior
evaluations of query optimization algorithms": join-graph shapes chain, cycle
and star; table cardinalities drawn by stratified sampling following the
distribution of Steinbrunn et al.; and join-predicate selectivities following
either the Steinbrunn model (main experiments) or Bruno's MinMax model
(appendix, Figures 4 and 5).

Steinbrunn et al. draw base-table cardinalities from strata
``{10..100, 100..1,000, 1,000..10,000, 10,000..100,000}`` and predicate
selectivities uniformly from ``[1 / max(card(left), card(right)), 1]``.
Bruno's MinMax method instead picks the selectivity such that the join output
cardinality lies (uniformly) between the cardinalities of the two inputs.

The workload zoo extends that grid along three axes:

* **Skewed cardinalities** — :class:`CardinalityModel.ZIPF` draws the
  stratum with Zipf weights (``P(stratum k) ∝ 1/(k+1)^s``) instead of
  uniformly, so small tables dominate and the occasional large fact table
  creates the heavy-tailed size mix of real schemas.
* **Correlated / low selectivities** — :class:`SelectivityModel.CORRELATED`
  concentrates predicate selectivities near the key-join lower bound
  ``1/max(card)`` (correlated predicates behave like near-key joins), by
  sampling ``lower ** u`` with ``u`` uniform in
  ``[correlation_strength, 1]``.
* **Fixed catalogs** — ``GeneratorConfig(catalog=...)`` replaces sampled
  base-table statistics with real ones (e.g. the bundled JOB/IMDB sample,
  :func:`repro.query.catalog.job_sample_catalog`): tables are drawn from
  the catalog and edge selectivities use the textbook equi-join estimate
  ``1/max(V(left), V(right))`` over declared join-key distinct counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Tuple

from repro.query.catalog import Catalog
from repro.query.join_graph import GraphShape, JoinGraph, snowflake_edges
from repro.query.query import Query
from repro.query.table import DEFAULT_ROW_WIDTH_BYTES, Table

#: Cardinality strata used for stratified sampling (Steinbrunn et al.).
CARDINALITY_STRATA: Tuple[Tuple[float, float], ...] = (
    (10.0, 100.0),
    (100.0, 1_000.0),
    (1_000.0, 10_000.0),
    (10_000.0, 100_000.0),
)

#: Minimum table count per join-graph shape below which the topology
#: degenerates (a 2-table "cycle" is a chain, a 3-table "snowflake" a star).
#: :meth:`QueryGenerator.generate` rejects degenerate requests outright.
SHAPE_MIN_TABLES: Dict[GraphShape, int] = {
    GraphShape.CHAIN: 1,
    GraphShape.STAR: 2,
    GraphShape.CYCLE: 3,
    GraphShape.CLIQUE: 2,
    GraphShape.SNOWFLAKE: 4,
}


class SelectivityModel(str, Enum):
    """Join-predicate selectivity models of the workload zoo."""

    #: Steinbrunn et al.: uniform in ``[1 / max(card_a, card_b), 1]``.
    STEINBRUNN = "steinbrunn"
    #: Bruno's MinMax: join output cardinality lies between the two inputs.
    MINMAX = "minmax"
    #: Correlated / low-selectivity joins: concentrated near ``1/max(card)``.
    CORRELATED = "correlated"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CardinalityModel(str, Enum):
    """Base-table cardinality models of the workload zoo."""

    #: Steinbrunn et al.: stratum chosen uniformly, value uniform within.
    UNIFORM = "uniform"
    #: Zipf-weighted stratum choice (``P(k) ∝ 1/(k+1)^zipf_skew``), value
    #: uniform within the stratum: skewed towards small tables.
    ZIPF = "zipf"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs of the random query generator.

    Attributes
    ----------
    selectivity_model / cardinality_model:
        The distribution families described in the module docstring.
    row_width:
        Row width of generated tables (catalog tables carry their own).
    cardinality_strata:
        Strata for stratified cardinality sampling.
    zipf_skew:
        Skew exponent ``s`` of the Zipf stratum weights (``ZIPF`` model
        only); larger values concentrate mass on the small strata.
    correlation_strength:
        Lower bound of the exponent ``u`` in the ``CORRELATED`` draw
        ``selectivity = (1/max(card)) ** u`` with ``u ~ U[strength, 1]``;
        must lie in ``(0, 1]``.  ``1.0`` pins every edge to the key-join
        bound, smaller values admit weaker correlation.
    catalog:
        Optional fixed catalog.  When set, generated queries draw their
        tables (without replacement) from the catalog and take
        cardinalities, row widths, and join-key distinct counts from it
        instead of sampling synthetic statistics.
    """

    selectivity_model: SelectivityModel = SelectivityModel.STEINBRUNN
    cardinality_model: CardinalityModel = CardinalityModel.UNIFORM
    row_width: float = DEFAULT_ROW_WIDTH_BYTES
    cardinality_strata: Tuple[Tuple[float, float], ...] = CARDINALITY_STRATA
    zipf_skew: float = 1.5
    correlation_strength: float = 0.5
    catalog: Catalog | None = None

    def __post_init__(self) -> None:
        if self.zipf_skew <= 0:
            raise ValueError(f"zipf_skew must be positive, got {self.zipf_skew}")
        if not 0 < self.correlation_strength <= 1:
            raise ValueError(
                f"correlation_strength must be in (0, 1], got {self.correlation_strength}"
            )


class QueryGenerator:
    """Generates random queries for benchmark scenarios.

    Parameters
    ----------
    rng:
        Source of randomness.  Injecting the RNG makes every generated
        workload reproducible from a seed.
    config:
        Generator configuration (selectivity model, cardinality strata).
    """

    def __init__(
        self,
        rng: random.Random | None = None,
        config: GeneratorConfig | None = None,
    ) -> None:
        self._rng = rng if rng is not None else random.Random()
        self._config = config if config is not None else GeneratorConfig()

    # ------------------------------------------------------------ primitives
    def sample_cardinality(self) -> float:
        """Draw one table cardinality via stratified sampling.

        Under the ``UNIFORM`` model a stratum is chosen uniformly; under
        ``ZIPF`` the stratum is chosen with Zipf weights
        (``P(k) ∝ 1/(k+1)^zipf_skew`` over the strata in declared order).
        Either way the cardinality is then drawn uniformly within the
        stratum, reproducing the heavy spread of table sizes of the
        Steinbrunn setup — skewed towards small tables under ``ZIPF``.
        """
        if self._config.cardinality_model is CardinalityModel.ZIPF:
            low, high = self._zipf_stratum()
        else:
            low, high = self._rng.choice(self._config.cardinality_strata)
        return float(self._rng.uniform(low, high))

    def _zipf_stratum(self) -> Tuple[float, float]:
        """Choose a stratum with Zipf weights ``1/(k+1)^zipf_skew``."""
        strata = self._config.cardinality_strata
        weights = [1.0 / (rank + 1) ** self._config.zipf_skew for rank in range(len(strata))]
        total = sum(weights)
        draw = self._rng.random() * total
        cumulative = 0.0
        for stratum, weight in zip(strata, weights):
            cumulative += weight
            if draw < cumulative:
                return stratum
        return strata[-1]

    def sample_cardinalities(self, count: int) -> List[float]:
        """Draw ``count`` table cardinalities."""
        return [self.sample_cardinality() for _ in range(count)]

    def sample_selectivity(self, card_left: float, card_right: float) -> float:
        """Draw a join-predicate selectivity for the configured model."""
        if self._config.selectivity_model is SelectivityModel.STEINBRUNN:
            return self._steinbrunn_selectivity(card_left, card_right)
        if self._config.selectivity_model is SelectivityModel.CORRELATED:
            return self._correlated_selectivity(card_left, card_right)
        return self._minmax_selectivity(card_left, card_right)

    def _steinbrunn_selectivity(self, card_left: float, card_right: float) -> float:
        """Uniform in ``[1 / max(card_left, card_right), 1]``."""
        lower = 1.0 / max(card_left, card_right)
        return float(self._rng.uniform(lower, 1.0))

    def _minmax_selectivity(self, card_left: float, card_right: float) -> float:
        """Bruno's MinMax: output cardinality uniform between the inputs.

        The output cardinality of ``left join right`` is
        ``card_left * card_right * selectivity``; choosing the output between
        ``min`` and ``max`` of the inputs and solving for the selectivity
        yields the returned value.
        """
        low = min(card_left, card_right)
        high = max(card_left, card_right)
        target_output = self._rng.uniform(low, high)
        selectivity = target_output / (card_left * card_right)
        return float(min(1.0, max(selectivity, 1e-12)))

    def _correlated_selectivity(self, card_left: float, card_right: float) -> float:
        """Low-selectivity draw concentrated near the key-join bound.

        Samples ``lower ** u`` with ``lower = 1/max(card)`` and ``u`` uniform
        in ``[correlation_strength, 1]``: every value stays within
        ``[lower, 1]`` (``u = 1`` is the exact key join, smaller exponents
        admit weaker predicates), and mass concentrates at low selectivities
        the way correlated multi-predicate joins do.
        """
        lower = 1.0 / max(card_left, card_right)
        exponent = self._rng.uniform(self._config.correlation_strength, 1.0)
        return float(lower**exponent)

    # --------------------------------------------------------------- queries
    def generate(
        self,
        num_tables: int,
        shape: GraphShape = GraphShape.CHAIN,
        name: str | None = None,
    ) -> Query:
        """Generate one random query.

        Parameters
        ----------
        num_tables:
            Number of tables the query joins.  Must be at least
            :data:`SHAPE_MIN_TABLES` for the requested shape — below that a
            topology silently degenerates into a different one (a 2-table
            "cycle" is a chain), which would poison shape-keyed results.
        shape:
            Join-graph topology (chain, cycle, star, clique or snowflake).
        name:
            Optional query name; a descriptive default is derived otherwise.
        """
        if num_tables < 1:
            raise ValueError(f"a query needs at least one table, got {num_tables}")
        if self._config.catalog is not None:
            tables = self._catalog_tables(num_tables)
            cardinalities = [table.cardinality for table in tables]
        else:
            cardinalities = self.sample_cardinalities(num_tables)
            tables = [
                Table(
                    index=i,
                    name=f"t{i}",
                    cardinality=cardinalities[i],
                    row_width=self._config.row_width,
                )
                for i in range(num_tables)
            ]
        selectivities = self._edge_selectivities(shape, cardinalities, tables)
        graph = JoinGraph.from_shape(shape, num_tables, selectivities)
        query_name = name if name is not None else f"{shape.value}_{num_tables}"
        return Query(tables, graph, name=query_name)

    def generate_batch(
        self,
        count: int,
        num_tables: int,
        shape: GraphShape = GraphShape.CHAIN,
    ) -> List[Query]:
        """Generate ``count`` independent random queries."""
        return [
            self.generate(num_tables, shape, name=f"{shape.value}_{num_tables}_{i}")
            for i in range(count)
        ]

    # ------------------------------------------------------------ internals
    def _catalog_tables(self, num_tables: int) -> List[Table]:
        """Draw ``num_tables`` distinct tables from the fixed catalog."""
        catalog = self._config.catalog
        assert catalog is not None
        names = catalog.table_names()
        if num_tables > len(names):
            raise ValueError(
                f"catalog holds {len(names)} tables; cannot draw {num_tables}"
            )
        chosen = self._rng.sample(names, num_tables)
        return [
            Table(
                index=i,
                name=table_name,
                cardinality=catalog.cardinality(table_name),
                row_width=catalog.row_width(table_name),
            )
            for i, table_name in enumerate(chosen)
        ]

    def _edge_selectivities(
        self,
        shape: GraphShape,
        cardinalities: Sequence[float],
        tables: Sequence[Table] | None = None,
    ) -> List[float]:
        """Selectivities for every edge of the given shape, in builder order.

        Catalog-backed queries use the deterministic textbook equi-join
        estimate ``1/max(V(left), V(right))`` over the tables' join-key
        distinct counts (the catalog carries *real* statistics, so edges are
        derived rather than sampled); synthetic queries sample from the
        configured selectivity model.
        """
        num_tables = len(cardinalities)
        endpoints = self._edge_endpoints(shape, num_tables)
        catalog = self._config.catalog
        if catalog is not None and tables is not None:
            distinct = [catalog.join_key_distinct(table.name) for table in tables]
            return [1.0 / max(distinct[a], distinct[b]) for a, b in endpoints]
        return [
            self.sample_selectivity(cardinalities[a], cardinalities[b])
            for a, b in endpoints
        ]

    @staticmethod
    def _edge_endpoints(shape: GraphShape, num_tables: int) -> List[Tuple[int, int]]:
        """Edge endpoints in the order the JoinGraph builders expect them.

        Validates that the shape is non-degenerate at this table count
        (:data:`SHAPE_MIN_TABLES`): a 2-table "cycle" would silently come
        out as a chain and a 3-table "snowflake" as a star, corrupting any
        result keyed by shape.
        """
        minimum = SHAPE_MIN_TABLES.get(shape)
        if minimum is None:
            raise ValueError(f"unknown graph shape: {shape}")
        if num_tables < minimum:
            raise ValueError(
                f"a {shape.value} join graph needs at least {minimum} tables, "
                f"got {num_tables} (the topology degenerates below that)"
            )
        if shape is GraphShape.CHAIN:
            return [(i, i + 1) for i in range(num_tables - 1)]
        if shape is GraphShape.CYCLE:
            edges = [(i, i + 1) for i in range(num_tables - 1)]
            edges.append((num_tables - 1, 0))
            return edges
        if shape is GraphShape.STAR:
            return [(0, i) for i in range(1, num_tables)]
        if shape is GraphShape.SNOWFLAKE:
            return snowflake_edges(num_tables)
        return [(a, b) for a in range(num_tables) for b in range(a + 1, num_tables)]
