"""Random query generation.

Section 6.1 of the paper generates random queries "in the same way as in prior
evaluations of query optimization algorithms": join-graph shapes chain, cycle
and star; table cardinalities drawn by stratified sampling following the
distribution of Steinbrunn et al.; and join-predicate selectivities following
either the Steinbrunn model (main experiments) or Bruno's MinMax model
(appendix, Figures 4 and 5).

Steinbrunn et al. draw base-table cardinalities from strata
``{10..100, 100..1,000, 1,000..10,000, 10,000..100,000}`` and predicate
selectivities uniformly from ``[1 / max(card(left), card(right)), 1]``.
Bruno's MinMax method instead picks the selectivity such that the join output
cardinality lies (uniformly) between the cardinalities of the two inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence, Tuple

from repro.query.join_graph import GraphShape, JoinGraph
from repro.query.query import Query
from repro.query.table import DEFAULT_ROW_WIDTH_BYTES, Table

#: Cardinality strata used for stratified sampling (Steinbrunn et al.).
CARDINALITY_STRATA: Tuple[Tuple[float, float], ...] = (
    (10.0, 100.0),
    (100.0, 1_000.0),
    (1_000.0, 10_000.0),
    (10_000.0, 100_000.0),
)


class SelectivityModel(str, Enum):
    """Join-predicate selectivity models used in the paper."""

    #: Steinbrunn et al.: uniform in ``[1 / max(card_a, card_b), 1]``.
    STEINBRUNN = "steinbrunn"
    #: Bruno's MinMax: join output cardinality lies between the two inputs.
    MINMAX = "minmax"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs of the random query generator."""

    selectivity_model: SelectivityModel = SelectivityModel.STEINBRUNN
    row_width: float = DEFAULT_ROW_WIDTH_BYTES
    cardinality_strata: Tuple[Tuple[float, float], ...] = CARDINALITY_STRATA


class QueryGenerator:
    """Generates random queries for benchmark scenarios.

    Parameters
    ----------
    rng:
        Source of randomness.  Injecting the RNG makes every generated
        workload reproducible from a seed.
    config:
        Generator configuration (selectivity model, cardinality strata).
    """

    def __init__(
        self,
        rng: random.Random | None = None,
        config: GeneratorConfig | None = None,
    ) -> None:
        self._rng = rng if rng is not None else random.Random()
        self._config = config if config is not None else GeneratorConfig()

    # ------------------------------------------------------------ primitives
    def sample_cardinality(self) -> float:
        """Draw one table cardinality via stratified sampling.

        A stratum is chosen uniformly, then a cardinality is drawn uniformly
        within the stratum.  This reproduces the heavy spread of table sizes
        of the Steinbrunn setup without favouring the large strata.
        """
        low, high = self._rng.choice(self._config.cardinality_strata)
        return float(self._rng.uniform(low, high))

    def sample_cardinalities(self, count: int) -> List[float]:
        """Draw ``count`` table cardinalities."""
        return [self.sample_cardinality() for _ in range(count)]

    def sample_selectivity(self, card_left: float, card_right: float) -> float:
        """Draw a join-predicate selectivity for the configured model."""
        if self._config.selectivity_model is SelectivityModel.STEINBRUNN:
            return self._steinbrunn_selectivity(card_left, card_right)
        return self._minmax_selectivity(card_left, card_right)

    def _steinbrunn_selectivity(self, card_left: float, card_right: float) -> float:
        """Uniform in ``[1 / max(card_left, card_right), 1]``."""
        lower = 1.0 / max(card_left, card_right)
        return float(self._rng.uniform(lower, 1.0))

    def _minmax_selectivity(self, card_left: float, card_right: float) -> float:
        """Bruno's MinMax: output cardinality uniform between the inputs.

        The output cardinality of ``left join right`` is
        ``card_left * card_right * selectivity``; choosing the output between
        ``min`` and ``max`` of the inputs and solving for the selectivity
        yields the returned value.
        """
        low = min(card_left, card_right)
        high = max(card_left, card_right)
        target_output = self._rng.uniform(low, high)
        selectivity = target_output / (card_left * card_right)
        return float(min(1.0, max(selectivity, 1e-12)))

    # --------------------------------------------------------------- queries
    def generate(
        self,
        num_tables: int,
        shape: GraphShape = GraphShape.CHAIN,
        name: str | None = None,
    ) -> Query:
        """Generate one random query.

        Parameters
        ----------
        num_tables:
            Number of tables the query joins.
        shape:
            Join-graph topology (chain, cycle, star or clique).
        name:
            Optional query name; a descriptive default is derived otherwise.
        """
        if num_tables < 1:
            raise ValueError(f"a query needs at least one table, got {num_tables}")
        cardinalities = self.sample_cardinalities(num_tables)
        tables = [
            Table(
                index=i,
                name=f"t{i}",
                cardinality=cardinalities[i],
                row_width=self._config.row_width,
            )
            for i in range(num_tables)
        ]
        selectivities = self._edge_selectivities(shape, cardinalities)
        graph = JoinGraph.from_shape(shape, num_tables, selectivities)
        query_name = name if name is not None else f"{shape.value}_{num_tables}"
        return Query(tables, graph, name=query_name)

    def generate_batch(
        self,
        count: int,
        num_tables: int,
        shape: GraphShape = GraphShape.CHAIN,
    ) -> List[Query]:
        """Generate ``count`` independent random queries."""
        return [
            self.generate(num_tables, shape, name=f"{shape.value}_{num_tables}_{i}")
            for i in range(count)
        ]

    # ------------------------------------------------------------ internals
    def _edge_selectivities(
        self, shape: GraphShape, cardinalities: Sequence[float]
    ) -> List[float]:
        """Selectivities for every edge of the given shape, in builder order."""
        num_tables = len(cardinalities)
        endpoints = self._edge_endpoints(shape, num_tables)
        return [
            self.sample_selectivity(cardinalities[a], cardinalities[b])
            for a, b in endpoints
        ]

    @staticmethod
    def _edge_endpoints(shape: GraphShape, num_tables: int) -> List[Tuple[int, int]]:
        """Edge endpoints in the order the JoinGraph builders expect them."""
        if shape is GraphShape.CHAIN:
            return [(i, i + 1) for i in range(num_tables - 1)]
        if shape is GraphShape.CYCLE:
            edges = [(i, i + 1) for i in range(num_tables - 1)]
            if num_tables >= 3:
                edges.append((num_tables - 1, 0))
            return edges
        if shape is GraphShape.STAR:
            return [(0, i) for i in range(1, num_tables)]
        if shape is GraphShape.CLIQUE:
            return [
                (a, b) for a in range(num_tables) for b in range(a + 1, num_tables)
            ]
        raise ValueError(f"unknown graph shape: {shape}")
