"""Join graphs and selectivity lookup.

The paper evaluates chain, cycle and star shaped join graphs (Section 6.1).
A :class:`JoinGraph` stores, for every pair of tables connected by a join
predicate, the selectivity of that predicate.  Pairs of tables that are not
connected correspond to Cartesian products and have selectivity one.

Selectivities between table *sets* (needed when joining intermediate results)
are the product of the selectivities of all predicates crossing the two sets,
which is the standard independence assumption used by textbook optimizers and
by the cost models in the paper's lineage (Steinbrunn et al.).
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple


class GraphShape(str, Enum):
    """Join-graph topologies used in the paper's evaluation."""

    CHAIN = "chain"
    CYCLE = "cycle"
    STAR = "star"
    CLIQUE = "clique"
    #: Star hub with chain arms (a star schema whose dimensions are
    #: themselves normalized into chains) — the workload-zoo extension
    #: beyond the paper's chain/cycle/star grid.
    SNOWFLAKE = "snowflake"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def snowflake_arm_lengths(num_tables: int) -> List[int]:
    """Chain-arm lengths of a snowflake over ``num_tables`` tables.

    Table 0 is the hub; the remaining ``num_tables - 1`` tables are split
    into ``ceil(sqrt(num_tables - 1))`` chain arms of near-equal length
    (earlier arms get the extra tables).  The layout is a pure function of
    the table count, so every consumer — graph builder, query generator,
    tests — derives the identical topology.

    >>> snowflake_arm_lengths(4)
    [2, 1]
    >>> snowflake_arm_lengths(10)
    [3, 3, 3]
    """
    spokes = num_tables - 1
    if spokes <= 0:
        return []
    num_arms = math.isqrt(spokes)
    if num_arms * num_arms < spokes:
        num_arms += 1
    base, extra = divmod(spokes, num_arms)
    return [base + (1 if arm < extra else 0) for arm in range(num_arms)]


def snowflake_edges(num_tables: int) -> List[Tuple[int, int]]:
    """Edge endpoints of a snowflake graph, in canonical builder order.

    Arms own contiguous table-index ranges; per arm the hub edge comes
    first, then the chain edges outward.
    """
    edges: List[Tuple[int, int]] = []
    first = 1
    for length in snowflake_arm_lengths(num_tables):
        edges.append((0, first))
        for table in range(first, first + length - 1):
            edges.append((table, table + 1))
        first += length
    return edges


def _normalize_edge(a: int, b: int) -> Tuple[int, int]:
    """Return the canonical (sorted) representation of an undirected edge."""
    if a == b:
        raise ValueError(f"self joins are not supported (table {a})")
    return (a, b) if a < b else (b, a)


class JoinGraph:
    """Undirected join graph with per-edge selectivities.

    Parameters
    ----------
    num_tables:
        Number of tables in the query this graph belongs to.  Table indices
        range over ``0 .. num_tables - 1``.
    edges:
        Mapping from table-index pairs to the selectivity of the join
        predicate connecting them.  Selectivities must lie in ``(0, 1]``.
    """

    def __init__(
        self,
        num_tables: int,
        edges: Dict[Tuple[int, int], float] | None = None,
    ) -> None:
        if num_tables < 1:
            raise ValueError(f"a query needs at least one table, got {num_tables}")
        self._num_tables = num_tables
        self._edges: Dict[Tuple[int, int], float] = {}
        for (a, b), selectivity in (edges or {}).items():
            self.add_edge(a, b, selectivity)

    # ------------------------------------------------------------------ edges
    def add_edge(self, a: int, b: int, selectivity: float) -> None:
        """Add (or overwrite) a join predicate between tables ``a`` and ``b``."""
        edge = _normalize_edge(a, b)
        for endpoint in edge:
            if not 0 <= endpoint < self._num_tables:
                raise ValueError(
                    f"table index {endpoint} out of range for {self._num_tables} tables"
                )
        if not 0 < selectivity <= 1:
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        self._edges[edge] = selectivity

    def has_edge(self, a: int, b: int) -> bool:
        """Return whether a join predicate connects tables ``a`` and ``b``."""
        return _normalize_edge(a, b) in self._edges

    def edge_selectivity(self, a: int, b: int) -> float:
        """Selectivity of the predicate between ``a`` and ``b`` (1.0 if absent)."""
        return self._edges.get(_normalize_edge(a, b), 1.0)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(a, b, selectivity)`` triples."""
        for (a, b), selectivity in sorted(self._edges.items()):
            yield a, b, selectivity

    @property
    def num_tables(self) -> int:
        """Number of tables covered by this graph."""
        return self._num_tables

    @property
    def num_edges(self) -> int:
        """Number of join predicates."""
        return len(self._edges)

    # ----------------------------------------------------------- selectivity
    def selectivity_between(
        self, left: Iterable[int] | FrozenSet[int], right: Iterable[int] | FrozenSet[int]
    ) -> float:
        """Combined selectivity of all predicates crossing ``left`` and ``right``.

        Uses the standard independence assumption: the combined selectivity is
        the product of the individual predicate selectivities.  Returns 1.0
        (a Cartesian product) when no predicate crosses the two sets.
        """
        left_set = frozenset(left)
        right_set = frozenset(right)
        if left_set & right_set:
            raise ValueError("table sets must be disjoint to compute a join selectivity")
        selectivity = 1.0
        for (a, b), edge_selectivity in self._edges.items():
            crosses = (a in left_set and b in right_set) or (
                a in right_set and b in left_set
            )
            if crosses:
                selectivity *= edge_selectivity
        return selectivity

    def neighbors(self, table: int) -> FrozenSet[int]:
        """Return the set of tables connected to ``table`` by a predicate."""
        result = set()
        for a, b in self._edges:
            if a == table:
                result.add(b)
            elif b == table:
                result.add(a)
        return frozenset(result)

    def is_connected_subset(self, tables: Iterable[int]) -> bool:
        """Return whether the induced subgraph on ``tables`` is connected.

        Single-table subsets are connected by definition.  Used by the DP
        baseline when restricting enumeration to connected subsets.
        """
        table_set = set(tables)
        if not table_set:
            return False
        if len(table_set) == 1:
            return True
        start = next(iter(table_set))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in self.neighbors(current):
                if neighbor in table_set and neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen == table_set

    # -------------------------------------------------------------- builders
    @classmethod
    def chain(cls, num_tables: int, selectivities: Iterable[float]) -> "JoinGraph":
        """Chain graph: table ``i`` joins table ``i + 1``."""
        graph = cls(num_tables)
        values = list(selectivities)
        expected = max(0, num_tables - 1)
        if len(values) != expected:
            raise ValueError(f"chain of {num_tables} tables needs {expected} selectivities")
        for i, selectivity in enumerate(values):
            graph.add_edge(i, i + 1, selectivity)
        return graph

    @classmethod
    def cycle(cls, num_tables: int, selectivities: Iterable[float]) -> "JoinGraph":
        """Cycle graph: a chain plus an edge closing the loop."""
        graph = cls(num_tables)
        values = list(selectivities)
        expected = num_tables if num_tables >= 3 else max(0, num_tables - 1)
        if len(values) != expected:
            raise ValueError(f"cycle of {num_tables} tables needs {expected} selectivities")
        for i in range(num_tables - 1):
            graph.add_edge(i, i + 1, values[i])
        if num_tables >= 3:
            graph.add_edge(num_tables - 1, 0, values[num_tables - 1])
        return graph

    @classmethod
    def star(cls, num_tables: int, selectivities: Iterable[float]) -> "JoinGraph":
        """Star graph: table 0 is the hub joined with every other table."""
        graph = cls(num_tables)
        values = list(selectivities)
        expected = max(0, num_tables - 1)
        if len(values) != expected:
            raise ValueError(f"star of {num_tables} tables needs {expected} selectivities")
        for i, selectivity in enumerate(values, start=1):
            graph.add_edge(0, i, selectivity)
        return graph

    @classmethod
    def clique(cls, num_tables: int, selectivities: Iterable[float]) -> "JoinGraph":
        """Clique graph: every pair of tables is connected."""
        graph = cls(num_tables)
        values = list(selectivities)
        expected = num_tables * (num_tables - 1) // 2
        if len(values) != expected:
            raise ValueError(f"clique of {num_tables} tables needs {expected} selectivities")
        position = 0
        for a in range(num_tables):
            for b in range(a + 1, num_tables):
                graph.add_edge(a, b, values[position])
                position += 1
        return graph

    @classmethod
    def snowflake(cls, num_tables: int, selectivities: Iterable[float]) -> "JoinGraph":
        """Snowflake graph: star hub (table 0) with chain arms.

        The arm layout is :func:`snowflake_arm_lengths`; edges are expected
        in :func:`snowflake_edges` order (per arm: hub edge, then chain
        edges outward).
        """
        graph = cls(num_tables)
        values = list(selectivities)
        expected = max(0, num_tables - 1)
        if len(values) != expected:
            raise ValueError(
                f"snowflake of {num_tables} tables needs {expected} selectivities"
            )
        for (a, b), selectivity in zip(snowflake_edges(num_tables), values):
            graph.add_edge(a, b, selectivity)
        return graph

    @classmethod
    def from_shape(
        cls, shape: GraphShape, num_tables: int, selectivities: Iterable[float]
    ) -> "JoinGraph":
        """Dispatch to the named builder for ``shape``."""
        builders = {
            GraphShape.CHAIN: cls.chain,
            GraphShape.CYCLE: cls.cycle,
            GraphShape.STAR: cls.star,
            GraphShape.CLIQUE: cls.clique,
            GraphShape.SNOWFLAKE: cls.snowflake,
        }
        return builders[shape](num_tables, selectivities)

    @staticmethod
    def edge_count_for_shape(shape: GraphShape, num_tables: int) -> int:
        """Number of predicates a graph of ``shape`` over ``num_tables`` has."""
        if shape in (GraphShape.CHAIN, GraphShape.STAR, GraphShape.SNOWFLAKE):
            return max(0, num_tables - 1)
        if shape is GraphShape.CYCLE:
            return num_tables if num_tables >= 3 else max(0, num_tables - 1)
        if shape is GraphShape.CLIQUE:
            return num_tables * (num_tables - 1) // 2
        raise ValueError(f"unknown graph shape: {shape}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JoinGraph(num_tables={self._num_tables}, num_edges={self.num_edges})"
