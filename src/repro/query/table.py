"""Base-table metadata.

Tables are the leaves of every query plan.  The cost models only need a small
amount of statistical information about each table: its cardinality (number of
rows) and the average row width in bytes, from which a page count is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default page size used to convert row counts into page counts.  The exact
#: value does not matter for the reproduction (all algorithms share the same
#: cost substrate); 8 KiB matches common database defaults.
PAGE_SIZE_BYTES = 8192

#: Default average row width in bytes when a table does not specify one.
DEFAULT_ROW_WIDTH_BYTES = 100


@dataclass(frozen=True)
class Table:
    """A base table referenced by a query.

    Parameters
    ----------
    index:
        Position of the table inside its query (0-based).  Plans identify
        tables by this index, so it must be unique within a query.
    name:
        Human-readable table name, used for plan pretty-printing.
    cardinality:
        Number of rows in the table.  Must be at least one.
    row_width:
        Average row width in bytes.
    """

    index: int
    name: str
    cardinality: float
    row_width: float = field(default=DEFAULT_ROW_WIDTH_BYTES)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"table index must be non-negative, got {self.index}")
        if self.cardinality < 1:
            raise ValueError(
                f"table cardinality must be at least 1, got {self.cardinality}"
            )
        if self.row_width <= 0:
            raise ValueError(f"row width must be positive, got {self.row_width}")

    @property
    def bytes(self) -> float:
        """Total size of the table in bytes."""
        return self.cardinality * self.row_width

    @property
    def pages(self) -> float:
        """Number of pages occupied by the table (at least one)."""
        return max(1.0, self.bytes / PAGE_SIZE_BYTES)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{self.cardinality:g} rows]"
