"""The query object: a set of tables plus their join graph.

This matches the paper's formal model (Section 3): a query is a set of tables
to be joined.  The join graph and selectivities are carried along because the
cost models need them to estimate intermediate-result cardinalities.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence

from repro.query.join_graph import JoinGraph
from repro.query.table import Table


class Query:
    """A join query over a set of base tables.

    Parameters
    ----------
    tables:
        The base tables, ordered by their ``index`` attribute; table ``i`` in
        this sequence must have ``index == i``.
    join_graph:
        Join-predicate structure and selectivities over those tables.
    name:
        Optional human-readable name (used in benchmark reports).
    """

    def __init__(
        self,
        tables: Sequence[Table],
        join_graph: JoinGraph,
        name: str = "query",
    ) -> None:
        if not tables:
            raise ValueError("a query needs at least one table")
        for position, table in enumerate(tables):
            if table.index != position:
                raise ValueError(
                    f"table at position {position} has index {table.index}; "
                    "tables must be ordered by index"
                )
        if join_graph.num_tables != len(tables):
            raise ValueError(
                f"join graph covers {join_graph.num_tables} tables but the "
                f"query has {len(tables)}"
            )
        self._tables: List[Table] = list(tables)
        self._join_graph = join_graph
        self.name = name
        self._all_relations: FrozenSet[int] = frozenset(range(len(tables)))

    # ------------------------------------------------------------ accessors
    @property
    def tables(self) -> Sequence[Table]:
        """The base tables of the query, ordered by index."""
        return tuple(self._tables)

    @property
    def join_graph(self) -> JoinGraph:
        """The join graph of the query."""
        return self._join_graph

    @property
    def num_tables(self) -> int:
        """Number of tables joined by the query."""
        return len(self._tables)

    @property
    def relations(self) -> FrozenSet[int]:
        """The full set of table indices, i.e. the query's ``rel`` set."""
        return self._all_relations

    def table(self, index: int) -> Table:
        """Return the table with the given index."""
        return self._tables[index]

    def cardinality(self, index: int) -> float:
        """Cardinality of the table with the given index."""
        return self._tables[index].cardinality

    # -------------------------------------------------------- cost substrate
    def selectivity_between(
        self, left: Iterable[int] | FrozenSet[int], right: Iterable[int] | FrozenSet[int]
    ) -> float:
        """Combined selectivity of predicates crossing two disjoint table sets."""
        return self._join_graph.selectivity_between(left, right)

    def statistics(self) -> Dict[str, float]:
        """Summary statistics used in benchmark reports."""
        cardinalities = [t.cardinality for t in self._tables]
        return {
            "num_tables": float(self.num_tables),
            "num_predicates": float(self._join_graph.num_edges),
            "min_cardinality": min(cardinalities),
            "max_cardinality": max(cardinalities),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Query(name={self.name!r}, num_tables={self.num_tables})"
