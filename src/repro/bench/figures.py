"""Per-figure scenario specifications.

One constructor per figure of the paper's evaluation (plus the ablation
experiments listed in DESIGN.md).  Each constructor takes a
:class:`~repro.bench.scenario.ScenarioScale`:

* ``PAPER`` reproduces the paper's grid (query sizes, 20 test cases, 3 s or
  30 s budgets, NSGA-II population 200).  Expect hours of runtime in pure
  Python.
* ``DEFAULT`` keeps all join-graph shapes and algorithms but shrinks query
  sizes, budgets and the number of test cases to minutes of runtime.
* ``SMOKE`` shrinks everything further to seconds; used by the pytest
  benchmark targets.

Figure 3 is not an error-versus-time grid; it is covered by
:func:`repro.bench.statistics.run_figure3_statistics`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Tuple

from repro.baselines import PAPER_ALGORITHMS
from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.query.generator import CardinalityModel, SelectivityModel
from repro.query.join_graph import GraphShape

#: All three join-graph shapes of the evaluation.
ALL_SHAPES: Tuple[GraphShape, ...] = (
    GraphShape.CHAIN,
    GraphShape.CYCLE,
    GraphShape.STAR,
)

#: The randomized algorithms (used when DP is known not to contribute).
RANDOMIZED_ALGORITHMS: Tuple[str, ...] = ("SA", "2P", "NSGA-II", "II", "RMQ")


def _grid_scale(
    scale: ScenarioScale,
    paper_tables: Tuple[int, ...],
    default_tables: Tuple[int, ...],
    smoke_tables: Tuple[int, ...],
    paper_budget: float,
    default_budget: float = 1.0,
    smoke_budget: float = 0.25,
) -> Tuple[Tuple[int, ...], int, float, Tuple[float, ...], int]:
    """Common scale handling: (table counts, cases, budget, checkpoints, population)."""
    if scale is ScenarioScale.PAPER:
        tables, cases, budget, population = paper_tables, 20, paper_budget, 200
    elif scale is ScenarioScale.DEFAULT:
        tables, cases, budget, population = default_tables, 3, default_budget, 50
    else:
        tables, cases, budget, population = smoke_tables, 2, smoke_budget, 16
    checkpoints = tuple(budget * fraction for fraction in (0.25, 0.5, 0.75, 1.0))
    return tables, cases, budget, checkpoints, population


def _error_grid_spec(
    name: str,
    description: str,
    num_metrics: int,
    selectivity_model: SelectivityModel,
    scale: ScenarioScale,
    paper_tables: Tuple[int, ...],
    default_tables: Tuple[int, ...],
    smoke_tables: Tuple[int, ...],
    paper_budget: float,
    algorithms: Tuple[str, ...] = PAPER_ALGORITHMS,
    error_cap: float | None = None,
    reference_algorithm: str | None = None,
) -> ScenarioSpec:
    tables, cases, budget, checkpoints, population = _grid_scale(
        scale, paper_tables, default_tables, smoke_tables, paper_budget
    )
    return ScenarioSpec(
        name=name,
        description=description,
        graph_shapes=ALL_SHAPES,
        table_counts=tables,
        num_metrics=num_metrics,
        algorithms=algorithms,
        num_test_cases=cases,
        selectivity_model=selectivity_model,
        time_budget=budget,
        checkpoints=checkpoints,
        error_cap=error_cap,
        reference_algorithm=reference_algorithm,
        reference_time_budget=budget,
        nsga_population=population,
        scale=scale,
    )


# ---------------------------------------------------------------- main grid
def figure1_spec(scale: ScenarioScale = ScenarioScale.DEFAULT) -> ScenarioSpec:
    """Figure 1: median α error vs. time, two cost metrics, Steinbrunn joins."""
    return _error_grid_spec(
        name="figure1",
        description="Approximation error over time, 2 cost metrics (Steinbrunn selectivities)",
        num_metrics=2,
        selectivity_model=SelectivityModel.STEINBRUNN,
        scale=scale,
        paper_tables=(10, 25, 50, 75, 100),
        default_tables=(10, 25),
        smoke_tables=(6, 10),
        paper_budget=3.0,
    )


def figure2_spec(scale: ScenarioScale = ScenarioScale.DEFAULT) -> ScenarioSpec:
    """Figure 2: median α error vs. time, three cost metrics, Steinbrunn joins."""
    return _error_grid_spec(
        name="figure2",
        description="Approximation error over time, 3 cost metrics (Steinbrunn selectivities)",
        num_metrics=3,
        selectivity_model=SelectivityModel.STEINBRUNN,
        scale=scale,
        paper_tables=(10, 25, 50, 75, 100),
        default_tables=(10, 25),
        smoke_tables=(6, 10),
        paper_budget=3.0,
    )


# ------------------------------------------------------------ MinMax joins
def figure4_spec(scale: ScenarioScale = ScenarioScale.DEFAULT) -> ScenarioSpec:
    """Figure 4: two cost metrics with Bruno's MinMax join selectivities."""
    return _error_grid_spec(
        name="figure4",
        description="Approximation error over time, 2 cost metrics (MinMax selectivities)",
        num_metrics=2,
        selectivity_model=SelectivityModel.MINMAX,
        scale=scale,
        paper_tables=(25, 50, 75, 100),
        default_tables=(10, 25),
        smoke_tables=(6, 10),
        paper_budget=3.0,
    )


def figure5_spec(scale: ScenarioScale = ScenarioScale.DEFAULT) -> ScenarioSpec:
    """Figure 5: three cost metrics with Bruno's MinMax join selectivities."""
    return _error_grid_spec(
        name="figure5",
        description="Approximation error over time, 3 cost metrics (MinMax selectivities)",
        num_metrics=3,
        selectivity_model=SelectivityModel.MINMAX,
        scale=scale,
        paper_tables=(25, 50, 75, 100),
        default_tables=(10, 25),
        smoke_tables=(6, 10),
        paper_budget=3.0,
    )


# ---------------------------------------------------------- long time budget
def figure6_spec(scale: ScenarioScale = ScenarioScale.DEFAULT) -> ScenarioSpec:
    """Figure 6: two cost metrics, long optimization time, error capped at 1e10."""
    return _error_grid_spec(
        name="figure6",
        description="Approximation error (capped at 1e10) over a long budget, 2 cost metrics",
        num_metrics=2,
        selectivity_model=SelectivityModel.STEINBRUNN,
        scale=scale,
        paper_tables=(50, 100),
        default_tables=(25, 50),
        smoke_tables=(10, 15),
        paper_budget=30.0,
        error_cap=1e10,
    )


def figure7_spec(scale: ScenarioScale = ScenarioScale.DEFAULT) -> ScenarioSpec:
    """Figure 7: three cost metrics, long optimization time, error capped at 1e10."""
    return _error_grid_spec(
        name="figure7",
        description="Approximation error (capped at 1e10) over a long budget, 3 cost metrics",
        num_metrics=3,
        selectivity_model=SelectivityModel.STEINBRUNN,
        scale=scale,
        paper_tables=(50, 100),
        default_tables=(25, 50),
        smoke_tables=(10, 15),
        paper_budget=30.0,
        error_cap=1e10,
    )


# ------------------------------------------------------ precise small queries
def figure8_spec(scale: ScenarioScale = ScenarioScale.DEFAULT) -> ScenarioSpec:
    """Figure 8: precise error against a DP(1.01) reference, small queries, 2 metrics."""
    return _error_grid_spec(
        name="figure8",
        description="Precise approximation error vs. DP(1.01) reference, small queries, 2 metrics",
        num_metrics=2,
        selectivity_model=SelectivityModel.STEINBRUNN,
        scale=scale,
        paper_tables=(4, 8),
        default_tables=(4, 6),
        smoke_tables=(4, 5),
        paper_budget=30.0,
        reference_algorithm="DP(1.01)",
    )


def figure9_spec(scale: ScenarioScale = ScenarioScale.DEFAULT) -> ScenarioSpec:
    """Figure 9: precise error against a DP(1.01) reference, small queries, 3 metrics."""
    return _error_grid_spec(
        name="figure9",
        description="Precise approximation error vs. DP(1.01) reference, small queries, 3 metrics",
        num_metrics=3,
        selectivity_model=SelectivityModel.STEINBRUNN,
        scale=scale,
        paper_tables=(4, 8),
        default_tables=(4, 6),
        smoke_tables=(4, 5),
        paper_budget=30.0,
        reference_algorithm="DP(1.01)",
    )


# ------------------------------------------------------------------ ablations
def ablation_rmq_spec(scale: ScenarioScale = ScenarioScale.DEFAULT) -> ScenarioSpec:
    """Ablation A1: RMQ vs. variants without the plan cache / hill climbing."""
    return _error_grid_spec(
        name="ablation_rmq",
        description="RMQ design ablation: plan cache and hill climbing contributions",
        num_metrics=3,
        selectivity_model=SelectivityModel.STEINBRUNN,
        scale=scale,
        paper_tables=(25, 50),
        default_tables=(10, 25),
        smoke_tables=(6, 10),
        paper_budget=3.0,
        algorithms=("RMQ", "RMQ-NoCache", "RMQ-NoClimb", "RMQ-LeftDeep", "II"),
    )


def ablation_alpha_spec(scale: ScenarioScale = ScenarioScale.DEFAULT) -> ScenarioSpec:
    """Ablation A2: effect of the α schedule of Algorithm 3."""
    return _error_grid_spec(
        name="ablation_alpha",
        description="Effect of the frontier-approximation precision schedule",
        num_metrics=3,
        selectivity_model=SelectivityModel.STEINBRUNN,
        scale=scale,
        paper_tables=(25, 50),
        default_tables=(10, 25),
        smoke_tables=(6, 10),
        paper_budget=3.0,
        algorithms=("RMQ", "RMQ-AlphaFixed1", "RMQ-AlphaFixed25"),
    )


def zoo_spec(scale: ScenarioScale = ScenarioScale.DEFAULT) -> ScenarioSpec:
    """Workload zoo: every shape (incl. snowflake) under skewed statistics.

    Extends the paper's grid along the workload axes of the regression zoo:
    all five join-graph topologies, Zipf-skewed base-table cardinalities,
    and correlated/low selectivities.  Table counts start at the snowflake
    minimum (4 tables).
    """
    tables, cases, budget, checkpoints, population = _grid_scale(
        scale,
        paper_tables=(10, 25),
        default_tables=(6, 10),
        smoke_tables=(5, 6),
        paper_budget=3.0,
    )
    return ScenarioSpec(
        name="zoo",
        description="All join-graph shapes under skewed (Zipf/correlated) statistics",
        graph_shapes=ALL_SHAPES + (GraphShape.CLIQUE, GraphShape.SNOWFLAKE),
        table_counts=tables,
        num_metrics=3,
        algorithms=RANDOMIZED_ALGORITHMS,
        num_test_cases=cases,
        selectivity_model=SelectivityModel.CORRELATED,
        cardinality_model=CardinalityModel.ZIPF,
        time_budget=budget,
        checkpoints=checkpoints,
        nsga_population=population,
        scale=scale,
    )


#: Mapping from figure identifiers to spec constructors (used by tests/benches).
FIGURE_SPECS = {
    "figure1": figure1_spec,
    "figure2": figure2_spec,
    "figure4": figure4_spec,
    "figure5": figure5_spec,
    "figure6": figure6_spec,
    "figure7": figure7_spec,
    "figure8": figure8_spec,
    "figure9": figure9_spec,
    "ablation_rmq": ablation_rmq_spec,
    "ablation_alpha": ablation_alpha_spec,
    "zoo": zoo_spec,
}


# --------------------------------------------------- wall-clock-free variants
#: Step-count checkpoints of the step-driven figure variants, per scale.
#: They mirror the shape of the wall-clock checkpoints (four snapshots, the
#: last being the budget) but count optimizer iterations, so a run is fully
#: deterministic and regression-testable in CI.
STEP_CHECKPOINTS: Dict[ScenarioScale, Tuple[int, ...]] = {
    ScenarioScale.SMOKE: (2, 4, 6, 8),
    ScenarioScale.DEFAULT: (10, 20, 40, 80),
    ScenarioScale.PAPER: (100, 200, 400, 800),
}


def step_variant(
    spec: ScenarioSpec, step_checkpoints: Tuple[int, ...] | None = None
) -> ScenarioSpec:
    """Wall-clock-free variant of a figure spec.

    Replaces the spec's time budget with iteration-count checkpoints
    (:data:`STEP_CHECKPOINTS` for the spec's scale unless given explicitly)
    and drops the reference wall-clock budget — the DP reference scheme then
    runs to completion under its step-count safety cap, which keeps the
    precise small-query figures deterministic too.  ``run_scenario`` on a
    step variant returns bit-identical results for every worker count,
    granularity, and sharding.
    """
    checkpoints = (
        step_checkpoints if step_checkpoints is not None else STEP_CHECKPOINTS[spec.scale]
    )
    return replace(spec, step_checkpoints=checkpoints, reference_time_budget=None)


def _step_constructor(
    constructor: Callable[[ScenarioScale], ScenarioSpec],
) -> Callable[[ScenarioScale], ScenarioSpec]:
    def build(scale: ScenarioScale = ScenarioScale.DEFAULT) -> ScenarioSpec:
        return step_variant(constructor(scale))

    return build


#: Step-driven twin of every figure spec: same grid, metrics, and algorithms,
#: but driven by iteration counts (``FIGURE_SPECS`` keys, same call shape).
STEP_FIGURE_SPECS: Dict[str, Callable[[ScenarioScale], ScenarioSpec]] = {
    name: _step_constructor(constructor) for name, constructor in FIGURE_SPECS.items()
}
