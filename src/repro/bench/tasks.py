"""The benchmark task graph: schedule → execute → reduce.

A scenario run used to be a monolithic per-cell loop inside
``repro.bench.runner``.  This module decomposes it into an explicit,
serializable task graph:

* **Leaves** are :class:`TaskSpec` coordinates — one task per
  ``(grid cell, test case, algorithm)`` triple, plus one *reference* task
  per ``(cell, case)`` when the scenario names a reference algorithm
  (the precise small-query experiments use ``DP(1.01)``).
* **Executing** a leaf (:func:`execute_task`) is pure: the query, cost
  model, and every random stream are derived from the scenario seed and the
  task coordinates (:func:`repro.utils.rng.derive_rng`), never from
  execution order, machine, or process.  The result is a
  :class:`TaskResult` — the checkpointed frontier snapshots plus per-task
  provenance (steps taken, wall-clock elapsed).
* **Reducing** (``repro.bench.runner.reduce_task_results``) folds the leaf
  results into per-cell medians.  The reduce step is a pure function of the
  result set, so *any* execution order — sequential, process pool at
  ``cell`` or ``case`` granularity, or shards executed on different
  machines and merged later — produces bit-identical scenario results
  whenever ``step_checkpoints`` drives the run.

Sharding: :func:`shard_tasks` deterministically assigns leaf ``i`` of the
schedule to shard ``i % count``; :func:`write_shard` /
:func:`load_shards` serialize results to JSON so a later ``merge``
invocation (CLI) can reduce them without re-running anything.

Examples
--------
Schedules are pure functions of the spec, and leaves are pure functions of
``(spec, task)`` — running a leaf twice (or on another machine) gives the
same result:

>>> from repro.bench.scenario import ScenarioSpec
>>> from repro.bench.tasks import execute_task, schedule_tasks
>>> from repro.query.join_graph import GraphShape
>>> spec = ScenarioSpec(
...     name="example", description="doctest grid",
...     graph_shapes=(GraphShape.CHAIN,), table_counts=(4,),
...     num_metrics=2, algorithms=("RandomSampling",),
...     num_test_cases=2, step_checkpoints=(2,))
>>> tasks = schedule_tasks(spec)
>>> len(tasks)                         # 1 cell x 2 cases x 1 algorithm
2
>>> tasks[0].task_id
'algorithm:chain:4:0:RandomSampling'
>>> result = execute_task(spec, tasks[0])
>>> result.steps                       # driven for exactly the step budget
2
>>> rerun = execute_task(spec, tasks[0])   # same coordinates, same frontiers
>>> rerun.records[-1].frontier_costs == result.records[-1].frontier_costs
True

(Only the wall-clock seconds in the provenance trace vary between runs —
every frontier snapshot is a pure function of ``(spec, task)``.)
"""

from __future__ import annotations

import hashlib
import json
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.baselines import make_optimizer
from repro.baselines.nsga2 import NSGA2Optimizer
from repro.bench.anytime import CheckpointRecord, evaluate_anytime, evaluate_steps
from repro.bench.reference import dp_reference_frontier
from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.core.frontier import AlphaSchedule
from repro.core.interface import AnytimeOptimizer
from repro.core.rmq import RMQOptimizer
from repro.cost.model import MultiObjectiveCostModel, sample_metric_names
from repro.query.catalog import catalog_from_json_dict
from repro.query.generator import GeneratorConfig, QueryGenerator
from repro.query.join_graph import GraphShape
from repro.query.query import Query
from repro.utils.rng import derive_rng
from repro.utils.timer import Stopwatch

#: Version tag of the shard file format (v2 added the spec provenance hash).
SHARD_FORMAT = "repro-shard-v2"

#: Version tag of the provenance-hash key derivation.  Bump whenever task
#: execution semantics change in a result-affecting way — every cached or
#: memoized result keyed under the old tag then misses instead of serving a
#: stale frontier.
PROVENANCE_KEY_FORMAT = "repro-task-key-v1"

#: Task roles: an algorithm evaluation leaf, or a reference-frontier leaf.
ROLE_ALGORITHM = "algorithm"
ROLE_REFERENCE = "reference"

#: Granularity names accepted by :func:`execute_tasks` and the scenario spec.
GRANULARITIES = ("cell", "case", "auto")

#: ``auto`` granularity dispatches whole cells when there are at least this
#: many cell groups per worker (enough groups to keep every worker busy
#: despite uneven cell costs); below that it falls back to per-leaf dispatch.
AUTO_CELL_GROUPS_PER_WORKER = 4


@dataclass(frozen=True)
class TaskSpec:
    """Coordinates of one leaf task of the benchmark task graph.

    A task is fully described by its coordinates; together with the
    :class:`~repro.bench.scenario.ScenarioSpec` they determine the query,
    the cost model, the optimizer, and all of its randomness.  ``TaskSpec``
    is hashable and serializable, so schedules can be partitioned across
    processes or machines and reassembled by coordinate.
    """

    role: str
    shape: GraphShape
    num_tables: int
    case_index: int
    algorithm: str

    def __post_init__(self) -> None:
        if self.role not in (ROLE_ALGORITHM, ROLE_REFERENCE):
            raise ValueError(f"unknown task role {self.role!r}")

    @property
    def task_id(self) -> str:
        """Stable human-readable identifier (used in provenance reports)."""
        return (
            f"{self.role}:{self.shape}:{self.num_tables}"
            f":{self.case_index}:{self.algorithm}"
        )

    def to_json_dict(self) -> dict:
        """Plain-JSON representation (round-trips via :meth:`from_json_dict`)."""
        return {
            "role": self.role,
            "shape": str(self.shape),
            "num_tables": self.num_tables,
            "case_index": self.case_index,
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "TaskSpec":
        """Rebuild a task from :meth:`to_json_dict` output."""
        return cls(
            role=data["role"],
            shape=GraphShape(data["shape"]),
            num_tables=data["num_tables"],
            case_index=data["case_index"],
            algorithm=data["algorithm"],
        )


@dataclass(frozen=True)
class TaskResult:
    """Result of one executed leaf task.

    For algorithm tasks, ``records`` holds one checkpoint snapshot per
    scenario checkpoint; for reference tasks it holds a single record whose
    ``frontier_costs`` is the reference frontier (possibly empty when the
    DP scheme could not finish within its budgets).  The records double as
    the task's provenance trace: each carries the steps taken and the
    wall-clock seconds elapsed when the snapshot was taken.
    """

    task: TaskSpec
    records: Tuple[CheckpointRecord, ...]

    @property
    def steps(self) -> int:
        """Optimizer steps completed by the end of the task."""
        return self.records[-1].steps if self.records else 0

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds of the task up to the last snapshot."""
        return self.records[-1].elapsed if self.records else 0.0

    def to_json_dict(self) -> dict:
        """Plain-JSON representation (round-trips via :meth:`from_json_dict`)."""
        return {
            "task": self.task.to_json_dict(),
            "records": [
                {
                    "checkpoint": record.checkpoint,
                    "elapsed": record.elapsed,
                    "steps": record.steps,
                    "frontier_costs": [list(cost) for cost in record.frontier_costs],
                }
                for record in self.records
            ],
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "TaskResult":
        """Rebuild a task result from :meth:`to_json_dict` output."""
        return cls(
            task=TaskSpec.from_json_dict(data["task"]),
            records=tuple(
                CheckpointRecord(
                    checkpoint=record["checkpoint"],
                    elapsed=record["elapsed"],
                    steps=record["steps"],
                    frontier_costs=tuple(
                        tuple(cost) for cost in record["frontier_costs"]
                    ),
                )
                for record in data["records"]
            ),
        )


# ---------------------------------------------------------------------------
# Provenance hashes
# ---------------------------------------------------------------------------
def _canonical_json(payload: dict) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace (stable across runs)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def spec_provenance_hash(spec: ScenarioSpec) -> str:
    """Content hash of a full scenario spec (hex SHA-256).

    Shard files and coordinator work directories record this hash so that
    results can never be silently merged across different scenarios — even
    when a file's embedded spec was hand-edited after the run.
    """
    payload = {"format": PROVENANCE_KEY_FORMAT, "spec": spec.to_json_dict()}
    return hashlib.sha256(_canonical_json(payload)).hexdigest()


def _execution_fields(spec: ScenarioSpec, role: str) -> dict:
    """The spec fields that influence :func:`execute_task` for one role.

    Deliberately *excludes* everything that cannot change a leaf's result —
    name, description, the grid, the algorithm list, worker/granularity
    knobs — so a DP-reference leaf computed for one figure variant hashes
    identically under every variant that shares its test cases.
    """
    fields = {
        "seed": spec.seed,
        "selectivity_model": str(spec.selectivity_model),
        "cardinality_model": str(spec.cardinality_model),
        "catalog_json": spec.catalog_json,
        "num_metrics": spec.num_metrics,
        "metric_pool": list(spec.metric_pool),
    }
    if role == ROLE_REFERENCE:
        fields["reference_time_budget"] = spec.reference_time_budget
    else:
        fields["step_checkpoints"] = (
            None if spec.step_checkpoints is None else list(spec.step_checkpoints)
        )
        fields["checkpoints"] = list(spec.checkpoints)
        fields["time_budget"] = spec.time_budget
        fields["nsga_population"] = spec.nsga_population
        fields["scale"] = str(spec.scale)
    return fields


def task_provenance_hash(spec: ScenarioSpec, task: TaskSpec) -> str:
    """Content hash of one leaf task's full execution provenance (hex SHA-256).

    Two (spec, task) pairs hash equally exactly when :func:`execute_task`
    is guaranteed to produce the same frontiers for both — the key of the
    task-result cache and of the in-process reference memo.
    """
    payload = {
        "format": PROVENANCE_KEY_FORMAT,
        "task": task.to_json_dict(),
        "spec": _execution_fields(spec, task.role),
    }
    return hashlib.sha256(_canonical_json(payload)).hexdigest()


def task_is_deterministic(spec: ScenarioSpec, task: TaskSpec) -> bool:
    """Is this leaf's result a pure function of ``(spec, task)``?

    "Result" means every frontier snapshot and step count — the quantities
    the reduce consumes; the wall-clock seconds in the provenance trace
    always vary between runs.  Algorithm leaves are deterministic when the
    scenario is step-driven
    (wall-clock budgets make the iteration count load-dependent); reference
    leaves when the DP scheme runs to completion (no wall-clock cutoff).
    Only deterministic leaves may be cached or memoized — everything else
    must be recomputed every run.
    """
    if task.role == ROLE_REFERENCE:
        return spec.reference_time_budget is None
    return spec.step_checkpoints is not None


# ---------------------------------------------------------------------------
# Schedule
# ---------------------------------------------------------------------------
def schedule_tasks(spec: ScenarioSpec) -> List[TaskSpec]:
    """The full leaf-task schedule of a scenario, in canonical order.

    Order: grid cells in spec order, test cases within a cell, algorithms
    within a case (spec order), then the case's reference task (if any).
    Sharding and the merge coverage check both key off this order, so it
    must never depend on anything but the spec.
    """
    tasks: List[TaskSpec] = []
    for shape in spec.graph_shapes:
        for num_tables in spec.table_counts:
            for case_index in range(spec.num_test_cases):
                for algorithm in spec.algorithms:
                    tasks.append(
                        TaskSpec(
                            role=ROLE_ALGORITHM,
                            shape=shape,
                            num_tables=num_tables,
                            case_index=case_index,
                            algorithm=algorithm,
                        )
                    )
                if spec.reference_algorithm is not None:
                    tasks.append(
                        TaskSpec(
                            role=ROLE_REFERENCE,
                            shape=shape,
                            num_tables=num_tables,
                            case_index=case_index,
                            algorithm=spec.reference_algorithm,
                        )
                    )
    return tasks


def shard_tasks(tasks: Sequence[TaskSpec], index: int, count: int) -> List[TaskSpec]:
    """Deterministic shard ``index`` of ``count``: every ``count``-th task.

    Round-robin assignment spreads the (more expensive) large-query cells
    evenly across shards.
    """
    if count < 1:
        raise ValueError("shard count must be at least 1")
    if not 0 <= index < count:
        raise ValueError(f"shard index must be in [0, {count}), got {index}")
    return [task for position, task in enumerate(tasks) if position % count == index]


def resolve_granularity(
    granularity: str, tasks: Sequence[TaskSpec], workers: int
) -> str:
    """Resolve ``"auto"`` granularity to ``"cell"`` or ``"case"``.

    A pure function of (task list, worker count), so every execution mode —
    pool, shard, coordinator — resolves identically and determinism is
    preserved.  ``auto`` dispatches whole cells while there are at least
    :data:`AUTO_CELL_GROUPS_PER_WORKER` cell groups per worker (cheap IPC,
    and enough groups that one expensive cell cannot stall the run); with
    fewer groups it switches to per-leaf dispatch so within-cell parallelism
    keeps all workers busy.
    """
    if granularity not in GRANULARITIES:
        raise ValueError(
            f"granularity must be one of {GRANULARITIES}, got {granularity!r}"
        )
    if granularity != "auto":
        return granularity
    if workers <= 1:
        return "cell"
    num_groups = len(_group_by_cell(tasks))
    if num_groups >= AUTO_CELL_GROUPS_PER_WORKER * workers:
        return "cell"
    return "case"


# ---------------------------------------------------------------------------
# Execute
# ---------------------------------------------------------------------------
#: Process-local memo of deterministic reference-leaf results, keyed by
#: provenance hash.  DP(1.01) reference frontiers are by far the most
#: recomputed leaves — every figure variant of the same test cases rebuilds
#: them — and they are tiny, so an unbounded per-process map is safe.
_REFERENCE_MEMO: Dict[str, TaskResult] = {}


def clear_reference_memo() -> int:
    """Drop the process-local reference memo; returns the entry count."""
    size = len(_REFERENCE_MEMO)
    _REFERENCE_MEMO.clear()
    return size


def reference_memo_size() -> int:
    """Number of memoized reference-leaf results in this process."""
    return len(_REFERENCE_MEMO)


def build_test_case(
    spec: ScenarioSpec, shape: GraphShape, num_tables: int, case_index: int
) -> MultiObjectiveCostModel:
    """Generate the random query and cost model of one test case.

    Purely coordinate-derived: every leaf task of the same (cell, case)
    rebuilds an identical cost model in any process.
    """
    query_rng = derive_rng(spec.seed, "query", str(shape), num_tables, case_index)
    catalog = (
        None
        if spec.catalog_json is None
        else catalog_from_json_dict(json.loads(spec.catalog_json))
    )
    generator = QueryGenerator(
        rng=query_rng,
        config=GeneratorConfig(
            selectivity_model=spec.selectivity_model,
            cardinality_model=spec.cardinality_model,
            catalog=catalog,
        ),
    )
    query: Query = generator.generate(
        num_tables, shape, name=f"{shape}_{num_tables}_{case_index}"
    )
    metric_rng = derive_rng(spec.seed, "metrics", str(shape), num_tables, case_index)
    metric_names = sample_metric_names(spec.num_metrics, metric_rng, spec.metric_pool)
    return MultiObjectiveCostModel(query, metrics=metric_names)


def build_optimizer(
    name: str, cost_model: MultiObjectiveCostModel, rng: random.Random, spec: ScenarioSpec
) -> AnytimeOptimizer:
    """Build an optimizer for a scenario, applying scenario-level options.

    Two scenario-level adjustments are applied: the NSGA-II population size
    (200 in the paper, smaller at reduced scales) and, for RMQ at reduced
    scales, the compressed α schedule documented in DESIGN.md (the paper's
    schedule assumes iteration rates a pure-Python run cannot reach).
    """
    if name == "NSGA-II":
        return NSGA2Optimizer(cost_model, rng=rng, population_size=spec.nsga_population)
    if name == "RMQ" and spec.scale is not ScenarioScale.PAPER:
        return RMQOptimizer(cost_model, rng=rng, schedule=AlphaSchedule.compressed())
    return make_optimizer(name, cost_model, rng)


def reference_alpha(reference_algorithm: str) -> float:
    """Extract the α value from a reference-algorithm name such as ``DP(1.01)``."""
    if reference_algorithm.startswith("DP(") and reference_algorithm.endswith(")"):
        inner = reference_algorithm[3:-1]
        if inner.lower() == "infinity":
            return float("inf")
        return float(inner)
    raise ValueError(
        f"unsupported reference algorithm {reference_algorithm!r}; expected 'DP(<alpha>)'"
    )


def execute_task(
    spec: ScenarioSpec,
    task: TaskSpec,
    cost_model: MultiObjectiveCostModel | None = None,
) -> TaskResult:
    """Execute one leaf task (pure: depends only on ``spec`` and ``task``).

    ``cost_model`` may be passed when the caller already built the task's
    test case (same (cell, case) coordinates); the construction is pure, so
    sharing the instance across the case's leaves cannot change results.

    Reference leaves run the DP scheme on whatever plan engine the
    ``REPRO_PLAN_ENGINE`` convention resolves (arena by default).  The two
    engines produce bit-identical frontiers (``tests/test_dp_arena.py``),
    so provenance hashes, the in-process memo, and the task cache stay
    engine-agnostic.
    """
    if task.role == ROLE_REFERENCE:
        memo_key: str | None = None
        if task_is_deterministic(spec, task):
            memo_key = task_provenance_hash(spec, task)
            memoized = _REFERENCE_MEMO.get(memo_key)
            if memoized is not None:
                return memoized
        if cost_model is None:
            cost_model = build_test_case(
                spec, task.shape, task.num_tables, task.case_index
            )
        watch = Stopwatch()
        frontier = dp_reference_frontier(
            cost_model,
            alpha=reference_alpha(task.algorithm),
            time_budget=spec.reference_time_budget,
        )
        record = CheckpointRecord(
            checkpoint=0.0,
            elapsed=watch.elapsed,
            steps=0,
            frontier_costs=tuple(tuple(cost) for cost in frontier),
        )
        result = TaskResult(task=task, records=(record,))
        if memo_key is not None:
            _REFERENCE_MEMO[memo_key] = result
        return result
    if cost_model is None:
        cost_model = build_test_case(spec, task.shape, task.num_tables, task.case_index)
    rng = derive_rng(
        spec.seed, "algo", task.algorithm, str(task.shape), task.num_tables, task.case_index
    )
    optimizer = build_optimizer(task.algorithm, cost_model, rng, spec)
    if spec.step_checkpoints is not None:
        records = evaluate_steps(optimizer, spec.step_checkpoints)
    else:
        records = evaluate_anytime(optimizer, spec.checkpoints, spec.time_budget)
    return TaskResult(task=task, records=tuple(records))


def _execute_task_group(spec: ScenarioSpec, tasks: Sequence[TaskSpec]) -> List[TaskResult]:
    """Worker entry point: execute a group of tasks sequentially.

    Consecutive tasks of the same (cell, case) — the schedule groups all of
    a case's algorithm and reference leaves together — reuse one cost-model
    instance instead of re-deriving it per leaf (size-1 cache, so memory
    stays flat on large grids).
    """
    results: List[TaskResult] = []
    cached_key: Tuple[GraphShape, int, int] | None = None
    cached_model: MultiObjectiveCostModel | None = None
    for task in tasks:
        key = (task.shape, task.num_tables, task.case_index)
        if key != cached_key:
            cached_model = build_test_case(spec, *key)
            cached_key = key
        results.append(execute_task(spec, task, cost_model=cached_model))
    return results


def _execute_task_group_metered(
    spec: ScenarioSpec, tasks: Sequence[TaskSpec]
) -> Tuple[List[TaskResult], dict]:
    """Pool entry point: execute a group and return ``(results, metrics)``.

    The metered twin of :func:`_execute_task_group` for **process-pool**
    dispatch: it resets the worker process's global
    :class:`~repro.obs.metrics.Metrics` registry, executes the group, and
    ships the resulting snapshot back alongside the results so the driver
    can fold per-worker counters into its own totals
    (:meth:`~repro.obs.metrics.Metrics.merge_snapshot` is
    order-independent, so the fold is deterministic regardless of which
    lease lands first).  Must only run across a process boundary — the
    reset would clobber the driver's registry in-process.
    """
    from repro.obs import reset_global_metrics

    metrics = reset_global_metrics()
    results = _execute_task_group(spec, tasks)
    return results, metrics.snapshot()


def _group_by_cell(tasks: Sequence[TaskSpec]) -> List[List[TaskSpec]]:
    """Group tasks by grid cell, preserving schedule order."""
    groups: Dict[Tuple[GraphShape, int], List[TaskSpec]] = {}
    for task in tasks:
        groups.setdefault((task.shape, task.num_tables), []).append(task)
    return list(groups.values())


def execute_tasks(
    spec: ScenarioSpec,
    tasks: Sequence[TaskSpec],
    workers: int = 1,
    granularity: str = "cell",
) -> List[TaskResult]:
    """Execute a task list and return results in task order.

    ``workers == 1`` runs strictly sequentially in-process.  ``workers > 1``
    dispatches to a ``ProcessPoolExecutor``: whole cells at ``"cell"``
    granularity (cheap IPC), individual leaf tasks at ``"case"`` granularity
    (within-cell parallelism for scenarios with few cells); ``"auto"``
    picks between the two from the task-count/worker ratio
    (:func:`resolve_granularity`).  Because leaves are pure, every mode
    returns the same results — bit-identical whenever ``step_checkpoints``
    removes wall-clock sensitivity.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    granularity = resolve_granularity(granularity, tasks, workers)
    if workers == 1 or len(tasks) <= 1:
        return _execute_task_group(spec, tasks)
    if granularity == "cell":
        groups = _group_by_cell(tasks)
    else:
        groups = [[task] for task in tasks]
    max_workers = min(workers, len(groups))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(_execute_task_group, spec, group) for group in groups]
        return [result for future in futures for result in future.result()]


# ---------------------------------------------------------------------------
# Shard serialization
# ---------------------------------------------------------------------------
def run_shard(
    spec: ScenarioSpec,
    index: int,
    count: int,
    workers: int = 1,
    granularity: str = "cell",
) -> List[TaskResult]:
    """Execute shard ``index`` of ``count`` of a scenario's schedule."""
    tasks = shard_tasks(schedule_tasks(spec), index, count)
    return execute_tasks(spec, tasks, workers=workers, granularity=granularity)


def write_shard(
    path: str,
    spec: ScenarioSpec,
    index: int,
    count: int,
    results: Sequence[TaskResult],
) -> None:
    """Serialize one shard's task results to a JSON file.

    The payload records the spec's provenance hash next to the serialized
    spec; :func:`load_shards` recomputes and compares it, so a shard whose
    embedded spec was edited after the run can never be merged.
    """
    payload = {
        "format": SHARD_FORMAT,
        "spec": spec.to_json_dict(),
        "spec_hash": spec_provenance_hash(spec),
        "shard": {"index": index, "count": count},
        "results": [result.to_json_dict() for result in results],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")


def load_shards(paths: Sequence[str]) -> Tuple[ScenarioSpec, List[TaskResult]]:
    """Load shard files and reassemble the complete, ordered result list.

    Validates that every file uses the shard format, that each file's
    recorded spec provenance hash matches its embedded spec (a mismatch
    means the file was edited or corrupted after the run), that all shards
    describe the same scenario and shard count, that the shard indices
    cover ``0..count-1`` exactly once, and that the union of results covers
    the scenario's schedule exactly — so a merge can never silently reduce
    a partial or foreign run.
    """
    if not paths:
        raise ValueError("need at least one shard file")
    spec: ScenarioSpec | None = None
    spec_dict: dict | None = None
    spec_hash: str | None = None
    count: int | None = None
    seen_indices: List[int] = []
    results: List[TaskResult] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != SHARD_FORMAT:
            raise ValueError(f"{path}: not a {SHARD_FORMAT} shard file")
        recorded_hash = payload.get("spec_hash")
        if recorded_hash is None:
            raise ValueError(f"{path}: shard file carries no spec provenance hash")
        file_spec = ScenarioSpec.from_json_dict(payload["spec"])
        if recorded_hash != spec_provenance_hash(file_spec):
            raise ValueError(
                f"{path}: spec provenance hash mismatch — the embedded spec "
                "does not match the spec the shard was produced from"
            )
        if spec is None:
            spec_dict = payload["spec"]
            spec = file_spec
            spec_hash = recorded_hash
            count = payload["shard"]["count"]
        else:
            if recorded_hash != spec_hash or payload["spec"] != spec_dict:
                raise ValueError(f"{path}: scenario spec differs from {paths[0]}")
            if payload["shard"]["count"] != count:
                raise ValueError(f"{path}: shard count differs from {paths[0]}")
        index = payload["shard"]["index"]
        if index in seen_indices:
            raise ValueError(f"{path}: duplicate shard index {index}")
        seen_indices.append(index)
        results.extend(
            TaskResult.from_json_dict(result) for result in payload["results"]
        )
    assert spec is not None and count is not None
    missing_indices = sorted(set(range(count)) - set(seen_indices))
    if missing_indices:
        raise ValueError(f"missing shard indices {missing_indices} (of {count})")
    schedule = schedule_tasks(spec)
    by_task = {result.task: result for result in results}
    if len(by_task) != len(results):
        raise ValueError("duplicate task results across shards")
    missing_tasks = [task.task_id for task in schedule if task not in by_task]
    if missing_tasks:
        raise ValueError(
            f"shards do not cover the schedule; missing {missing_tasks[:5]}"
            + ("…" if len(missing_tasks) > 5 else "")
        )
    if len(results) != len(schedule):
        extra = len(results) - len(schedule)
        raise ValueError(f"shards contain {extra} task(s) not in the schedule")
    return spec, [by_task[task] for task in schedule]
