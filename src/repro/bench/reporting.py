"""Text reports for scenario results.

The paper presents its results as α-versus-time plots with one line per
algorithm and one panel per (join-graph shape, query size) cell.  The text
report prints the same series: one block per cell, one row per algorithm,
one column per checkpoint, values being the median approximation error.

:func:`format_task_provenance` renders the execution trace of a task-graph
run — one line per leaf task with its steps and wall-clock seconds — which
is what a ``--shard`` invocation prints alongside the serialized results.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.runner import ScenarioResult
from repro.bench.tasks import TaskResult


def _format_error(value: float) -> str:
    if value == float("inf"):
        return "inf"
    if value >= 1e4:
        return f"{value:.2e}"
    return f"{value:.3f}"


def format_scenario_report(result: ScenarioResult) -> str:
    """Render a scenario result as a human-readable text table."""
    spec = result.spec
    step_driven = spec.step_checkpoints is not None
    lines: List[str] = []
    lines.append(f"Scenario: {spec.name} — {spec.description}")
    if step_driven:
        budget = f"budget={spec.step_checkpoints[-1]} steps"
    else:
        budget = f"budget={spec.time_budget:g}s"
    lines.append(
        f"metrics={spec.num_metrics}  selectivity={spec.selectivity_model}  "
        f"test cases={spec.num_test_cases}  {budget}  scale={spec.scale}"
    )
    lines.append("")
    if step_driven:
        checkpoint_header = "  ".join(
            f"step={count}" for count in spec.step_checkpoints
        )
    else:
        checkpoint_header = "  ".join(f"t={t:g}s" for t in spec.checkpoints)
    for shape in spec.graph_shapes:
        for num_tables in spec.table_counts:
            lines.append(f"--- {str(shape).capitalize()}, {num_tables} tables ---")
            lines.append(f"{'algorithm':<14} {checkpoint_header}")
            for algorithm in spec.algorithms:
                cell = result.cell(shape, num_tables, algorithm)
                errors = "  ".join(_format_error(value) for value in cell.median_errors)
                lines.append(f"{algorithm:<14} {errors}")
            lines.append("")
    return "\n".join(lines)


def summarize_winners(result: ScenarioResult) -> str:
    """Per-cell winner summary: which algorithm has the lowest final error."""
    lines: List[str] = [f"Winners per cell for scenario {result.spec.name}:"]
    win_counts: Dict[str, int] = {name: 0 for name in result.spec.algorithms}
    for shape in result.spec.graph_shapes:
        for num_tables in result.spec.table_counts:
            best_algorithm = None
            best_error = float("inf")
            for algorithm in result.spec.algorithms:
                cell = result.cell(shape, num_tables, algorithm)
                if cell.final_error < best_error:
                    best_error = cell.final_error
                    best_algorithm = algorithm
            if best_algorithm is None:
                continue
            win_counts[best_algorithm] += 1
            lines.append(
                f"  {str(shape):<6} {num_tables:>4} tables: {best_algorithm} "
                f"(final error {_format_error(best_error)})"
            )
    lines.append("Win counts: " + ", ".join(f"{k}={v}" for k, v in win_counts.items()))
    return "\n".join(lines)


def format_task_provenance(results: Sequence[TaskResult]) -> str:
    """Execution trace of a task list: steps and elapsed seconds per leaf."""
    lines: List[str] = [f"Task provenance ({len(results)} tasks):"]
    total_elapsed = 0.0
    for result in results:
        lines.append(
            f"  {result.task.task_id:<40} steps={result.steps:<6} "
            f"elapsed={result.elapsed:.3f}s"
        )
        total_elapsed += result.elapsed
    lines.append(f"Total task seconds: {total_elapsed:.3f}")
    return "\n".join(lines)
