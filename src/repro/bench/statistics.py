"""Statistics experiments of Figure 3.

Figure 3 of the paper reports, for three cost metrics and varying query
sizes and join-graph shapes,

* (left) the median path length from a random plan to the nearest local
  Pareto optimum reached by ``ParetoClimb``, and
* (right) the median number of Pareto plans found by RMQ.

:func:`run_figure3_statistics` reproduces both statistics.  Path lengths are
expected to grow slowly (roughly linearly with a very small slope) with the
number of tables (Theorem 2), while the number of Pareto plans grows with
the query size.
"""

from __future__ import annotations

import statistics as stats
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.rmq import RMQOptimizer
from repro.cost.model import MultiObjectiveCostModel
from repro.query.generator import GeneratorConfig, QueryGenerator
from repro.query.join_graph import GraphShape
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class Figure3Result:
    """Median climb path length and Pareto-set size per (shape, query size)."""

    shapes: Tuple[GraphShape, ...]
    table_counts: Tuple[int, ...]
    median_path_length: Dict[Tuple[GraphShape, int], float]
    median_pareto_plans: Dict[Tuple[GraphShape, int], float]

    def format_report(self) -> str:
        """Human-readable table mirroring the two panels of Figure 3."""
        lines = ["Figure 3 statistics (3 cost metrics):"]
        lines.append(f"{'shape':<8}{'tables':>8}{'path length':>14}{'#Pareto plans':>16}")
        for shape in self.shapes:
            for count in self.table_counts:
                key = (shape, count)
                lines.append(
                    f"{str(shape):<8}{count:>8}"
                    f"{self.median_path_length[key]:>14.2f}"
                    f"{self.median_pareto_plans[key]:>16.1f}"
                )
        return "\n".join(lines)


def run_figure3_statistics(
    shapes: Tuple[GraphShape, ...] = (GraphShape.CHAIN, GraphShape.STAR, GraphShape.CYCLE),
    table_counts: Tuple[int, ...] = (10, 25, 50, 75, 100),
    num_test_cases: int = 5,
    iterations_per_case: int = 10,
    metrics: Tuple[str, ...] = ("time", "buffer", "disk"),
    seed: int = 20160626,
) -> Figure3Result:
    """Measure climb path lengths and RMQ Pareto-set sizes.

    Parameters
    ----------
    shapes / table_counts:
        The grid of workloads (the paper's grid by default).
    num_test_cases:
        Random queries per grid cell; medians are reported.
    iterations_per_case:
        RMQ iterations per test case (each iteration contributes one climb
        path length; the Pareto-set size is taken after the last iteration).
    metrics:
        Cost metrics (the paper uses all three for this figure).
    seed:
        Base seed for reproducibility.
    """
    median_paths: Dict[Tuple[GraphShape, int], float] = {}
    median_plans: Dict[Tuple[GraphShape, int], float] = {}
    for shape in shapes:
        for num_tables in table_counts:
            path_lengths: List[float] = []
            pareto_sizes: List[float] = []
            for case_index in range(num_test_cases):
                rng = derive_rng(seed, "fig3-query", str(shape), num_tables, case_index)
                generator = QueryGenerator(rng=rng, config=GeneratorConfig())
                query = generator.generate(num_tables, shape)
                cost_model = MultiObjectiveCostModel(query, metrics=metrics)
                optimizer = RMQOptimizer(
                    cost_model,
                    rng=derive_rng(seed, "fig3-rmq", str(shape), num_tables, case_index),
                )
                for _ in range(iterations_per_case):
                    optimizer.step()
                path_lengths.append(stats.median(optimizer.climb_path_lengths))
                pareto_sizes.append(float(len(optimizer.frontier())))
            key = (shape, num_tables)
            median_paths[key] = stats.median(path_lengths)
            median_plans[key] = stats.median(pareto_sizes)
    return Figure3Result(
        shapes=tuple(shapes),
        table_counts=tuple(table_counts),
        median_path_length=median_paths,
        median_pareto_plans=median_plans,
    )
