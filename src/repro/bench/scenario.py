"""Scenario specifications.

A :class:`ScenarioSpec` captures every parameter of one experiment grid in
the paper's evaluation: which join-graph shapes and query sizes to cover, how
many cost metrics to select, which selectivity model to use when generating
queries, which algorithms to compare, how many random test cases to aggregate
over, and the per-algorithm time budget with its checkpoints.

Because the paper's exact settings (20 test cases, 3–30 s budgets, up to 100
tables) take hours in pure Python, each figure spec exists at three scales:

* ``SMOKE`` — seconds-level runs used by the pytest benchmarks,
* ``DEFAULT`` — minutes-level runs producing readable trends,
* ``PAPER`` — the paper's grid (run it when you have the time).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Tuple

from repro.cost.metrics import PAPER_METRICS
from repro.query.generator import CardinalityModel, SelectivityModel
from repro.query.join_graph import GraphShape


class ScenarioScale(str, Enum):
    """Size of a scenario run (see module docstring)."""

    SMOKE = "smoke"
    DEFAULT = "default"
    PAPER = "paper"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ScenarioSpec:
    """Full description of one benchmark scenario.

    Attributes
    ----------
    name / description:
        Identification used in reports (e.g. ``"figure1"``).
    graph_shapes / table_counts:
        The grid of query workloads.
    num_metrics:
        Number of cost metrics per test case; metrics are sampled uniformly
        from ``metric_pool`` when fewer than the pool size (Section 6.1).
    metric_pool:
        Metrics to sample from (defaults to the paper's time/buffer/disk).
    selectivity_model:
        Steinbrunn (main experiments), MinMax (appendix experiments), or the
        workload-zoo correlated/low-selectivity model.
    cardinality_model:
        Uniform stratified sampling (the paper's setup) or Zipf-skewed
        strata (workload zoo).
    catalog_json:
        Optional catalog schema as a canonical JSON string
        (:meth:`repro.query.catalog.Catalog.to_json_dict`, serialized).
        When set, generated queries draw their tables from this fixed
        catalog instead of sampling synthetic statistics; the string form
        keeps the frozen spec hashable and provenance-stable.
    algorithms:
        Report names of the algorithms to compare (see
        :func:`repro.baselines.make_optimizer`).
    num_test_cases:
        Number of random queries per grid cell; medians are reported.
    time_budget / checkpoints:
        Per-algorithm wall-clock budget in seconds and the times at which the
        frontier is snapshotted.
    reference_algorithm / reference_time_budget:
        Optional extra algorithm (typically ``"DP(1.01)"``) run only to build
        the reference frontier, as in the precise small-query experiments.
    error_cap:
        Optional cap applied to reported approximation errors (Figures 6 and
        7 cap the plotted domain at 1e10).
    nsga_population:
        NSGA-II population size (200 in the paper, smaller at reduced scales).
    seed:
        Base seed; all randomness of the scenario derives from it.
    workers:
        Number of worker processes used to execute the benchmark tasks.
        ``1`` (the default) keeps the original strictly sequential path; with
        ``N > 1`` independent tasks run on a process pool.  Per-task
        randomness is derived from ``seed`` and the task coordinates alone,
        never from execution order — but wall-clock budgets remain
        load-sensitive (concurrent tasks get less CPU per second, so anytime
        loops fit fewer iterations), so results are guaranteed identical for
        every worker count only when ``step_checkpoints`` drives the run.
    step_checkpoints:
        Optional iteration-count checkpoints.  When given, every algorithm is
        driven for exactly these step counts (instead of the wall-clock
        ``time_budget``/``checkpoints``), which makes the whole scenario
        fully deterministic — ``run_scenario`` then returns bit-identical
        results for every worker count, granularity, and sharding.
    granularity:
        Unit of work dispatched to worker processes: ``"cell"`` submits all
        tasks of one (shape, size) grid cell together (cheap IPC, the
        pre-task-graph behavior), ``"case"`` submits every
        (cell, case, algorithm) leaf task individually (parallelism within a
        cell, for scenarios with few cells).  The default ``"auto"`` picks
        between the two from the task-count/worker ratio
        (:func:`repro.bench.tasks.resolve_granularity`) — a pure function of
        the schedule and worker count, so results stay deterministic.
        Ignored when ``workers == 1``.
    backend:
        Execution backend of :func:`repro.bench.runner.run_scenario`:
        ``"local"`` (the default) schedules statically onto an in-process
        pool; ``"coordinator"`` executes the schedule through the dynamic
        lease-based coordinator of :mod:`repro.dist` (fault-tolerant
        workers, task-result caching).  Both produce bit-identical results
        on step-driven specs.
    """

    name: str
    description: str
    graph_shapes: Tuple[GraphShape, ...]
    table_counts: Tuple[int, ...]
    num_metrics: int
    algorithms: Tuple[str, ...]
    num_test_cases: int = 3
    selectivity_model: SelectivityModel = SelectivityModel.STEINBRUNN
    cardinality_model: CardinalityModel = CardinalityModel.UNIFORM
    catalog_json: str | None = None
    metric_pool: Tuple[str, ...] = PAPER_METRICS
    time_budget: float = 1.0
    checkpoints: Tuple[float, ...] = (0.25, 0.5, 1.0)
    reference_algorithm: str | None = None
    reference_time_budget: float | None = None
    error_cap: float | None = None
    nsga_population: int = 50
    seed: int = 20160626
    scale: ScenarioScale = ScenarioScale.DEFAULT
    extra: Tuple[Tuple[str, str], ...] = field(default=())
    workers: int = 1
    step_checkpoints: Tuple[int, ...] | None = None
    granularity: str = "auto"
    backend: str = "local"

    def __post_init__(self) -> None:
        if not self.graph_shapes:
            raise ValueError("scenario needs at least one graph shape")
        if not self.table_counts:
            raise ValueError("scenario needs at least one table count")
        if any(count < 2 for count in self.table_counts):
            raise ValueError("table counts must be at least 2")
        if not 1 <= self.num_metrics <= len(self.metric_pool):
            raise ValueError(
                f"num_metrics must be between 1 and {len(self.metric_pool)}"
            )
        if not self.algorithms:
            raise ValueError("scenario needs at least one algorithm")
        if self.num_test_cases < 1:
            raise ValueError("need at least one test case")
        if self.time_budget <= 0:
            raise ValueError("time budget must be positive")
        if not self.checkpoints:
            raise ValueError("need at least one checkpoint")
        if any(t <= 0 for t in self.checkpoints):
            raise ValueError("checkpoints must be positive times")
        if tuple(sorted(self.checkpoints)) != tuple(self.checkpoints):
            raise ValueError("checkpoints must be sorted ascending")
        if self.error_cap is not None and self.error_cap < 1.0:
            raise ValueError("error cap must be at least 1")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.step_checkpoints is not None:
            if not self.step_checkpoints:
                raise ValueError("step checkpoints must be non-empty when given")
            if any(count < 1 for count in self.step_checkpoints):
                raise ValueError("step checkpoints must be positive step counts")
            if tuple(sorted(self.step_checkpoints)) != tuple(self.step_checkpoints):
                raise ValueError("step checkpoints must be sorted ascending")
        if self.granularity not in ("cell", "case", "auto"):
            raise ValueError(
                f"granularity must be 'cell', 'case', or 'auto', "
                f"got {self.granularity!r}"
            )
        if self.backend not in ("local", "coordinator"):
            raise ValueError(
                f"backend must be 'local' or 'coordinator', got {self.backend!r}"
            )
        if self.catalog_json is not None:
            try:
                parsed = json.loads(self.catalog_json)
            except (TypeError, json.JSONDecodeError):
                raise ValueError("catalog_json must be a JSON object string") from None
            if not isinstance(parsed, dict):
                raise ValueError("catalog_json must be a JSON object string")

    # ------------------------------------------------------------ utilities
    @property
    def num_cells(self) -> int:
        """Number of (shape, table count) grid cells."""
        return len(self.graph_shapes) * len(self.table_counts)

    def with_scale_overrides(
        self,
        table_counts: Tuple[int, ...] | None = None,
        num_test_cases: int | None = None,
        time_budget: float | None = None,
        checkpoints: Tuple[float, ...] | None = None,
        nsga_population: int | None = None,
        scale: ScenarioScale | None = None,
    ) -> "ScenarioSpec":
        """Return a copy with selected fields replaced (used by figure specs)."""
        updates = {}
        if table_counts is not None:
            updates["table_counts"] = table_counts
        if num_test_cases is not None:
            updates["num_test_cases"] = num_test_cases
        if time_budget is not None:
            updates["time_budget"] = time_budget
        if checkpoints is not None:
            updates["checkpoints"] = checkpoints
        if nsga_population is not None:
            updates["nsga_population"] = nsga_population
        if scale is not None:
            updates["scale"] = scale
        return replace(self, **updates)

    # -------------------------------------------------------- serialization
    def to_json_dict(self) -> dict:
        """Plain-JSON representation of the spec (used by shard files).

        The mapping round-trips exactly through :meth:`from_json_dict`:
        enums become their string values, tuples become lists.
        """
        return {
            "name": self.name,
            "description": self.description,
            "graph_shapes": [str(shape) for shape in self.graph_shapes],
            "table_counts": list(self.table_counts),
            "num_metrics": self.num_metrics,
            "algorithms": list(self.algorithms),
            "num_test_cases": self.num_test_cases,
            "selectivity_model": str(self.selectivity_model),
            "cardinality_model": str(self.cardinality_model),
            "catalog_json": self.catalog_json,
            "metric_pool": list(self.metric_pool),
            "time_budget": self.time_budget,
            "checkpoints": list(self.checkpoints),
            "reference_algorithm": self.reference_algorithm,
            "reference_time_budget": self.reference_time_budget,
            "error_cap": self.error_cap,
            "nsga_population": self.nsga_population,
            "seed": self.seed,
            "scale": str(self.scale),
            "extra": [list(pair) for pair in self.extra],
            "workers": self.workers,
            "step_checkpoints": (
                None if self.step_checkpoints is None else list(self.step_checkpoints)
            ),
            "granularity": self.granularity,
            "backend": self.backend,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json_dict` output."""
        return cls(
            name=data["name"],
            description=data["description"],
            graph_shapes=tuple(GraphShape(shape) for shape in data["graph_shapes"]),
            table_counts=tuple(data["table_counts"]),
            num_metrics=data["num_metrics"],
            algorithms=tuple(data["algorithms"]),
            num_test_cases=data["num_test_cases"],
            selectivity_model=SelectivityModel(data["selectivity_model"]),
            cardinality_model=CardinalityModel(data.get("cardinality_model", "uniform")),
            catalog_json=data.get("catalog_json"),
            metric_pool=tuple(data["metric_pool"]),
            time_budget=data["time_budget"],
            checkpoints=tuple(data["checkpoints"]),
            reference_algorithm=data["reference_algorithm"],
            reference_time_budget=data["reference_time_budget"],
            error_cap=data["error_cap"],
            nsga_population=data["nsga_population"],
            seed=data["seed"],
            scale=ScenarioScale(data["scale"]),
            extra=tuple(tuple(pair) for pair in data["extra"]),
            workers=data["workers"],
            step_checkpoints=(
                None
                if data["step_checkpoints"] is None
                else tuple(data["step_checkpoints"])
            ),
            granularity=data.get("granularity", "cell"),
            backend=data.get("backend", "local"),
        )
