"""Reference Pareto frontiers.

For large queries the true Pareto frontier is unobtainable, so — exactly like
the paper — the reference frontier is the Pareto-optimal subset of the union
of all plans produced by all compared algorithms on the test case
(Section 6.1).  For small queries the paper instead uses the DP approximation
scheme with α = 1.01 as a reference with formal guarantees (appendix,
Figures 8 and 9); :func:`dp_reference_frontier` reproduces that.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.baselines.dp import make_dp_optimizer
from repro.cost.model import MultiObjectiveCostModel
from repro.pareto.frontier import pareto_filter


def union_reference_frontier(
    frontiers: Iterable[Iterable[Sequence[float]]],
) -> List[Tuple[float, ...]]:
    """Pareto-optimal subset of the union of several produced frontiers.

    Raises ``ValueError`` when no plan at all was produced (the reference must
    not be empty).
    """
    all_costs = [tuple(cost) for frontier in frontiers for cost in frontier]
    if not all_costs:
        raise ValueError("cannot build a reference frontier from zero plans")
    return pareto_filter(all_costs)


def dp_reference_frontier(
    cost_model: MultiObjectiveCostModel,
    alpha: float = 1.01,
    time_budget: float | None = None,
    max_steps: int | None = 1_000_000,
    engine: str | None = None,
) -> List[Tuple[float, ...]]:
    """Reference frontier computed by the DP approximation scheme.

    Parameters
    ----------
    cost_model:
        Cost model of the test-case query (should join few tables; the DP
        enumeration is exponential — though the arena engine pushes the
        practical reference ceiling well past the object engine's).
    alpha:
        Approximation guarantee of the reference (1.01 in the paper).
    time_budget / max_steps:
        Safety budgets; the scheme normally completes well before them for
        the small queries this is intended for.
    engine:
        Plan engine (``None``: the ``REPRO_PLAN_ENGINE`` convention); both
        engines produce bit-identical frontiers.

    Returns
    -------
    list of cost tuples
        The Pareto-filtered cost vectors of the DP result.  Empty only if the
        scheme could not finish within the budgets.
    """
    optimizer = make_dp_optimizer(cost_model, alpha=alpha, engine=engine)
    optimizer.run(time_budget=time_budget, max_steps=max_steps)
    frontier = [tuple(plan.cost) for plan in optimizer.frontier()]
    return pareto_filter(frontier) if frontier else []
