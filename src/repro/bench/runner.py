"""Scenario runner: schedule → execute → reduce over the benchmark task graph.

For every grid cell (join-graph shape × query size) the scenario generates
``num_test_cases`` random queries, runs every algorithm of the scenario on
each query under the scenario's budget, snapshots frontiers at the
checkpoints, builds the per-test-case reference frontier, computes the
approximation error of every snapshot against that reference, and finally
reports the median error per (cell, algorithm, checkpoint) — the quantity the
paper plots.

Execution is organized as an explicit task graph (:mod:`repro.bench.tasks`):

* :func:`repro.bench.tasks.schedule_tasks` expands the spec into
  ``(cell, case, algorithm)`` leaf tasks (plus per-case reference tasks);
* :func:`repro.bench.tasks.execute_tasks` runs them — sequentially, on a
  ``ProcessPoolExecutor`` at ``cell``/``case``/``auto`` granularity, as a
  ``--shard k/n`` subset serialized to JSON, or dynamically through the
  lease-based coordinator of :mod:`repro.dist`
  (``run_scenario(backend="coordinator")``);
* :func:`reduce_task_results` folds the leaf results into per-cell medians.

Leaf tasks are pure (all randomness is derived from the scenario seed and
the task coordinates, never from execution order), and the reduce step is a
pure function of the result set, so every execution mode — including a
:func:`merge_shards` of shards executed on different machines — produces
bit-identical :class:`ScenarioResult`\\ s whenever ``step_checkpoints``
drives the run.
"""

from __future__ import annotations

import statistics as stats
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.bench.anytime import CheckpointRecord
from repro.bench.reference import union_reference_frontier
from repro.bench.scenario import ScenarioSpec
from repro.bench.tasks import (
    ROLE_REFERENCE,
    TaskResult,
    build_optimizer,
    build_test_case,
    execute_tasks,
    load_shards,
    reference_alpha,
    schedule_tasks,
    task_is_deterministic,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.dist.cache import TaskCache
from repro.obs import get_tracer, global_metrics
from repro.pareto.epsilon import approximation_error
from repro.query.join_graph import GraphShape

# Re-exported for callers of the pre-task-graph API (tests, notebooks).
__all__ = [
    "CellResult",
    "ScenarioResult",
    "run_scenario",
    "reduce_task_results",
    "merge_shards",
    "build_optimizer",
    "build_test_case",
    "reference_alpha",
]

#: Backward-compatible alias of :func:`repro.bench.tasks.reference_alpha`.
_reference_alpha = reference_alpha
#: Backward-compatible alias of :func:`repro.bench.tasks.build_test_case`.
_build_test_case = build_test_case


@dataclass(frozen=True)
class CellResult:
    """Aggregated results of one grid cell for one algorithm.

    ``median_errors[k]`` is the median (over test cases) approximation error
    at ``checkpoints[k]``; ``median_frontier_sizes[k]`` is the corresponding
    median number of result plans.
    """

    shape: GraphShape
    num_tables: int
    algorithm: str
    checkpoints: Tuple[float, ...]
    median_errors: Tuple[float, ...]
    median_frontier_sizes: Tuple[float, ...]

    @property
    def final_error(self) -> float:
        """Median error at the last checkpoint."""
        return self.median_errors[-1]


@dataclass(frozen=True)
class ScenarioResult:
    """All cell results of a scenario run."""

    spec: ScenarioSpec
    cells: Tuple[CellResult, ...]

    def cell(self, shape: GraphShape, num_tables: int, algorithm: str) -> CellResult:
        """Look up one cell result."""
        for cell in self.cells:
            if (
                cell.shape is shape
                and cell.num_tables == num_tables
                and cell.algorithm == algorithm
            ):
                return cell
        raise KeyError(f"no cell for ({shape}, {num_tables}, {algorithm})")

    def algorithms(self) -> Tuple[str, ...]:
        """Algorithms present in the result, in spec order."""
        return self.spec.algorithms

    def final_errors_by_algorithm(self) -> Dict[str, List[float]]:
        """Final-checkpoint median errors of every cell, grouped by algorithm."""
        grouped: Dict[str, List[float]] = {name: [] for name in self.spec.algorithms}
        for cell in self.cells:
            grouped[cell.algorithm].append(cell.final_error)
        return grouped


def run_scenario(
    spec: ScenarioSpec,
    workers: int | None = None,
    granularity: str | None = None,
    backend: str | None = None,
    cache: "TaskCache | None" = None,
) -> ScenarioResult:
    """Run a full scenario and return aggregated per-cell medians.

    Parameters
    ----------
    spec:
        The scenario to execute.
    workers:
        Overrides ``spec.workers`` when given.  ``1`` runs the schedule
        strictly sequentially in-process (the original path); ``N > 1``
        executes the independent leaf tasks on a process pool.
    granularity:
        Overrides ``spec.granularity`` when given: ``"cell"`` dispatches
        whole grid cells to workers, ``"case"`` dispatches every
        (cell, case, algorithm) leaf individually, ``"auto"`` (the
        default) picks per scenario from the task-count/worker ratio.
    backend:
        Overrides ``spec.backend`` when given.  ``"local"`` schedules
        statically (pool or sequential); ``"coordinator"`` executes the
        same schedule through the dynamic lease-based coordinator of
        :mod:`repro.dist` (fault-tolerant, cache-aware).
    cache:
        Optional :class:`repro.dist.cache.TaskCache`.  Deterministic leaf
        results are served from / written back to it under either backend;
        non-deterministic leaves always execute.

    Cell order in the result is the grid order in every mode, and with
    step-based checkpoints the results are bit-identical for every worker
    count, granularity, backend, and cache state.
    """
    effective_workers = spec.workers if workers is None else workers
    effective_granularity = spec.granularity if granularity is None else granularity
    effective_backend = spec.backend if backend is None else backend
    if effective_workers < 1:
        raise ValueError("workers must be at least 1")
    if effective_backend not in ("local", "coordinator"):
        raise ValueError(
            f"backend must be 'local' or 'coordinator', got {effective_backend!r}"
        )
    # Phase spans cost one NULL_SPAN call each when tracing is off; with
    # REPRO_TRACE=1 they give the trace its top-level schedule → execute →
    # reduce breakdown.
    tracer = get_tracer()
    if effective_backend == "coordinator":
        from repro.dist.worker import run_coordinated

        with tracer.span(
            "scenario.execute", backend="coordinator", workers=effective_workers
        ):
            coordinator = run_coordinated(
                spec,
                workers=effective_workers,
                granularity=effective_granularity,
                cache=cache,
            )
            results = coordinator.results()
        with tracer.span("scenario.reduce", tasks=len(results)):
            cells = reduce_task_results(spec, results)
        global_metrics().add("scenario.runs")
        return ScenarioResult(spec=spec, cells=cells)
    with tracer.span("scenario.schedule"):
        tasks = schedule_tasks(spec)
    with tracer.span(
        "scenario.execute", backend="local", workers=effective_workers
    ):
        if cache is None:
            results = execute_tasks(
                spec,
                tasks,
                workers=effective_workers,
                granularity=effective_granularity,
            )
        else:
            cached, pending = cache.partition(spec, tasks)
            executed = execute_tasks(
                spec,
                pending,
                workers=effective_workers,
                granularity=effective_granularity,
            )
            for result in executed:
                if task_is_deterministic(spec, result.task):
                    cache.put(spec, result)
                cached[result.task] = result
            results = [cached[task] for task in tasks]
    with tracer.span("scenario.reduce", tasks=len(results)):
        cells = reduce_task_results(spec, results)
    global_metrics().add("scenario.runs")
    return ScenarioResult(spec=spec, cells=cells)


def merge_shards(paths: Sequence[str]) -> ScenarioResult:
    """Reduce shard files written by ``--shard k/n`` runs into one result.

    Validates complete schedule coverage (see
    :func:`repro.bench.tasks.load_shards`), then applies the same reduce as
    :func:`run_scenario`, so the merged result is bit-identical to a
    sequential run of the same step-driven spec.
    """
    spec, results = load_shards(paths)
    return ScenarioResult(spec=spec, cells=reduce_task_results(spec, results))


# --------------------------------------------------------------------------
# Reduce
# --------------------------------------------------------------------------
def reduce_task_results(
    spec: ScenarioSpec, results: Sequence[TaskResult]
) -> Tuple[CellResult, ...]:
    """Fold leaf-task results into per-cell medians (pure; order-insensitive).

    The per-case reference frontier is the union of every algorithm's final
    snapshot — assembled in spec algorithm order, exactly like the
    pre-task-graph sequential loop — plus the case's reference-task frontier
    when the scenario names a reference algorithm.
    """
    algorithm_records: Dict[
        Tuple[GraphShape, int, int, str], Tuple[CheckpointRecord, ...]
    ] = {}
    reference_frontiers: Dict[
        Tuple[GraphShape, int, int], List[Tuple[float, ...]]
    ] = {}
    for result in results:
        task = result.task
        if task.role == ROLE_REFERENCE:
            key = (task.shape, task.num_tables, task.case_index)
            reference_frontiers[key] = list(result.records[-1].frontier_costs)
        else:
            algorithm_records[
                (task.shape, task.num_tables, task.case_index, task.algorithm)
            ] = result.records

    if spec.step_checkpoints is not None:
        checkpoint_values = tuple(float(count) for count in spec.step_checkpoints)
    else:
        checkpoint_values = tuple(spec.checkpoints)

    cells: List[CellResult] = []
    for shape in spec.graph_shapes:
        for num_tables in spec.table_counts:
            errors: Dict[str, List[List[float]]] = {
                name: [] for name in spec.algorithms
            }
            sizes: Dict[str, List[List[float]]] = {name: [] for name in spec.algorithms}
            for case_index in range(spec.num_test_cases):
                case_records = {
                    algorithm: algorithm_records[
                        (shape, num_tables, case_index, algorithm)
                    ]
                    for algorithm in spec.algorithms
                }
                frontiers: List[List[Tuple[float, ...]]] = [
                    list(records[-1].frontier_costs)
                    for records in case_records.values()
                ]
                if spec.reference_algorithm is not None:
                    reference = reference_frontiers[(shape, num_tables, case_index)]
                    if reference:
                        frontiers.append(reference)
                reference_frontier = union_reference_frontier(frontiers)
                for algorithm in spec.algorithms:
                    error_series, size_series = _error_series(
                        case_records[algorithm], reference_frontier, spec.error_cap
                    )
                    errors[algorithm].append(error_series)
                    sizes[algorithm].append(size_series)
            for algorithm in spec.algorithms:
                cells.append(
                    CellResult(
                        shape=shape,
                        num_tables=num_tables,
                        algorithm=algorithm,
                        checkpoints=checkpoint_values,
                        median_errors=tuple(_median_over_cases(errors[algorithm])),
                        median_frontier_sizes=tuple(
                            _median_over_cases(sizes[algorithm])
                        ),
                    )
                )
    return tuple(cells)


def _error_series(
    records: Sequence[CheckpointRecord],
    reference: Sequence[Tuple[float, ...]],
    error_cap: float | None,
) -> Tuple[List[float], List[float]]:
    """Approximation error and frontier size at every checkpoint."""
    errors: List[float] = []
    sizes: List[float] = []
    for record in records:
        error = approximation_error(record.frontier_costs, reference)
        if error_cap is not None and error > error_cap:
            error = error_cap
        errors.append(error)
        sizes.append(float(record.frontier_size))
    return errors, sizes


def _median_over_cases(series_per_case: List[List[float]]) -> List[float]:
    """Per-checkpoint median over test cases (cases are rows, checkpoints columns).

    Infinite values (algorithms that produced no plans within the budget)
    participate in the median as-is: ``inf`` sorts last, so a mixed
    finite/infinite column has a well-defined median, an even split averages
    to ``inf``, and an all-infinite column reports ``inf`` — no special
    casing needed (pinned by ``tests/test_runner.py::TestMedianOverCases``).
    """
    if not series_per_case:
        return []
    num_checkpoints = len(series_per_case[0])
    return [
        stats.median([series[index] for series in series_per_case])
        for index in range(num_checkpoints)
    ]
