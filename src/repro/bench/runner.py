"""Scenario runner: executes a full experiment grid and aggregates medians.

For every grid cell (join-graph shape × query size) the runner generates
``num_test_cases`` random queries, runs every algorithm of the scenario on
each query under the scenario's time budget, snapshots frontiers at the
checkpoints, builds the per-test-case reference frontier, computes the
approximation error of every snapshot against that reference, and finally
reports the median error per (cell, algorithm, checkpoint) — the quantity the
paper plots.

Grid cells are mutually independent: every random stream is derived from the
scenario seed and the cell coordinates (:func:`repro.utils.rng.derive_rng`),
never from execution order.  :func:`run_scenario` therefore treats the grid
as a work-list of cell tasks and can execute it on a
``concurrent.futures.ProcessPoolExecutor`` (``workers`` on the spec, the CLI,
or the call).  The default ``workers=1`` keeps the original strictly
sequential path, so existing results stay bit-identical; with
``step_checkpoints`` set on the spec, cells are driven by iteration counts
instead of wall-clock time and any worker count reproduces the sequential
output exactly.
"""

from __future__ import annotations

import random
import statistics as stats
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.baselines import make_optimizer
from repro.baselines.nsga2 import NSGA2Optimizer
from repro.bench.anytime import CheckpointRecord, evaluate_anytime, evaluate_steps
from repro.bench.reference import dp_reference_frontier, union_reference_frontier
from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.core.frontier import AlphaSchedule
from repro.core.interface import AnytimeOptimizer
from repro.core.rmq import RMQOptimizer
from repro.cost.model import MultiObjectiveCostModel, sample_metric_names
from repro.pareto.epsilon import approximation_error
from repro.query.generator import GeneratorConfig, QueryGenerator
from repro.query.join_graph import GraphShape
from repro.query.query import Query
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class CellResult:
    """Aggregated results of one grid cell for one algorithm.

    ``median_errors[k]`` is the median (over test cases) approximation error
    at ``checkpoints[k]``; ``median_frontier_sizes[k]`` is the corresponding
    median number of result plans.
    """

    shape: GraphShape
    num_tables: int
    algorithm: str
    checkpoints: Tuple[float, ...]
    median_errors: Tuple[float, ...]
    median_frontier_sizes: Tuple[float, ...]

    @property
    def final_error(self) -> float:
        """Median error at the last checkpoint."""
        return self.median_errors[-1]


@dataclass(frozen=True)
class ScenarioResult:
    """All cell results of a scenario run."""

    spec: ScenarioSpec
    cells: Tuple[CellResult, ...]

    def cell(self, shape: GraphShape, num_tables: int, algorithm: str) -> CellResult:
        """Look up one cell result."""
        for cell in self.cells:
            if (
                cell.shape is shape
                and cell.num_tables == num_tables
                and cell.algorithm == algorithm
            ):
                return cell
        raise KeyError(f"no cell for ({shape}, {num_tables}, {algorithm})")

    def algorithms(self) -> Tuple[str, ...]:
        """Algorithms present in the result, in spec order."""
        return self.spec.algorithms

    def final_errors_by_algorithm(self) -> Dict[str, List[float]]:
        """Final-checkpoint median errors of every cell, grouped by algorithm."""
        grouped: Dict[str, List[float]] = {name: [] for name in self.spec.algorithms}
        for cell in self.cells:
            grouped[cell.algorithm].append(cell.final_error)
        return grouped


def build_optimizer(
    name: str, cost_model: MultiObjectiveCostModel, rng: random.Random, spec: ScenarioSpec
) -> AnytimeOptimizer:
    """Build an optimizer for a scenario, applying scenario-level options.

    Two scenario-level adjustments are applied: the NSGA-II population size
    (200 in the paper, smaller at reduced scales) and, for RMQ at reduced
    scales, the compressed α schedule documented in DESIGN.md (the paper's
    schedule assumes iteration rates a pure-Python run cannot reach).
    """
    if name == "NSGA-II":
        return NSGA2Optimizer(cost_model, rng=rng, population_size=spec.nsga_population)
    if name == "RMQ" and spec.scale is not ScenarioScale.PAPER:
        return RMQOptimizer(cost_model, rng=rng, schedule=AlphaSchedule.compressed())
    return make_optimizer(name, cost_model, rng)


def run_scenario(spec: ScenarioSpec, workers: int | None = None) -> ScenarioResult:
    """Run a full scenario and return aggregated per-cell medians.

    Parameters
    ----------
    spec:
        The scenario to execute.
    workers:
        Overrides ``spec.workers`` when given.  ``1`` runs the grid cells
        strictly sequentially in-process (the original path); ``N > 1``
        executes the independent cell tasks on a process pool.  Cell order in
        the result is the grid order either way, and with step-based
        checkpoints the results are identical for every worker count.
    """
    effective_workers = spec.workers if workers is None else workers
    if effective_workers < 1:
        raise ValueError("workers must be at least 1")
    tasks = [
        (shape, num_tables)
        for shape in spec.graph_shapes
        for num_tables in spec.table_counts
    ]
    cells: List[CellResult] = []
    if effective_workers == 1 or len(tasks) == 1:
        for shape, num_tables in tasks:
            cells.extend(_run_cell(spec, shape, num_tables))
    else:
        max_workers = min(effective_workers, len(tasks))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(_run_cell, spec, shape, num_tables)
                for shape, num_tables in tasks
            ]
            for future in futures:
                cells.extend(future.result())
    return ScenarioResult(spec=spec, cells=tuple(cells))


# --------------------------------------------------------------------------
# Cell execution
# --------------------------------------------------------------------------
def _run_cell(
    spec: ScenarioSpec, shape: GraphShape, num_tables: int
) -> List[CellResult]:
    """Run every algorithm on every test case of one grid cell."""
    errors: Dict[str, List[List[float]]] = {name: [] for name in spec.algorithms}
    sizes: Dict[str, List[List[float]]] = {name: [] for name in spec.algorithms}

    for case_index in range(spec.num_test_cases):
        cost_model = _build_test_case(spec, shape, num_tables, case_index)
        case_records: Dict[str, List[CheckpointRecord]] = {}
        for algorithm in spec.algorithms:
            rng = derive_rng(spec.seed, "algo", algorithm, str(shape), num_tables, case_index)
            optimizer = build_optimizer(algorithm, cost_model, rng, spec)
            if spec.step_checkpoints is not None:
                case_records[algorithm] = evaluate_steps(
                    optimizer, spec.step_checkpoints
                )
            else:
                case_records[algorithm] = evaluate_anytime(
                    optimizer, spec.checkpoints, spec.time_budget
                )
        reference = _build_reference(spec, cost_model, case_records)
        for algorithm in spec.algorithms:
            error_series, size_series = _error_series(
                case_records[algorithm], reference, spec.error_cap
            )
            errors[algorithm].append(error_series)
            sizes[algorithm].append(size_series)

    if spec.step_checkpoints is not None:
        checkpoint_values = tuple(float(count) for count in spec.step_checkpoints)
    else:
        checkpoint_values = tuple(spec.checkpoints)
    results: List[CellResult] = []
    for algorithm in spec.algorithms:
        median_errors = _median_over_cases(errors[algorithm])
        median_sizes = _median_over_cases(sizes[algorithm])
        results.append(
            CellResult(
                shape=shape,
                num_tables=num_tables,
                algorithm=algorithm,
                checkpoints=checkpoint_values,
                median_errors=tuple(median_errors),
                median_frontier_sizes=tuple(median_sizes),
            )
        )
    return results


def _build_test_case(
    spec: ScenarioSpec, shape: GraphShape, num_tables: int, case_index: int
) -> MultiObjectiveCostModel:
    """Generate the random query and cost model of one test case."""
    query_rng = derive_rng(spec.seed, "query", str(shape), num_tables, case_index)
    generator = QueryGenerator(
        rng=query_rng,
        config=GeneratorConfig(selectivity_model=spec.selectivity_model),
    )
    query: Query = generator.generate(
        num_tables, shape, name=f"{shape}_{num_tables}_{case_index}"
    )
    metric_rng = derive_rng(spec.seed, "metrics", str(shape), num_tables, case_index)
    metric_names = sample_metric_names(spec.num_metrics, metric_rng, spec.metric_pool)
    return MultiObjectiveCostModel(query, metrics=metric_names)


def _build_reference(
    spec: ScenarioSpec,
    cost_model: MultiObjectiveCostModel,
    case_records: Dict[str, List[CheckpointRecord]],
) -> List[Tuple[float, ...]]:
    """Reference frontier for one test case.

    The union of every algorithm's final snapshot is always included; when
    the scenario names a reference algorithm (the precise small-query
    experiments use DP(1.01)), its frontier is added to the union.
    """
    frontiers: List[List[Tuple[float, ...]]] = [
        list(records[-1].frontier_costs) for records in case_records.values()
    ]
    if spec.reference_algorithm is not None:
        alpha = _reference_alpha(spec.reference_algorithm)
        reference = dp_reference_frontier(
            cost_model, alpha=alpha, time_budget=spec.reference_time_budget
        )
        if reference:
            frontiers.append(reference)
    return union_reference_frontier(frontiers)


def _reference_alpha(reference_algorithm: str) -> float:
    """Extract the α value from a reference-algorithm name such as ``DP(1.01)``."""
    if reference_algorithm.startswith("DP(") and reference_algorithm.endswith(")"):
        inner = reference_algorithm[3:-1]
        if inner.lower() == "infinity":
            return float("inf")
        return float(inner)
    raise ValueError(
        f"unsupported reference algorithm {reference_algorithm!r}; expected 'DP(<alpha>)'"
    )


def _error_series(
    records: Sequence[CheckpointRecord],
    reference: Sequence[Tuple[float, ...]],
    error_cap: float | None,
) -> Tuple[List[float], List[float]]:
    """Approximation error and frontier size at every checkpoint."""
    errors: List[float] = []
    sizes: List[float] = []
    for record in records:
        error = approximation_error(record.frontier_costs, reference)
        if error_cap is not None and error > error_cap:
            error = error_cap
        errors.append(error)
        sizes.append(float(record.frontier_size))
    return errors, sizes


def _median_over_cases(series_per_case: List[List[float]]) -> List[float]:
    """Per-checkpoint median over test cases (cases are rows, checkpoints columns).

    Infinite values (algorithms that produced no plans within the budget)
    participate in the median as-is: ``inf`` sorts last, so a mixed
    finite/infinite column has a well-defined median, an even split averages
    to ``inf``, and an all-infinite column reports ``inf`` — no special
    casing needed (pinned by ``tests/test_runner.py::TestMedianOverCases``).
    """
    if not series_per_case:
        return []
    num_checkpoints = len(series_per_case[0])
    return [
        stats.median([series[index] for series in series_per_case])
        for index in range(num_checkpoints)
    ]
