"""Command-line entry point for running benchmark scenarios.

Usage::

    python -m repro.bench.cli figure1 --scale smoke
    python -m repro.bench.cli figure3 --scale default
    python -m repro.bench.cli ablation_rmq --scale smoke --seed 7

    # Wall-clock-free (step-driven) variant, parallel within cells:
    python -m repro.bench.cli figure1 --scale smoke --steps \\
        --workers 4 --granularity case

    # Shard a grid across machines, then merge the serialized results:
    python -m repro.bench.cli figure1 --scale smoke --steps --shard 0/2 --out s0.json
    python -m repro.bench.cli figure1 --scale smoke --steps --shard 1/2 --out s1.json
    python -m repro.bench.cli merge s0.json s1.json

    # Dynamic scheduling: a coordinator work directory served by local
    # and/or remote workers, with a shared task-result cache:
    python -m repro.bench.cli coordinate figure1 --scale smoke --steps \\
        --dir workdir --workers 2 --cache-dir ~/.repro-cache
    python -m repro.bench.cli work --dir workdir   # on any other machine

    # Optimization as a service: one long-lived TCP server, persistent
    # worker pools attaching at runtime, many concurrent clients sharing
    # one deterministic-leaf cache:
    python -m repro.bench.cli serve --port 7963 --cache-dir ~/.repro-cache
    python -m repro.bench.cli work --attach 127.0.0.1:7963 --workers 4
    python -m repro.bench.cli submit figure1 --scale smoke --steps --port 7963

    # Regression archive: re-run the workload zoo and compare its frontier
    # fingerprints against the pinned baseline (tests/regression/archive.json):
    python -m repro.bench.cli regress check
    python -m repro.bench.cli regress record   # re-pin after intended changes

    # Traced run: Chrome trace_event JSON (chrome://tracing / Perfetto)
    # plus a metrics report for one figure run:
    python -m repro.bench.cli trace figure1 --scale smoke --steps \\
        --trace-out trace.json --metrics-out metrics.json

    # Live dashboard over a coordinator run publishing metrics snapshots
    # (REPRO_METRICS_OUT=/tmp/m.json in the run's environment):
    python -m repro.bench.cli top --file /tmp/m.json

Every subcommand honors ``REPRO_TRACE=1`` (enable tracing) together with
``REPRO_TRACE_OUT`` / ``REPRO_METRICS_OUT`` (write the trace and a final
metrics snapshot on exit), so existing invocations gain tracing without
flag changes.

Prints the same text report as the pytest benchmark targets; useful when
iterating on one figure without the pytest-benchmark machinery.  With
``--steps``, a two-shard ``merge`` — and a ``coordinate`` run with any
number of workers — is bit-identical to the sequential run.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence, Tuple

from repro.bench import figures
from repro.bench.reporting import (
    format_scenario_report,
    format_task_provenance,
    summarize_winners,
)
from repro.bench.runner import ScenarioResult, merge_shards, reduce_task_results, run_scenario
from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.bench.statistics import run_figure3_statistics
from repro.bench.tasks import run_shard, write_shard


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the benchmark CLI (figure runs)."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli",
        description=(
            "Regenerate one figure of the paper's evaluation, or merge shard "
            "files with 'merge <shard.json>...'."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(figures.FIGURE_SPECS) + ["figure3"],
        help="figure identifier (figure1..figure9, ablation_rmq, ablation_alpha, zoo)",
    )
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ScenarioScale],
        default=ScenarioScale.DEFAULT.value,
        help="experiment scale (smoke = seconds, default = minutes, paper = hours)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario base seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "run the benchmark tasks on N worker processes (default: sequential; "
            "ignored by figure3, which is a single statistics run). "
            "Note: with wall-clock budgets, concurrent tasks share CPU, so "
            "medians can shift versus a sequential run; use --steps for "
            "fully deterministic parallel runs"
        ),
    )
    parser.add_argument(
        "--granularity",
        choices=["cell", "case", "auto"],
        default=None,
        help=(
            "unit of work dispatched to workers: whole grid cells, individual "
            "(cell, case, algorithm) leaf tasks, or 'auto' (the default) "
            "which picks per scenario from the task-count/worker ratio"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["local", "coordinator"],
        default=None,
        help=(
            "execution backend: 'local' (static schedule, the default) or "
            "'coordinator' (dynamic lease-based scheduling with "
            "fault-tolerant workers); results are identical on --steps runs"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help=(
            "task-result cache directory: deterministic leaf results "
            "(notably DP reference frontiers) are reused across runs and "
            "figure variants"
        ),
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        help=(
            "size cap for --cache-dir in megabytes: least-recently-used "
            "entries are evicted when a write exceeds the cap (default: "
            "unbounded, append-only)"
        ),
    )
    parser.add_argument(
        "--steps",
        action="store_true",
        help=(
            "run the wall-clock-free variant of the figure (iteration-count "
            "checkpoints; deterministic for any worker count or sharding)"
        ),
    )
    parser.add_argument(
        "--shard",
        type=str,
        default=None,
        metavar="K/N",
        help=(
            "execute only shard K of N of the task schedule and serialize the "
            "task results to --out as JSON for a later 'merge' invocation"
        ),
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="output path of the shard JSON (default: <figure>_shard_K_of_N.json)",
    )
    return parser


def build_merge_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``merge`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli merge",
        description=(
            "Merge shard JSON files written by --shard runs into the full "
            "scenario report (validates complete schedule coverage)."
        ),
    )
    parser.add_argument(
        "shards", nargs="+", help="shard JSON files (all shards of one scenario)"
    )
    return parser


def build_coordinate_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``coordinate`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli coordinate",
        description=(
            "Set up a coordinator work directory for one figure, serve it "
            "with local workers, wait for full coverage (local and/or "
            "remote 'work' processes), and print the scenario report."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(figures.FIGURE_SPECS),
        help="figure identifier (figure1..figure9, ablation_rmq, ablation_alpha, zoo)",
    )
    parser.add_argument("--dir", required=True, help="shared work directory")
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ScenarioScale],
        default=ScenarioScale.DEFAULT.value,
        help="experiment scale",
    )
    parser.add_argument(
        "--steps", action="store_true", help="run the step-driven figure variant"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario base seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "local worker threads to serve the directory (0 = none, wait "
            "for external 'work' processes only)"
        ),
    )
    parser.add_argument(
        "--granularity",
        choices=["cell", "case", "auto"],
        default=None,
        help="lease size: whole cells, single leaves, or 'auto' (default)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None, help="task-result cache directory"
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        help="size cap for --cache-dir in megabytes (LRU; default unbounded)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=300.0,
        help="seconds before an uncompleted lease is reassigned",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up after this many seconds without full coverage",
    )
    return parser


def build_work_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``work`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli work",
        description=(
            "Pull and execute leases — from a shared work directory "
            "(--dir, file transport) or a lease service (--attach "
            "host:port, TCP transport).  Runs on any machine that can "
            "reach the directory or the server."
        ),
    )
    parser.add_argument("--dir", default=None, help="shared work directory")
    parser.add_argument(
        "--attach",
        default=None,
        metavar="HOST:PORT",
        help="attach to a running lease service instead of a directory",
    )
    parser.add_argument(
        "--worker-id", type=str, default=None, help="worker identifier (default: auto)"
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.1,
        help="initial idle-poll interval (backs off exponentially with jitter)",
    )
    parser.add_argument(
        "--poll-cap",
        type=float,
        default=None,
        help="idle-poll backoff cap in seconds (default: 32x --poll)",
    )
    parser.add_argument(
        "--max-batches",
        type=int,
        default=None,
        help="stop after executing this many batches/leases (per worker)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker threads (TCP only; each holds its own connection)",
    )
    parser.add_argument(
        "--drain",
        action="store_true",
        help="exit when the server reports zero live jobs (TCP only; "
        "default: keep serving until killed)",
    )
    parser.add_argument(
        "--renew-interval",
        type=float,
        default=None,
        help="heartbeat the held lease every this many seconds",
    )
    return parser


def build_regress_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``regress`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli regress",
        description=(
            "Frontier-fingerprint regression archive: re-run the workload "
            "zoo and compare against (or update) the pinned archive."
        ),
    )
    parser.add_argument(
        "action",
        choices=["check", "record", "diff", "lint"],
        help=(
            "check: fail on any drift from the pinned archive; "
            "record: re-pin the archive from a fresh zoo run; "
            "diff: print the comparison without failing; "
            "lint: validate the pinned archive file and its zoo coverage"
        ),
    )
    parser.add_argument(
        "--archive",
        type=str,
        default="tests/regression/archive.json",
        help="pinned archive path (default: tests/regression/archive.json)",
    )
    parser.add_argument(
        "--report",
        type=str,
        default=None,
        help="also write the diff report to this file (check/diff)",
    )
    return parser


def _run_regress(argv: Sequence[str]) -> str:
    from repro.regress import diff_archives, load_archive, run_zoo, save_archive
    from repro.regress.zoo import coverage_summary, zoo_coordinates

    args = build_regress_parser().parse_args(argv)

    if args.action == "lint":
        archive = load_archive(args.archive)  # raises on any corruption
        coverage = coverage_summary(archive)
        pinned = {entry.coordinate for entry in archive.entries()}
        missing = [c for c in zoo_coordinates() if c not in pinned]
        lines = [
            f"[archive ok: {coverage['entries']} entries — "
            f"{coverage['shapes']} shapes x {coverage['stat_models']} stat "
            f"models x {coverage['algorithms']} algorithms x "
            f"{coverage['engines']} engines]"
        ]
        if missing:
            lines.append(f"{len(missing)} zoo coordinate(s) not pinned:")
            lines.extend(f"  {coordinate.label}" for coordinate in missing[:20])
            raise SystemExit("\n".join(lines))
        return "\n".join(lines)

    if args.action == "record":
        archive = run_zoo()
        save_archive(archive, args.archive)
        return f"[recorded {len(archive)} fingerprints to {args.archive}]"

    pinned = load_archive(args.archive)
    fresh = run_zoo()
    diff = diff_archives(pinned, fresh)
    report = diff.render()
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    if args.action == "check" and not diff.ok:
        raise SystemExit(report)
    return report


def build_trace_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``trace`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli trace",
        description=(
            "Run one figure with tracing enabled and export a Chrome "
            "trace_event JSON file (chrome://tracing, Perfetto) plus a "
            "plain-text metrics report."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(figures.FIGURE_SPECS),
        help="figure identifier (figure1..figure9, ablation_rmq, ablation_alpha, zoo)",
    )
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ScenarioScale],
        default=ScenarioScale.SMOKE.value,
        help="experiment scale (default: smoke — traces grow with work done)",
    )
    parser.add_argument(
        "--steps", action="store_true", help="run the step-driven figure variant"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario base seed"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker count override"
    )
    parser.add_argument(
        "--granularity",
        choices=["cell", "case", "auto"],
        default=None,
        help="dispatch granularity override",
    )
    parser.add_argument(
        "--backend",
        choices=["local", "coordinator"],
        default=None,
        help="execution backend override",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None, help="task-result cache directory"
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        help="Chrome trace JSON output path (default: <figure>_trace.json)",
    )
    parser.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="also write the final metrics snapshot (JSON) to this path",
    )
    return parser


def _run_trace(argv: Sequence[str]) -> str:
    from repro.obs import (
        disable_tracing,
        enable_tracing,
        global_metrics,
        render_metrics_report,
        reset_global_metrics,
        write_chrome_trace,
        write_metrics_snapshot,
    )

    args = build_trace_parser().parse_args(argv)
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    spec = _resolve_figure_spec(args)
    if args.workers is not None:
        spec = dataclasses.replace(spec, workers=args.workers)
    if args.granularity is not None:
        spec = dataclasses.replace(spec, granularity=args.granularity)
    if args.backend is not None:
        spec = dataclasses.replace(spec, backend=args.backend)
    cache = None
    if args.cache_dir is not None:
        from repro.dist.cache import TaskCache

        cache = TaskCache(args.cache_dir)

    reset_global_metrics()
    tracer = enable_tracing()
    try:
        result = run_scenario(spec, cache=cache)
    finally:
        disable_tracing()
    trace_path = args.trace_out or f"{spec.name}_trace.json"
    events = write_chrome_trace(tracer, trace_path)
    snapshot = global_metrics().snapshot()
    lines = [
        format_scenario_report(result) + "\n" + summarize_winners(result),
        f"[trace: {events} event(s) written to {trace_path}]",
    ]
    if args.metrics_out is not None:
        write_metrics_snapshot(args.metrics_out, snapshot)
        lines.append(f"[metrics snapshot written to {args.metrics_out}]")
    lines.append(render_metrics_report(snapshot))
    return "\n".join(lines)


def build_top_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``top`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli top",
        description=(
            "Live text dashboard over coordinator metrics: tails a snapshot "
            "file published by a run with REPRO_METRICS_OUT set (or any "
            "metrics snapshot JSON) and redraws a compact summary."
        ),
    )
    parser.add_argument(
        "--file",
        type=str,
        default=None,
        help="metrics snapshot file to tail (default: $REPRO_METRICS_OUT)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, help="seconds between redraws"
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after this many redraws (default: run until interrupted)",
    )
    parser.add_argument(
        "--once", action="store_true", help="render the current snapshot and exit"
    )
    return parser


def _run_top(argv: Sequence[str]) -> str:
    import os

    from repro.obs import METRICS_OUT_ENV_VAR, tail_dashboard

    args = build_top_parser().parse_args(argv)
    path = args.file or os.environ.get(METRICS_OUT_ENV_VAR)
    if not path:
        raise SystemExit("top: pass --file or set REPRO_METRICS_OUT")
    if args.interval <= 0:
        raise SystemExit("--interval must be positive")
    iterations = 1 if args.once else args.iterations
    drawn = tail_dashboard(path, interval=args.interval, iterations=iterations)
    return f"[top: {drawn} snapshot(s) rendered from {path}]"


def _flush_env_outputs() -> None:
    """Honor ``REPRO_TRACE_OUT`` / ``REPRO_METRICS_OUT`` on CLI exit.

    With the ``REPRO_TRACE=1`` gate active, any figure subcommand writes
    its trace (and a final metrics snapshot) to the paths named by the
    environment — the flagless twin of ``repro trace``.
    """
    import os

    from repro.obs import (
        METRICS_OUT_ENV_VAR,
        TRACE_OUT_ENV_VAR,
        get_tracer,
        global_metrics,
        write_chrome_trace,
        write_metrics_snapshot,
    )

    trace_path = os.environ.get(TRACE_OUT_ENV_VAR)
    tracer = get_tracer()
    if trace_path and tracer.enabled:
        write_chrome_trace(tracer, trace_path)
    metrics_path = os.environ.get(METRICS_OUT_ENV_VAR)
    if metrics_path:
        write_metrics_snapshot(metrics_path, global_metrics().snapshot())


def _cache_cap_bytes(args: argparse.Namespace) -> int | None:
    """Translate ``--cache-max-mb`` into bytes (``None``: append-only)."""
    max_mb = getattr(args, "cache_max_mb", None)
    if max_mb is None:
        return None
    if getattr(args, "cache_dir", None) is None:
        raise SystemExit("--cache-max-mb requires --cache-dir")
    if max_mb <= 0:
        raise SystemExit("--cache-max-mb must be positive")
    return int(max_mb * 1024 * 1024)


def _resolve_figure_spec(args: argparse.Namespace) -> ScenarioSpec:
    """Build the scenario spec selected by figure/scale/steps/seed flags."""
    spec_map = figures.STEP_FIGURE_SPECS if args.steps else figures.FIGURE_SPECS
    spec = spec_map[args.figure](ScenarioScale(args.scale))
    if args.seed is not None:
        spec = dataclasses.replace(spec, seed=args.seed)
    return spec


def _run_coordinate(argv: Sequence[str]) -> str:
    from repro.dist.cache import TaskCache
    from repro.dist.protocol import collect_results, init_workdir, run_worker

    args = build_coordinate_parser().parse_args(argv)
    if args.workers < 0:
        raise SystemExit("--workers must be at least 0")
    spec = _resolve_figure_spec(args)
    cache_cap = _cache_cap_bytes(args)  # validates --cache-max-mb usage
    cache = (
        TaskCache(args.cache_dir, max_bytes=cache_cap) if args.cache_dir else None
    )
    meta = init_workdir(
        args.dir,
        spec,
        workers_hint=max(1, args.workers),
        granularity=args.granularity,
        lease_timeout=args.lease_timeout,
        cache=cache,
    )
    # Local workers are lease-pulling threads executing on a shared process
    # pool (threads alone would serialize the pure-Python leaves on the
    # GIL).  The stop event ends them at the next batch boundary when the
    # collector gives up, so a timeout reaches the user promptly.
    stop = threading.Event()
    pool = (
        ProcessPoolExecutor(max_workers=args.workers) if args.workers > 1 else None
    )
    worker_errors: list = []

    def worker_main(index: int) -> None:
        try:
            run_worker(
                args.dir, worker_id=f"local-{index}", stop=stop, executor=pool
            )
        except BaseException as exc:  # surfaced by the collection loop below
            worker_errors.append(exc)

    threads = [
        threading.Thread(target=worker_main, args=(index,), daemon=True)
        for index in range(args.workers)
    ]
    for thread in threads:
        thread.start()
    # Collect in short slices so dead local workers are noticed instead of
    # polling an unservable directory forever (--timeout defaults to None).
    deadline = None if args.timeout is None else time.monotonic() + args.timeout
    try:
        while True:
            slice_timeout = 5.0
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"{args.dir}: timed out waiting for full coverage"
                    )
                slice_timeout = min(slice_timeout, remaining)
            try:
                _, results = collect_results(
                    args.dir, timeout=slice_timeout, cache=cache
                )
                break
            except TimeoutError:
                if threads and worker_errors and not any(
                    thread.is_alive() for thread in threads
                ):
                    raise worker_errors[0]
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        if pool is not None:
            pool.shutdown()
    result = ScenarioResult(spec=spec, cells=reduce_task_results(spec, results))
    header = (
        f"[coordinator: {meta['batches']} batch(es) at {meta['granularity']} "
        f"granularity, {meta['cached_tasks']} task(s) served from cache]\n"
    )
    return header + format_scenario_report(result) + "\n" + summarize_winners(result)


def _run_work(argv: Sequence[str]) -> str:
    args = build_work_parser().parse_args(argv)
    if (args.dir is None) == (args.attach is None):
        raise SystemExit("work needs exactly one of --dir or --attach")
    if args.attach is not None:
        from repro.dist.service import run_service_worker

        counters = run_service_worker(
            _parse_address(args.attach),
            workers=max(1, args.workers),
            max_leases=args.max_batches,
            poll=args.poll,
            poll_cap=args.poll_cap,
            drain=args.drain,
            use_processes=args.workers > 1,
            renew_interval=args.renew_interval,
            worker_id=args.worker_id,
        )
        return (
            f"[worker done: executed {counters['leases']} lease(s) from "
            f"{args.attach}, {counters['reconnects']} reconnect(s), "
            f"{counters['renewals']} renewal(s)]"
        )
    from repro.dist.protocol import run_worker

    executed = run_worker(
        args.dir,
        worker_id=args.worker_id,
        poll=args.poll,
        poll_cap=args.poll_cap,
        max_batches=args.max_batches,
        renew_interval=args.renew_interval,
    )
    return f"[worker done: executed {executed} batch(es) from {args.dir}]"


def build_serve_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``serve`` subcommand."""
    from repro.dist.service import DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="repro.bench.cli serve",
        description=(
            "Run the optimization service: a long-lived TCP lease server "
            "multiplexing many clients' scenario jobs over attached worker "
            "pools, with a shared task-result cache."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"bind port (0 = ephemeral; default {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write 'host:port' here once listening (for scripts/CI)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None, help="task-result cache directory"
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        help="size cap for --cache-dir in megabytes (LRU; default unbounded)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=64, help="admission cap on live jobs"
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=300.0,
        help="seconds before an uncompleted lease is reassigned",
    )
    parser.add_argument(
        "--runtime",
        type=float,
        default=None,
        help="stop after this many seconds (default: run until interrupted)",
    )
    return parser


def _run_serve(argv: Sequence[str]) -> str:
    import os

    from repro.dist.cache import TaskCache
    from repro.dist.service import start_service
    from repro.obs import METRICS_OUT_ENV_VAR, global_metrics
    from repro.obs.dashboard import MetricsPublisher

    args = build_serve_parser().parse_args(argv)
    cache_cap = _cache_cap_bytes(args)
    cache = (
        TaskCache(args.cache_dir, max_bytes=cache_cap) if args.cache_dir else None
    )
    handle = start_service(
        host=args.host,
        port=args.port,
        cache=cache,
        max_jobs=args.max_jobs,
        lease_timeout=args.lease_timeout,
        metrics=global_metrics(),
    )
    host, port = handle.address
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as fh:
            fh.write(f"{host}:{port}\n")
    print(f"[service listening on {host}:{port}]", flush=True)
    stop = threading.Event()
    try:
        # SIGTERM/SIGINT end the serve loop cleanly; signal handlers can
        # only be installed on the main thread (tests call run() directly
        # from worker threads, where KeyboardInterrupt still applies).
        import signal

        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        signal.signal(signal.SIGINT, lambda *_: stop.set())
    except ValueError:
        pass
    publisher = None
    metrics_path = os.environ.get(METRICS_OUT_ENV_VAR)
    if metrics_path:
        publisher = MetricsPublisher(global_metrics(), metrics_path).start()
    try:
        stop.wait(timeout=args.runtime)
    except KeyboardInterrupt:
        pass
    finally:
        if publisher is not None:
            publisher.stop()
        stats = handle.service.stats_snapshot()
        handle.stop()
    return (
        f"[service stopped: {stats['jobs_completed']} job(s) completed, "
        f"{stats['leases_granted']} lease(s) granted, "
        f"{stats['session_results']} memoized result(s)]"
    )


def build_submit_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``submit`` subcommand."""
    from repro.dist.service import DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="repro.bench.cli submit",
        description=(
            "Submit one figure's schedule to a running lease service, wait "
            "for the reduced result, and print the scenario report."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(figures.FIGURE_SPECS),
        help="figure identifier (figure1..figure9, ablation_rmq, ablation_alpha, zoo)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="service host")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="service port"
    )
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ScenarioScale],
        default=ScenarioScale.DEFAULT.value,
        help="experiment scale",
    )
    parser.add_argument(
        "--steps", action="store_true", help="run the step-driven figure variant"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario base seed"
    )
    parser.add_argument(
        "--granularity",
        choices=["cell", "case", "auto"],
        default=None,
        help="lease size: whole cells, single leaves, or 'auto' (default)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up after this many seconds without the full result",
    )
    return parser


def _run_submit(argv: Sequence[str]) -> str:
    from repro.dist.service import submit_scenario

    args = build_submit_parser().parse_args(argv)
    spec = _resolve_figure_spec(args)
    results, info = submit_scenario(
        (args.host, args.port),
        spec,
        granularity=args.granularity,
        timeout=args.timeout,
    )
    result = ScenarioResult(spec=spec, cells=reduce_task_results(spec, results))
    header = (
        f"[service {args.host}:{args.port}: job {info['job']}, "
        f"{info['scheduled']} scheduled, {info['cache_hits']} cache hit(s), "
        f"{info['deferred']} deferred, {info['injected']} injected]\n"
    )
    return header + format_scenario_report(result) + "\n" + summarize_winners(result)


def _parse_address(value: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` service address."""
    host, _, port_text = value.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or not 0 < port < 65536:
        raise SystemExit(f"expected HOST:PORT (e.g. 127.0.0.1:7963), got {value!r}")
    return host, port


def _parse_shard(value: str) -> Tuple[int, int]:
    """Parse a ``K/N`` shard designator."""
    try:
        index_text, count_text = value.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise SystemExit(f"--shard must look like K/N (e.g. 0/2), got {value!r}")
    if count < 1 or not 0 <= index < count:
        raise SystemExit(f"--shard needs 0 <= K < N, got {value!r}")
    return index, count


def run(argv: Sequence[str] | None = None) -> str:
    """Run the selected subcommand and return the text report.

    Honors the ``REPRO_TRACE=1`` environment gate on every subcommand (see
    :func:`repro.obs.configure_from_env`); traces and final metrics
    snapshots flush to ``REPRO_TRACE_OUT`` / ``REPRO_METRICS_OUT`` on exit.
    """
    from repro.obs import configure_from_env

    configure_from_env()
    try:
        return _run_dispatch(list(sys.argv[1:] if argv is None else argv))
    finally:
        _flush_env_outputs()


def _run_dispatch(argv: list) -> str:
    """Run the selected figure (or subcommand) and return the text report."""
    if argv and argv[0] == "merge":
        merge_args = build_merge_parser().parse_args(argv[1:])
        result = merge_shards(merge_args.shards)
        return format_scenario_report(result) + "\n" + summarize_winners(result)
    if argv and argv[0] == "coordinate":
        return _run_coordinate(argv[1:])
    if argv and argv[0] == "work":
        return _run_work(argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:])
    if argv and argv[0] == "submit":
        return _run_submit(argv[1:])
    if argv and argv[0] == "regress":
        return _run_regress(argv[1:])
    if argv and argv[0] == "trace":
        return _run_trace(argv[1:])
    if argv and argv[0] == "top":
        return _run_top(argv[1:])

    args = build_parser().parse_args(argv)
    scale = ScenarioScale(args.scale)
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be at least 1")

    if args.figure == "figure3":
        if args.shard is not None or args.steps:
            raise SystemExit("figure3 is a single statistics run; no --shard/--steps")
        if scale is ScenarioScale.PAPER:
            table_counts, cases, iterations = (10, 25, 50, 75, 100), 20, 20
        elif scale is ScenarioScale.DEFAULT:
            table_counts, cases, iterations = (10, 25, 50), 3, 8
        else:
            table_counts, cases, iterations = (6, 10, 15), 2, 4
        kwargs = dict(
            table_counts=table_counts,
            num_test_cases=cases,
            iterations_per_case=iterations,
        )
        if args.seed is not None:
            kwargs["seed"] = args.seed
        return run_figure3_statistics(**kwargs).format_report()

    spec = _resolve_figure_spec(args)
    if args.workers is not None:
        spec = dataclasses.replace(spec, workers=args.workers)
    if args.granularity is not None:
        spec = dataclasses.replace(spec, granularity=args.granularity)
    if args.backend is not None:
        spec = dataclasses.replace(spec, backend=args.backend)
    cache = None
    cache_cap = _cache_cap_bytes(args)  # validates --cache-max-mb usage
    if args.cache_dir is not None:
        from repro.dist.cache import TaskCache

        cache = TaskCache(args.cache_dir, max_bytes=cache_cap)

    if args.shard is not None:
        # Shard runs execute a static subset on the local path; the dynamic
        # backend and the task cache are not wired through them, so refuse
        # the combinations instead of silently ignoring the flags.
        if args.backend == "coordinator":
            raise SystemExit(
                "--shard executes statically; use 'coordinate' for dynamic "
                "scheduling instead of --backend coordinator"
            )
        if args.cache_dir is not None:
            raise SystemExit("--cache-dir is not supported with --shard")
        index, count = _parse_shard(args.shard)
        results = run_shard(
            spec, index, count, workers=spec.workers, granularity=spec.granularity
        )
        out_path = args.out or f"{spec.name}_shard_{index}_of_{count}.json"
        write_shard(out_path, spec, index, count, results)
        return (
            format_task_provenance(results)
            + f"\n[shard {index}/{count}: {len(results)} task results "
            + f"written to {out_path}]"
        )

    result = run_scenario(spec, cache=cache)
    return format_scenario_report(result) + "\n" + summarize_winners(result)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    print(run(argv))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
