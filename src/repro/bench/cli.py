"""Command-line entry point for running benchmark scenarios.

Usage::

    python -m repro.bench.cli figure1 --scale smoke
    python -m repro.bench.cli figure3 --scale default
    python -m repro.bench.cli ablation_rmq --scale smoke --seed 7

    # Wall-clock-free (step-driven) variant, parallel within cells:
    python -m repro.bench.cli figure1 --scale smoke --steps \\
        --workers 4 --granularity case

    # Shard a grid across machines, then merge the serialized results:
    python -m repro.bench.cli figure1 --scale smoke --steps --shard 0/2 --out s0.json
    python -m repro.bench.cli figure1 --scale smoke --steps --shard 1/2 --out s1.json
    python -m repro.bench.cli merge s0.json s1.json

Prints the same text report as the pytest benchmark targets; useful when
iterating on one figure without the pytest-benchmark machinery.  With
``--steps``, a two-shard ``merge`` is bit-identical to the sequential run.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Sequence, Tuple

from repro.bench import figures
from repro.bench.reporting import (
    format_scenario_report,
    format_task_provenance,
    summarize_winners,
)
from repro.bench.runner import merge_shards, run_scenario
from repro.bench.scenario import ScenarioScale
from repro.bench.statistics import run_figure3_statistics
from repro.bench.tasks import run_shard, write_shard


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the benchmark CLI (figure runs)."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli",
        description=(
            "Regenerate one figure of the paper's evaluation, or merge shard "
            "files with 'merge <shard.json>...'."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(figures.FIGURE_SPECS) + ["figure3"],
        help="figure identifier (figure1..figure9, ablation_rmq, ablation_alpha)",
    )
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ScenarioScale],
        default=ScenarioScale.DEFAULT.value,
        help="experiment scale (smoke = seconds, default = minutes, paper = hours)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario base seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "run the benchmark tasks on N worker processes (default: sequential; "
            "ignored by figure3, which is a single statistics run). "
            "Note: with wall-clock budgets, concurrent tasks share CPU, so "
            "medians can shift versus a sequential run; use --steps for "
            "fully deterministic parallel runs"
        ),
    )
    parser.add_argument(
        "--granularity",
        choices=["cell", "case"],
        default=None,
        help=(
            "unit of work dispatched to workers: whole grid cells (default) "
            "or individual (cell, case, algorithm) leaf tasks"
        ),
    )
    parser.add_argument(
        "--steps",
        action="store_true",
        help=(
            "run the wall-clock-free variant of the figure (iteration-count "
            "checkpoints; deterministic for any worker count or sharding)"
        ),
    )
    parser.add_argument(
        "--shard",
        type=str,
        default=None,
        metavar="K/N",
        help=(
            "execute only shard K of N of the task schedule and serialize the "
            "task results to --out as JSON for a later 'merge' invocation"
        ),
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="output path of the shard JSON (default: <figure>_shard_K_of_N.json)",
    )
    return parser


def build_merge_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``merge`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli merge",
        description=(
            "Merge shard JSON files written by --shard runs into the full "
            "scenario report (validates complete schedule coverage)."
        ),
    )
    parser.add_argument(
        "shards", nargs="+", help="shard JSON files (all shards of one scenario)"
    )
    return parser


def _parse_shard(value: str) -> Tuple[int, int]:
    """Parse a ``K/N`` shard designator."""
    try:
        index_text, count_text = value.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise SystemExit(f"--shard must look like K/N (e.g. 0/2), got {value!r}")
    if count < 1 or not 0 <= index < count:
        raise SystemExit(f"--shard needs 0 <= K < N, got {value!r}")
    return index, count


def run(argv: Sequence[str] | None = None) -> str:
    """Run the selected figure (or merge shards) and return the text report."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "merge":
        merge_args = build_merge_parser().parse_args(argv[1:])
        result = merge_shards(merge_args.shards)
        return format_scenario_report(result) + "\n" + summarize_winners(result)

    args = build_parser().parse_args(argv)
    scale = ScenarioScale(args.scale)
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be at least 1")

    if args.figure == "figure3":
        if args.shard is not None or args.steps:
            raise SystemExit("figure3 is a single statistics run; no --shard/--steps")
        if scale is ScenarioScale.PAPER:
            table_counts, cases, iterations = (10, 25, 50, 75, 100), 20, 20
        elif scale is ScenarioScale.DEFAULT:
            table_counts, cases, iterations = (10, 25, 50), 3, 8
        else:
            table_counts, cases, iterations = (6, 10, 15), 2, 4
        kwargs = dict(
            table_counts=table_counts,
            num_test_cases=cases,
            iterations_per_case=iterations,
        )
        if args.seed is not None:
            kwargs["seed"] = args.seed
        return run_figure3_statistics(**kwargs).format_report()

    spec_map = figures.STEP_FIGURE_SPECS if args.steps else figures.FIGURE_SPECS
    spec = spec_map[args.figure](scale)
    if args.seed is not None:
        spec = dataclasses.replace(spec, seed=args.seed)
    if args.workers is not None:
        spec = dataclasses.replace(spec, workers=args.workers)
    if args.granularity is not None:
        spec = dataclasses.replace(spec, granularity=args.granularity)

    if args.shard is not None:
        index, count = _parse_shard(args.shard)
        results = run_shard(
            spec, index, count, workers=spec.workers, granularity=spec.granularity
        )
        out_path = args.out or f"{spec.name}_shard_{index}_of_{count}.json"
        write_shard(out_path, spec, index, count, results)
        return (
            format_task_provenance(results)
            + f"\n[shard {index}/{count}: {len(results)} task results "
            + f"written to {out_path}]"
        )

    result = run_scenario(spec)
    return format_scenario_report(result) + "\n" + summarize_winners(result)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    print(run(argv))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
