"""Command-line entry point for running benchmark scenarios.

Usage::

    python -m repro.bench.cli figure1 --scale smoke
    python -m repro.bench.cli figure3 --scale default
    python -m repro.bench.cli ablation_rmq --scale smoke --seed 7

Prints the same text report as the pytest benchmark targets; useful when
iterating on one figure without the pytest-benchmark machinery.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Sequence

from repro.bench import figures
from repro.bench.reporting import format_scenario_report, summarize_winners
from repro.bench.runner import run_scenario
from repro.bench.scenario import ScenarioScale
from repro.bench.statistics import run_figure3_statistics


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the benchmark CLI."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli",
        description="Regenerate one figure of the paper's evaluation.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(figures.FIGURE_SPECS) + ["figure3"],
        help="figure identifier (figure1..figure9, ablation_rmq, ablation_alpha)",
    )
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ScenarioScale],
        default=ScenarioScale.DEFAULT.value,
        help="experiment scale (smoke = seconds, default = minutes, paper = hours)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario base seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "run the grid cells on N worker processes (default: sequential; "
            "ignored by figure3, which is a single statistics run). "
            "Note: with wall-clock budgets, concurrent cells share CPU, so "
            "medians can shift versus a sequential run"
        ),
    )
    return parser


def run(argv: Sequence[str] | None = None) -> str:
    """Run the selected figure and return its text report."""
    args = build_parser().parse_args(argv)
    scale = ScenarioScale(args.scale)
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be at least 1")

    if args.figure == "figure3":
        if scale is ScenarioScale.PAPER:
            table_counts, cases, iterations = (10, 25, 50, 75, 100), 20, 20
        elif scale is ScenarioScale.DEFAULT:
            table_counts, cases, iterations = (10, 25, 50), 3, 8
        else:
            table_counts, cases, iterations = (6, 10, 15), 2, 4
        kwargs = dict(
            table_counts=table_counts,
            num_test_cases=cases,
            iterations_per_case=iterations,
        )
        if args.seed is not None:
            kwargs["seed"] = args.seed
        return run_figure3_statistics(**kwargs).format_report()

    spec = figures.FIGURE_SPECS[args.figure](scale)
    if args.seed is not None:
        spec = dataclasses.replace(spec, seed=args.seed)
    if args.workers is not None:
        spec = dataclasses.replace(spec, workers=args.workers)
    result = run_scenario(spec)
    return format_scenario_report(result) + "\n" + summarize_winners(result)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    print(run(argv))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
