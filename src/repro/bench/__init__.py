"""Benchmark harness reproducing the paper's evaluation (Section 6).

The harness is organised as follows:

``scenario``
    :class:`ScenarioSpec` describes one experiment grid (join-graph shapes ×
    query sizes × algorithms, selectivity model, number of metrics, budgets).
``anytime``
    Drives one optimizer on one test case and snapshots its frontier at
    checkpoints, producing the error-versus-time series of the figures.
``reference``
    Builds the reference Pareto frontier each algorithm is judged against
    (union of all algorithms' results, or a DP(1.01) frontier for the precise
    small-query experiments).
``tasks``
    The task graph: serializable ``(cell, case, algorithm)`` leaf tasks
    (``TaskSpec``/``TaskResult``), schedule/execute helpers, and shard
    serialization for multi-machine runs.
``runner``
    Runs a full scenario (schedule → execute → reduce) and aggregates
    per-cell medians; ``merge_shards`` reduces shard files the same way.
``reporting``
    Formats scenario results as text tables mirroring the paper's figures,
    plus per-task provenance traces.
``figures``
    One spec constructor per paper figure plus the ablation experiments
    listed in DESIGN.md; every figure also has a wall-clock-free
    step-driven variant (``STEP_FIGURE_SPECS``).
``statistics``
    Climb-path-length and Pareto-set-size statistics (Figure 3).
"""

from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.bench.anytime import CheckpointRecord, evaluate_anytime, evaluate_steps
from repro.bench.reference import (
    dp_reference_frontier,
    union_reference_frontier,
)
from repro.bench.tasks import (
    TaskResult,
    TaskSpec,
    execute_task,
    execute_tasks,
    load_shards,
    run_shard,
    schedule_tasks,
    shard_tasks,
    write_shard,
)
from repro.bench.runner import (
    CellResult,
    ScenarioResult,
    merge_shards,
    reduce_task_results,
    run_scenario,
)
from repro.bench.reporting import (
    format_scenario_report,
    format_task_provenance,
    summarize_winners,
)
from repro.bench.statistics import Figure3Result, run_figure3_statistics
from repro.bench import figures

__all__ = [
    "ScenarioSpec",
    "ScenarioScale",
    "CheckpointRecord",
    "evaluate_anytime",
    "evaluate_steps",
    "union_reference_frontier",
    "dp_reference_frontier",
    "TaskSpec",
    "TaskResult",
    "schedule_tasks",
    "shard_tasks",
    "execute_task",
    "execute_tasks",
    "run_shard",
    "write_shard",
    "load_shards",
    "CellResult",
    "ScenarioResult",
    "run_scenario",
    "reduce_task_results",
    "merge_shards",
    "format_scenario_report",
    "format_task_provenance",
    "summarize_winners",
    "Figure3Result",
    "run_figure3_statistics",
    "figures",
]
