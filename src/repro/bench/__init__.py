"""Benchmark harness reproducing the paper's evaluation (Section 6).

The harness is organised as follows:

``scenario``
    :class:`ScenarioSpec` describes one experiment grid (join-graph shapes ×
    query sizes × algorithms, selectivity model, number of metrics, budgets).
``anytime``
    Drives one optimizer on one test case and snapshots its frontier at
    checkpoints, producing the error-versus-time series of the figures.
``reference``
    Builds the reference Pareto frontier each algorithm is judged against
    (union of all algorithms' results, or a DP(1.01) frontier for the precise
    small-query experiments).
``runner``
    Runs a full scenario and aggregates per-cell medians.
``reporting``
    Formats scenario results as text tables mirroring the paper's figures.
``figures``
    One spec constructor per paper figure plus the ablation experiments
    listed in DESIGN.md.
``statistics``
    Climb-path-length and Pareto-set-size statistics (Figure 3).
"""

from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.bench.anytime import CheckpointRecord, evaluate_anytime, evaluate_steps
from repro.bench.reference import (
    dp_reference_frontier,
    union_reference_frontier,
)
from repro.bench.runner import CellResult, ScenarioResult, run_scenario
from repro.bench.reporting import format_scenario_report, summarize_winners
from repro.bench.statistics import Figure3Result, run_figure3_statistics
from repro.bench import figures

__all__ = [
    "ScenarioSpec",
    "ScenarioScale",
    "CheckpointRecord",
    "evaluate_anytime",
    "evaluate_steps",
    "union_reference_frontier",
    "dp_reference_frontier",
    "CellResult",
    "ScenarioResult",
    "run_scenario",
    "format_scenario_report",
    "summarize_winners",
    "Figure3Result",
    "run_figure3_statistics",
    "figures",
]
