"""Anytime evaluation of a single optimizer on a single test case.

The paper "measures the approximation quality in regular intervals during
optimization to compare algorithms in different time intervals"
(Section 6.1).  :func:`evaluate_anytime` drives an optimizer's ``step()``
loop under a wall-clock budget and records the frontier (as cost vectors) at
each checkpoint time; :func:`evaluate_steps` is the deterministic,
step-count-based variant used in tests and in iteration-budget experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.interface import AnytimeOptimizer
from repro.utils.timer import Stopwatch


@dataclass(frozen=True)
class CheckpointRecord:
    """Frontier snapshot taken at one checkpoint.

    Attributes
    ----------
    checkpoint:
        The nominal checkpoint (seconds for time-based runs, step count for
        step-based runs).
    elapsed:
        Wall-clock seconds actually elapsed when the snapshot was taken.
    steps:
        Number of optimizer steps completed at snapshot time.
    frontier_costs:
        Cost vectors of the optimizer's frontier at snapshot time.
    """

    checkpoint: float
    elapsed: float
    steps: int
    frontier_costs: Tuple[Tuple[float, ...], ...]

    @property
    def frontier_size(self) -> int:
        """Number of plans in the snapshot."""
        return len(self.frontier_costs)


def _snapshot(
    optimizer: AnytimeOptimizer, checkpoint: float, elapsed: float
) -> CheckpointRecord:
    costs = tuple(tuple(plan.cost) for plan in optimizer.frontier())
    return CheckpointRecord(
        checkpoint=checkpoint,
        elapsed=elapsed,
        steps=optimizer.statistics.steps,
        frontier_costs=costs,
    )


def evaluate_anytime(
    optimizer: AnytimeOptimizer,
    checkpoints: Sequence[float],
    time_budget: float | None = None,
) -> List[CheckpointRecord]:
    """Run an optimizer under a wall-clock budget, snapshotting at checkpoints.

    Parameters
    ----------
    optimizer:
        The optimizer to drive; it is stepped in place.
    checkpoints:
        Sorted checkpoint times in seconds.  A snapshot is taken as soon as a
        step finishes past each checkpoint (or when the run ends, whichever
        comes first).
    time_budget:
        Total budget in seconds; defaults to the last checkpoint.

    Returns
    -------
    list of CheckpointRecord
        One record per checkpoint, in order.
    """
    ordered = list(checkpoints)
    if not ordered:
        raise ValueError("need at least one checkpoint")
    if sorted(ordered) != ordered:
        raise ValueError("checkpoints must be sorted ascending")
    budget = time_budget if time_budget is not None else ordered[-1]
    watch = Stopwatch()
    records: List[CheckpointRecord] = []
    next_index = 0
    while True:
        elapsed = watch.elapsed
        while next_index < len(ordered) and elapsed >= ordered[next_index]:
            records.append(_snapshot(optimizer, ordered[next_index], elapsed))
            next_index += 1
        if elapsed >= budget or optimizer.finished or next_index >= len(ordered):
            break
        optimizer.step()
    final_elapsed = watch.elapsed
    while next_index < len(ordered):
        records.append(_snapshot(optimizer, ordered[next_index], final_elapsed))
        next_index += 1
    return records


def evaluate_steps(
    optimizer: AnytimeOptimizer,
    step_checkpoints: Sequence[int],
) -> List[CheckpointRecord]:
    """Deterministic variant of :func:`evaluate_anytime` with step-count budgets.

    Parameters
    ----------
    optimizer:
        The optimizer to drive.
    step_checkpoints:
        Sorted step counts at which the frontier is snapshotted; the run ends
        after the last checkpoint (or earlier if the optimizer finishes).
    """
    ordered = list(step_checkpoints)
    if not ordered:
        raise ValueError("need at least one checkpoint")
    if sorted(ordered) != ordered or any(c < 0 for c in ordered):
        raise ValueError("step checkpoints must be non-negative and sorted ascending")
    watch = Stopwatch()
    records: List[CheckpointRecord] = []
    steps_done = 0
    for checkpoint in ordered:
        while steps_done < checkpoint and not optimizer.finished:
            optimizer.step()
            steps_done += 1
        records.append(_snapshot(optimizer, float(checkpoint), watch.elapsed))
    return records
