"""Anytime evaluation of a single optimizer on a single test case.

The paper "measures the approximation quality in regular intervals during
optimization to compare algorithms in different time intervals"
(Section 6.1).  :func:`evaluate_anytime` drives an optimizer's ``step()``
loop under a wall-clock budget and records the frontier (as cost vectors) at
each checkpoint time; :func:`evaluate_steps` is the deterministic,
step-count-based variant used in tests, in iteration-budget experiments, and
by the benchmark task executor (:mod:`repro.bench.tasks`).

Both evaluators drive the optimizer through the shared
:func:`repro.core.interface.run_steps` loop rather than hand-rolled
``while`` loops, so budget semantics match ``AnytimeOptimizer.run`` exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.core.interface import AnytimeOptimizer, run_steps
from repro.utils.timer import Stopwatch


@dataclass(frozen=True)
class CheckpointRecord:
    """Frontier snapshot taken at one checkpoint.

    Attributes
    ----------
    checkpoint:
        The nominal checkpoint (seconds for time-based runs, step count for
        step-based runs).
    elapsed:
        Wall-clock seconds actually elapsed when the snapshot was taken.
    steps:
        Number of optimizer steps completed at snapshot time.
    frontier_costs:
        Cost vectors of the optimizer's frontier at snapshot time.
    """

    checkpoint: float
    elapsed: float
    steps: int
    frontier_costs: Tuple[Tuple[float, ...], ...]

    @property
    def frontier_size(self) -> int:
        """Number of plans in the snapshot."""
        return len(self.frontier_costs)


def _snapshot(
    optimizer: AnytimeOptimizer, checkpoint: float, elapsed: float
) -> CheckpointRecord:
    costs = tuple(tuple(plan.cost) for plan in optimizer.frontier())
    return CheckpointRecord(
        checkpoint=checkpoint,
        elapsed=elapsed,
        steps=optimizer.statistics.steps,
        frontier_costs=costs,
    )


def evaluate_anytime(
    optimizer: AnytimeOptimizer,
    checkpoints: Sequence[float],
    time_budget: float | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> List[CheckpointRecord]:
    """Run an optimizer under a wall-clock budget, snapshotting at checkpoints.

    Parameters
    ----------
    optimizer:
        The optimizer to drive; it is stepped in place.
    checkpoints:
        Sorted checkpoint times in seconds.  A snapshot is taken as soon as a
        step finishes past each checkpoint (or when the run ends, whichever
        comes first).
    time_budget:
        Total budget in seconds; defaults to the last checkpoint.
    clock:
        Monotonic time source; injectable so tests can pin boundary behavior.

    Returns
    -------
    list of CheckpointRecord
        Exactly one record per checkpoint, in order.  A checkpoint is
        snapshotted by at most one of the two paths — the in-loop scan or the
        end-of-run flush — even when it falls exactly on the budget boundary;
        the shared ``next_index`` cursor makes duplicates structurally
        impossible (regression-tested with a fake clock in
        ``tests/test_anytime.py``).
    """
    ordered = list(checkpoints)
    if not ordered:
        raise ValueError("need at least one checkpoint")
    if sorted(ordered) != ordered:
        raise ValueError("checkpoints must be sorted ascending")
    budget = time_budget if time_budget is not None else ordered[-1]
    records: List[CheckpointRecord] = []
    next_index = 0
    last_elapsed = 0.0

    def on_tick(_steps: int, elapsed: float) -> bool:
        nonlocal next_index, last_elapsed
        last_elapsed = elapsed
        while next_index < len(ordered) and elapsed >= ordered[next_index]:
            records.append(_snapshot(optimizer, ordered[next_index], elapsed))
            next_index += 1
        return next_index >= len(ordered)

    run_steps(optimizer, time_budget=budget, on_tick=on_tick, clock=clock)
    # Flush checkpoints the run never reached (budget exhausted or optimizer
    # finished early): each remaining index is snapshotted exactly once.
    while next_index < len(ordered):
        records.append(_snapshot(optimizer, ordered[next_index], last_elapsed))
        next_index += 1
    return records


def evaluate_steps(
    optimizer: AnytimeOptimizer,
    step_checkpoints: Sequence[int],
) -> List[CheckpointRecord]:
    """Deterministic variant of :func:`evaluate_anytime` with step-count budgets.

    Parameters
    ----------
    optimizer:
        The optimizer to drive.
    step_checkpoints:
        Sorted step counts at which the frontier is snapshotted; the run ends
        after the last checkpoint (or earlier if the optimizer finishes).
    """
    ordered = list(step_checkpoints)
    if not ordered:
        raise ValueError("need at least one checkpoint")
    if sorted(ordered) != ordered or any(c < 0 for c in ordered):
        raise ValueError("step checkpoints must be non-negative and sorted ascending")
    watch = Stopwatch()
    records: List[CheckpointRecord] = []
    steps_done = 0
    for checkpoint in ordered:
        steps_done += run_steps(optimizer, max_steps=checkpoint - steps_done)
        records.append(_snapshot(optimizer, float(checkpoint), watch.elapsed))
    return records
