"""Small helpers for cost vectors.

Cost vectors are plain tuples of non-negative floats; keeping them as tuples
(rather than a wrapper class) keeps dominance checks in the innermost search
loops cheap.  The helpers here centralize the few arithmetic operations the
rest of the library needs.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

#: Floor applied to cost values when computing ratios, to avoid division by
#: zero for metrics that can legitimately be zero (e.g. disk footprint of a
#: fully pipelined plan).
RATIO_FLOOR = 1e-9


def validate_cost_vector(cost: Sequence[float], num_metrics: int | None = None) -> None:
    """Raise ``ValueError`` if ``cost`` is not a valid cost vector."""
    if num_metrics is not None and len(cost) != num_metrics:
        raise ValueError(
            f"cost vector has {len(cost)} entries, expected {num_metrics}"
        )
    if len(cost) == 0:
        raise ValueError("cost vector must have at least one entry")
    for value in cost:
        if value < 0:
            raise ValueError(f"cost values must be non-negative, got {value}")
        if value != value:  # NaN check
            raise ValueError("cost values must not be NaN")


def add_vectors(*vectors: Sequence[float]) -> Tuple[float, ...]:
    """Component-wise sum of one or more cost vectors of equal length."""
    if not vectors:
        raise ValueError("need at least one vector")
    length = len(vectors[0])
    for vector in vectors:
        if len(vector) != length:
            raise ValueError("cannot add cost vectors of different lengths")
    return tuple(sum(values) for values in zip(*vectors))


def scale_vector(vector: Sequence[float], factor: float) -> Tuple[float, ...]:
    """Multiply every component of a cost vector by ``factor``."""
    return tuple(value * factor for value in vector)


def max_ratio(numerator: Sequence[float], denominator: Sequence[float]) -> float:
    """Maximum component-wise ratio ``numerator[i] / denominator[i]``.

    This is the multiplicative factor by which ``numerator`` is worse than
    ``denominator``; it is the building block of the approximation error
    metric (Section 6.1).  Values are floored at :data:`RATIO_FLOOR` to avoid
    division by zero.
    """
    if len(numerator) != len(denominator):
        raise ValueError("cost vectors must have the same length")
    worst = 0.0
    for num, den in zip(numerator, denominator):
        ratio = max(num, RATIO_FLOOR) / max(den, RATIO_FLOOR)
        if ratio > worst:
            worst = ratio
    return worst


def mean_relative_difference(
    first: Sequence[float], second: Sequence[float]
) -> float:
    """Average relative cost difference ``(first - second) / second`` over metrics.

    Positive values mean ``first`` is more expensive on average.  This is the
    aggregation the paper's SA generalization uses to decide acceptance of a
    neighbor plan (Section 6.1).
    """
    if len(first) != len(second):
        raise ValueError("cost vectors must have the same length")
    total = 0.0
    for first_value, second_value in zip(first, second):
        denominator = max(second_value, RATIO_FLOOR)
        total += (first_value - second_value) / denominator
    return total / len(first)


def component_means(vectors: Iterable[Sequence[float]]) -> Tuple[float, ...]:
    """Component-wise mean of a non-empty collection of cost vectors."""
    materialized = [tuple(vector) for vector in vectors]
    if not materialized:
        raise ValueError("need at least one vector")
    length = len(materialized[0])
    for vector in materialized:
        if len(vector) != length:
            raise ValueError("cost vectors must have the same length")
    count = len(materialized)
    return tuple(sum(vector[i] for vector in materialized) / count for i in range(length))
