"""Multi-metric cost models.

The paper assumes "cost models for all considered cost metrics are available"
(Section 3) and evaluates on three metrics from its predecessor paper:
execution time, buffer space consumption and disk space consumption
(Section 6.1).  This package provides those three metrics plus the extension
metrics motivated in the introduction (monetary cost for cloud execution,
energy consumption, precision loss for approximate query processing).

Every metric computes a *per-node contribution*; the total plan cost per
metric is the sum of node contributions, computed bottom-up when plans are
built by :class:`~repro.cost.model.PlanFactory`.  This guarantees the
multi-objective principle of optimality that Algorithm 2 exploits: improving
a sub-plan's cost vector can never worsen the cost vector of the full plan.
"""

from repro.cost.batch import BatchCostModel
from repro.cost.cardinality import CardinalityEstimator
from repro.cost.metrics import (
    BufferMetric,
    CostMetric,
    DiskMetric,
    EnergyMetric,
    MonetaryMetric,
    PrecisionLossMetric,
    TimeMetric,
    metric_by_name,
)
from repro.cost.model import CostModelConfig, MultiObjectiveCostModel, PlanFactory
from repro.cost.vector import (
    add_vectors,
    max_ratio,
    scale_vector,
    validate_cost_vector,
)

__all__ = [
    "BatchCostModel",
    "CardinalityEstimator",
    "CostMetric",
    "TimeMetric",
    "BufferMetric",
    "DiskMetric",
    "EnergyMetric",
    "MonetaryMetric",
    "PrecisionLossMetric",
    "metric_by_name",
    "CostModelConfig",
    "MultiObjectiveCostModel",
    "PlanFactory",
    "add_vectors",
    "scale_vector",
    "max_ratio",
    "validate_cost_vector",
]
