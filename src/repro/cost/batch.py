"""Batch plan construction and costing over a plan arena.

:class:`BatchCostModel` mirrors the plan-building surface of
:class:`~repro.cost.model.MultiObjectiveCostModel` — ``make_scan`` /
``make_join`` — but produces :class:`~repro.plans.arena.PlanArena` handles
instead of ``Plan`` objects, and adds the two batch entry points the search
algorithms' inner loops are built on:

* :meth:`join_candidates` costs the **cross product of two partial-plan
  frontiers × all applicable join operators** with single array expressions
  per operator — the combination step of ``ApproximateFrontiers``
  (Algorithm 3) that dominates RMQ's iteration time;
* :meth:`cost_specs` costs a list of :class:`JoinSpec` candidate descriptions
  (the hill-climbing neighborhoods) through a structure-keyed memo — climb
  neighborhoods repeat almost entirely between steps, so most candidates are
  dictionary hits rather than arithmetic.

Candidates are *described and costed before any node is created*; only the
candidates a frontier accepts (or a climb selects) are realized into arena
rows, so the arena grows with kept plans, not evaluated ones.

Every number produced here is bit-identical to the object path: the scalar
kernels are the same ``join_cost_cards`` functions the object model calls,
and the vectorized kernels perform the same IEEE-754 operations (pinned by
``tests/test_arena.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cost.model import MultiObjectiveCostModel
from repro.plans.arena import PlanArena
from repro.plans.operators import DataFormat, JoinOperator, ScanOperator

__all__ = ["BatchCostModel", "CandidateBatch", "JoinSpec"]

#: Below this many memo misses, spec costing stays on the scalar kernels
#: (NumPy dispatch overhead exceeds the arithmetic for tiny groups; the
#: results are bit-identical either way).
SMALL_SPEC_BATCH = 24


@dataclass
class JoinSpec:
    """A candidate join that has not been realized into the arena yet.

    ``outer`` / ``inner`` are either arena handles (``int``) or other
    :class:`JoinSpec` instances whose costs were resolved earlier — candidate
    neighborhoods need at most two levels (an associativity/exchange rebuild
    below the mutated root).  ``cardinality`` and ``cost`` are filled by
    :meth:`BatchCostModel.cost_specs`; ``handle`` by
    :meth:`BatchCostModel.realize`.
    """

    __slots__ = ("outer", "inner", "op_code", "cardinality", "cost", "handle")

    outer: Union[int, "JoinSpec"]
    inner: Union[int, "JoinSpec"]
    op_code: int
    cardinality: float
    cost: Tuple[float, ...] | None
    handle: int | None

    def __init__(
        self, outer: Union[int, "JoinSpec"], inner: Union[int, "JoinSpec"], op_code: int
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.op_code = op_code
        self.cardinality = 0.0
        self.cost = None
        self.handle = None


#: A candidate reference: an existing arena handle or a pending spec.
PlanRef = Union[int, JoinSpec]


@dataclass(frozen=True)
class CandidateBatch:
    """The costed cross product of two frontiers × applicable join operators.

    Rows are ordered exactly like the scalar triple loop
    ``for outer: for inner: for operator in applicable(inner)`` so that
    order-sensitive frontier insertion is reproduced verbatim.
    """

    #: Total cost rows, ``(size, num_metrics)``.
    costs: np.ndarray
    #: Output cardinalities, ``(size,)``.
    cardinalities: np.ndarray
    #: Arena operator codes, ``(size,)``.
    op_codes: np.ndarray
    #: Output-format codes (the frontier tags), ``(size,)``.
    tags: np.ndarray
    #: Index into the outer handle list, ``(size,)``.
    outer_pos: np.ndarray
    #: Index into the inner handle list, ``(size,)``.
    inner_pos: np.ndarray

    @property
    def size(self) -> int:
        """Number of candidates in the batch."""
        return self.costs.shape[0]


@dataclass(frozen=True)
class _CrossDescription:
    """One laid-out frontier cross product awaiting node costing.

    Everything :meth:`BatchCostModel.join_candidates` derives before the
    per-node cost kernels run; ``join_candidates_multi`` concatenates several
    of these so the kernels run once per operator over a whole level.
    """

    op_codes: np.ndarray
    outer_pos: np.ndarray
    inner_pos: np.ndarray
    cardinalities: np.ndarray
    #: Outer/inner input cardinalities gathered per candidate.
    outer_cards_pc: np.ndarray
    inner_cards_pc: np.ndarray
    #: ``outer_cost + inner_cost`` rows per candidate (node costs are added).
    base_costs: np.ndarray
    #: Per-operator candidate position arrays (derived from the tiling).
    groups: Dict[int, np.ndarray]


class BatchCostModel:
    """Arena-backed plan factory with batch costing kernels.

    Parameters
    ----------
    cost_model:
        The object cost model supplying query, metrics, operator library and
        configuration; scalar costing delegates to its metric instances, so
        both engines share one set of formulas.
    arena:
        Optional existing arena (defaults to a fresh one for the model's
        query/library/metrics).
    """

    def __init__(
        self, cost_model: MultiObjectiveCostModel, arena: PlanArena | None = None
    ) -> None:
        self._model = cost_model
        self._query = cost_model.query
        self._metrics = cost_model.metrics
        self._config = cost_model.config
        self._estimator = cost_model.estimator
        library = cost_model.library
        self._arena = arena if arena is not None else PlanArena(
            cost_model.query,
            library.scan_operators,
            library.join_operators,
            cost_model.num_metrics,
        )
        arena_obj = self._arena
        num_scans = arena_obj.num_scan_operators
        self._scan_codes: Tuple[int, ...] = tuple(range(num_scans))
        # Applicable join codes per output-format code of the *inner* input
        # (only the inner side restricts applicability), in library order —
        # the same filter as OperatorLibrary.applicable_join_operators.
        formats = tuple(DataFormat)
        self._applicable_by_format: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(
                num_scans + position
                for position, op in enumerate(library.join_operators)
                if not op.requires_materialized_inner
                or fmt is DataFormat.MATERIALIZED
            )
            for fmt in formats
        )
        self._applicable_arrays: Tuple[np.ndarray, ...] = tuple(
            np.asarray(codes, dtype=np.int64) for codes in self._applicable_by_format
        )
        self._applicable_counts = np.asarray(
            [len(codes) for codes in self._applicable_by_format], dtype=np.int64
        )
        # Memoized candidate costs: hill-climbing neighborhoods re-derive the
        # same candidate joins on every climb step (a sub-tree that has
        # stopped improving re-describes an identical neighborhood), so the
        # (cardinality, cost) of a candidate keyed by its structure is
        # looked up far more often than computed.  Costing is deterministic,
        # so serving memo hits is exact.
        self._spec_memo: Dict[object, Tuple[float, Tuple[float, ...]]] = {}
        self._selectivity_memo: Dict[Tuple[frozenset, frozenset], float] = {}
        # Candidate-pattern memo of the trusted level path: frontiers with
        # the same inner-format sequence (ubiquitous across the splits of a
        # DP level) share one (pattern_ops, pattern_inner, per_outer) layout.
        self._pattern_memo: Dict[bytes, Tuple[np.ndarray, np.ndarray, int]] = {}
        self._operator_codes: Dict[object, int] = {
            op: code for code, op in enumerate(arena_obj.operators)
        }

    # ------------------------------------------------------------ accessors
    @property
    def arena(self) -> PlanArena:
        """The plan arena this model builds into."""
        return self._arena

    @property
    def cost_model(self) -> MultiObjectiveCostModel:
        """The underlying object cost model."""
        return self._model

    @property
    def query(self):
        """The query being optimized."""
        return self._query

    @property
    def num_metrics(self) -> int:
        """Number of cost metrics."""
        return self._model.num_metrics

    def scan_codes(self, table_index: int) -> Tuple[int, ...]:
        """Scan operator codes applicable to the given table."""
        del table_index  # all scans apply to all tables, like the library
        return self._scan_codes

    def join_codes_for(self, inner: PlanRef) -> Tuple[int, ...]:
        """Join operator codes applicable on the given inner input."""
        return self._applicable_by_format[self._format_code(inner)]

    def output_format_of(self, ref: PlanRef) -> DataFormat:
        """Output data representation of a handle or pending spec."""
        return self._arena.operator(self._op_code(ref)).output_format

    def format_code_of(self, ref: PlanRef) -> int:
        """Small-integer output-format code of a handle or pending spec."""
        return self._format_code(ref)

    # ------------------------------------------------------------- internals
    def _op_code(self, ref: PlanRef) -> int:
        return ref.op_code if isinstance(ref, JoinSpec) else self._arena.op_code(ref)

    def _format_code(self, ref: PlanRef) -> int:
        return self._arena.format_code_of_op(self._op_code(ref))

    def _ref_cardinality(self, ref: PlanRef) -> float:
        if isinstance(ref, JoinSpec):
            return ref.cardinality
        return self._arena.cardinality(ref)

    def _ref_cost(self, ref: PlanRef) -> Tuple[float, ...]:
        if isinstance(ref, JoinSpec):
            assert ref.cost is not None
            return ref.cost
        return self._arena.cost(ref)

    def _ref_rel(self, ref: PlanRef):
        if isinstance(ref, JoinSpec):
            return self._ref_rel(ref.outer) | self._ref_rel(ref.inner)
        return self._arena.rel(ref)

    # --------------------------------------------------------- plan building
    def make_scan(self, table_index: int, op_code: int) -> int:
        """Build (or find) a scan node; the twin of the object ``make_scan``."""
        existing = self._arena.find_scan(op_code, table_index)
        if existing is not None:
            return existing
        operator = self._arena.operator(op_code)
        assert isinstance(operator, ScanOperator)
        table = self._query.table(table_index)
        cardinality = self._estimator.scan_cardinality(table, operator)
        cost = tuple(
            metric.scan_cost(table, operator, cardinality, self._config)
            for metric in self._metrics
        )
        return self._arena.add_scan(op_code, table_index, cardinality, cost)

    def make_join(self, outer: int, inner: int, op_code: int) -> int:
        """Build (or find) a join node; the twin of the object ``make_join``."""
        existing = self._arena.find_join(op_code, outer, inner)
        if existing is not None:
            return existing
        spec = JoinSpec(outer, inner, op_code)
        self._cost_spec_scalar(spec)
        return self.realize(spec)

    def intern_plan(self, plan) -> int:
        """Intern a ``Plan`` object tree into the arena; returns its handle.

        Rebuilds the plan bottom-up through ``make_scan`` / ``make_join``
        with the plan's own operators, so the stored costs are recomputed —
        bit-identical for plans built by this model's cost model.
        """
        from repro.plans.plan import JoinPlan, ScanPlan

        if isinstance(plan, ScanPlan):
            return self.make_scan(plan.table.index, self._operator_code(plan.operator))
        if isinstance(plan, JoinPlan):
            outer = self.intern_plan(plan.outer)
            inner = self.intern_plan(plan.inner)
            return self.make_join(outer, inner, self._operator_code(plan.operator))
        raise TypeError(f"unknown plan type: {type(plan)!r}")

    def _operator_code(self, operator) -> int:
        return self._operator_codes[operator]

    def realize(self, ref: PlanRef) -> int:
        """Turn a costed candidate into an arena handle (children first)."""
        if not isinstance(ref, JoinSpec):
            return ref
        if ref.handle is not None:
            return ref.handle
        assert ref.cost is not None, "realize() requires a costed spec"
        outer = self.realize(ref.outer)
        inner = self.realize(ref.inner)
        ref.handle = self._arena.add_join(
            ref.op_code, outer, inner, ref.cardinality, ref.cost
        )
        return ref.handle

    # --------------------------------------------------------- spec costing
    def cost_specs(self, specs: Sequence[JoinSpec]) -> None:
        """Fill ``cardinality`` and ``cost`` for a list of candidate specs.

        Children must already be resolved (handles, or specs costed by an
        earlier call).  Each spec is first looked up in the candidate memo —
        climb neighborhoods repeat almost entirely between steps — and only
        misses are computed (and memoized): scalar for a handful, grouped
        per operator through the vectorized kernels for larger miss sets.
        Memo hits, scalar computation, and batch computation all yield the
        exact same values (``tests/test_arena.py``).
        """
        memo = self._spec_memo
        misses: List[JoinSpec] = []
        miss_keys: List[object] = []
        for spec in specs:
            key = self._spec_key(spec)
            cached = memo.get(key)
            if cached is None:
                misses.append(spec)
                miss_keys.append(key)
            else:
                spec.cardinality, spec.cost = cached
        if not misses:
            return
        if len(misses) < SMALL_SPEC_BATCH:
            for spec in misses:
                self._cost_spec_scalar(spec)
        else:
            self._cost_specs_batch(misses)
        for spec, key in zip(misses, miss_keys):
            memo[key] = (spec.cardinality, spec.cost)  # type: ignore[assignment]

    def _cost_specs_batch(self, specs: List[JoinSpec]) -> None:
        """Vectorized costing of memo misses.

        Specs whose children are both handles (the vast majority) are costed
        in array operations — cardinalities, cost rows and output formats
        gathered straight from the arena columns, node contributions grouped
        per operator; the few specs referencing other specs fall back to the
        scalar kernel.
        """
        arena = self._arena
        direct_positions = [
            position
            for position, spec in enumerate(specs)
            if type(spec.outer) is int and type(spec.inner) is int
        ]
        if len(direct_positions) < SMALL_SPEC_BATCH:
            for spec in specs:
                self._cost_spec_scalar(spec)
            return
        for position, spec in enumerate(specs):
            if type(spec.outer) is not int or type(spec.inner) is not int:
                self._cost_spec_scalar(spec)
        direct = [specs[position] for position in direct_positions]
        size = len(direct)
        outer_handles = np.fromiter(
            (spec.outer for spec in direct), dtype=np.int64, count=size
        )
        inner_handles = np.fromiter(
            (spec.inner for spec in direct), dtype=np.int64, count=size
        )
        op_codes = np.fromiter(
            (spec.op_code for spec in direct), dtype=np.int64, count=size
        )
        outer_cards = arena.cardinalities_of(outer_handles)
        inner_cards = arena.cardinalities_of(inner_handles)
        selectivity = self._selectivity
        rel = arena.rel
        selectivities = np.fromiter(
            (
                selectivity(rel(int(outer)), rel(int(inner)))
                for outer, inner in zip(outer_handles, inner_handles)
            ),
            dtype=np.float64,
            count=size,
        )
        products = outer_cards * inner_cards * selectivities
        cardinalities = np.where(products > 1.0, products, 1.0)
        node_costs = self._node_costs_grouped(
            outer_cards, inner_cards, cardinalities, op_codes
        )
        totals = (arena.costs_of(outer_handles) + arena.costs_of(inner_handles)) + (
            node_costs
        )
        card_list = cardinalities.tolist()
        total_rows = totals.tolist()
        for offset, spec in enumerate(direct):
            spec.cardinality = card_list[offset]
            spec.cost = tuple(total_rows[offset])

    def _spec_key(self, spec: JoinSpec) -> object:
        outer = spec.outer
        inner = spec.inner
        return (
            spec.op_code,
            outer if isinstance(outer, int) else self._spec_key(outer),
            inner if isinstance(inner, int) else self._spec_key(inner),
        )

    def _selectivity(self, outer_rel, inner_rel) -> float:
        key = (outer_rel, inner_rel)
        selectivity = self._selectivity_memo.get(key)
        if selectivity is None:
            selectivity = self._query.selectivity_between(outer_rel, inner_rel)
            self._selectivity_memo[key] = selectivity
        return selectivity

    def _cost_spec_scalar(self, spec: JoinSpec) -> None:
        outer_card = self._ref_cardinality(spec.outer)
        inner_card = self._ref_cardinality(spec.inner)
        selectivity = self._selectivity(
            self._ref_rel(spec.outer), self._ref_rel(spec.inner)
        )
        product = outer_card * inner_card * selectivity
        # The same ``max(1.0, outer * inner * selectivity)`` as the estimator.
        cardinality = product if product > 1.0 else 1.0
        operator = self._arena.operator(spec.op_code)
        node_cost = tuple(
            metric.join_cost_cards(
                outer_card, inner_card, operator, cardinality, self._config
            )
            for metric in self._metrics
        )
        outer_cost = self._ref_cost(spec.outer)
        inner_cost = self._ref_cost(spec.inner)
        spec.cardinality = cardinality
        spec.cost = tuple(
            outer_value + inner_value + node_value
            for outer_value, inner_value, node_value in zip(
                outer_cost, inner_cost, node_cost
            )
        )

    def _node_costs_grouped(
        self,
        outer_cards: np.ndarray,
        inner_cards: np.ndarray,
        output_cards: np.ndarray,
        op_codes: np.ndarray,
        groups: Dict[int, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Per-node join costs for mixed operators, grouped per operator.

        ``groups`` optionally carries precomputed per-operator position
        arrays (the cross-product kernel derives them arithmetically from
        its tiling).  Page counts are computed once per operator group and
        shared by every metric (the three paper metrics would otherwise
        each recompute them).
        """
        from repro.cost.metrics import _pages_batch

        node = np.empty((op_codes.shape[0], self.num_metrics), dtype=np.float64)
        if groups is None:
            positions_by_op: Dict[int, List[int]] = {}
            for position, code in enumerate(op_codes.tolist()):
                positions_by_op.setdefault(code, []).append(position)
            groups = {
                code: np.asarray(positions, dtype=np.int64)
                for code, positions in positions_by_op.items()
            }
        config = self._config
        for code, index in groups.items():
            operator = self._arena.operator(code)
            assert isinstance(operator, JoinOperator)
            outer_sub = outer_cards[index]
            inner_sub = inner_cards[index]
            output_sub = output_cards[index]
            pages = (
                _pages_batch(outer_sub, config),
                _pages_batch(inner_sub, config),
                _pages_batch(output_sub, config),
            )
            for column, metric in enumerate(self._metrics):
                node[index, column] = metric.join_cost_batch(
                    outer_sub, inner_sub, operator, output_sub, config, pages=pages
                )
        return node

    # ------------------------------------------------- frontier cross product
    def _empty_batch(self) -> CandidateBatch:
        empty = np.empty(0, dtype=np.int64)
        return CandidateBatch(
            costs=np.empty((0, self.num_metrics)), cardinalities=np.empty(0),
            op_codes=empty, tags=empty, outer_pos=empty, inner_pos=empty,
        )

    def _describe_cross(
        self, outer_handles: Sequence[int], inner_handles: Sequence[int]
    ) -> "Optional[_CrossDescription]":
        """Lay out one frontier cross product: everything but the node costs.

        Returns ``None`` for an empty cross product.  The per-candidate
        arrays are in the scalar loop order ``for outer: for inner: for op``.
        """
        arena = self._arena
        num_outer = len(outer_handles)
        num_inner = len(inner_handles)
        if num_outer == 0 or num_inner == 0:
            return None
        outer_rel = arena.rel(outer_handles[0])
        inner_rel = arena.rel(inner_handles[0])
        for side, rel, handles in (
            ("outer", outer_rel, outer_handles),
            ("inner", inner_rel, inner_handles),
        ):
            for handle in handles:
                if arena.rel(handle) != rel:
                    raise ValueError(
                        f"{side} handles must all join the same table set; "
                        f"got {sorted(arena.rel(handle))} and {sorted(rel)}"
                    )
        outer_idx = np.asarray(outer_handles, dtype=np.int64)
        inner_idx = np.asarray(inner_handles, dtype=np.int64)
        outer_cards = arena.cardinalities_of(outer_idx)
        inner_cards = arena.cardinalities_of(inner_idx)
        selectivity = self._selectivity(outer_rel, inner_rel)
        products = outer_cards[:, None] * inner_cards[None, :] * selectivity
        output_cards = np.where(products > 1.0, products, 1.0)

        inner_formats = arena.format_codes_of(inner_idx)
        ops_per_inner = self._applicable_counts[inner_formats]
        per_outer = int(ops_per_inner.sum())
        # Candidate pattern within one outer row: for each inner j, its
        # applicable operator codes in library order.
        pattern_ops = np.concatenate(
            [self._applicable_arrays[code] for code in inner_formats.tolist()]
        )
        pattern_inner = np.repeat(np.arange(num_inner, dtype=np.int64), ops_per_inner)
        op_codes = np.tile(pattern_ops, num_outer)
        inner_pos = np.tile(pattern_inner, num_outer)
        outer_pos = np.repeat(np.arange(num_outer, dtype=np.int64), per_outer)

        cardinalities = output_cards[outer_pos, inner_pos]
        # Per-operator position groups follow from the tiling: an operator's
        # occurrences repeat every ``per_outer`` candidates.
        tile_starts = per_outer * np.arange(num_outer, dtype=np.int64)
        groups = {
            code: (
                np.flatnonzero(pattern_ops == code)[None, :] + tile_starts[:, None]
            ).ravel()
            for code in np.unique(pattern_ops).tolist()
        }
        return _CrossDescription(
            op_codes=op_codes,
            outer_pos=outer_pos,
            inner_pos=inner_pos,
            cardinalities=cardinalities,
            outer_cards_pc=outer_cards[outer_pos],
            inner_cards_pc=inner_cards[inner_pos],
            base_costs=arena.costs_of(outer_idx)[outer_pos]
            + arena.costs_of(inner_idx)[inner_pos],
            groups=groups,
        )

    def _assemble_batch(
        self, description: "_CrossDescription", node_costs: np.ndarray
    ) -> CandidateBatch:
        totals = description.base_costs + node_costs
        return CandidateBatch(
            costs=totals,
            cardinalities=description.cardinalities,
            op_codes=description.op_codes,
            tags=self._arena.format_codes_of_ops(description.op_codes),
            outer_pos=description.outer_pos,
            inner_pos=description.inner_pos,
        )

    def join_candidates(
        self, outer_handles: Sequence[int], inner_handles: Sequence[int]
    ) -> CandidateBatch:
        """Cost the cross product of two partial-plan frontiers.

        All handles on one side must join the **same table set** (the lists
        are partial-plan frontiers of two fixed intermediate results, as in
        ``ApproximateFrontiers``): the join selectivity is computed once
        for that pair of table sets.  Mixed-relation inputs are rejected.

        All ``|outer| × |inner| × |applicable operators|`` candidate joins
        are costed in array expressions (one kernel pass per distinct
        operator); no arena nodes are created.  The batch row order matches
        the scalar loop ``for outer: for inner: for op``, so inserting the
        rows sequentially into a frontier reproduces the object path
        decision for decision.
        """
        description = self._describe_cross(outer_handles, inner_handles)
        if description is None:
            return self._empty_batch()
        node_costs = self._node_costs_grouped(
            description.outer_cards_pc,
            description.inner_cards_pc,
            description.cardinalities,
            description.op_codes,
            description.groups,
        )
        return self._assemble_batch(description, node_costs)

    def join_candidates_multi(
        self, pairs: Sequence[Tuple[Sequence[int], Sequence[int]]]
    ) -> List[CandidateBatch]:
        """Cost many frontier cross products in one grouped kernel pass.

        ``pairs`` is a list of ``(outer_handles, inner_handles)`` frontier
        pairs — e.g. every (left, right) split a DP step processes within
        one subset level.  The candidates of all pairs are concatenated and
        the per-node cost kernels run once per distinct operator over the
        whole concatenation instead of once per pair, amortizing kernel
        dispatch over the level.  Every built-in kernel is elementwise per
        candidate, so each returned batch is bit-identical to the
        corresponding :meth:`join_candidates` call (pinned by
        ``tests/test_dp_arena.py``).
        """
        descriptions = [
            self._describe_cross(outer_handles, inner_handles)
            for outer_handles, inner_handles in pairs
        ]
        live = [d for d in descriptions if d is not None]
        if not live:
            return [self._empty_batch() for _ in descriptions]
        merged_groups: Dict[int, List[np.ndarray]] = {}
        offset = 0
        for description in live:
            for code, positions in description.groups.items():
                merged_groups.setdefault(code, []).append(positions + offset)
            offset += description.op_codes.shape[0]
        node_costs = self._node_costs_grouped(
            np.concatenate([d.outer_cards_pc for d in live]),
            np.concatenate([d.inner_cards_pc for d in live]),
            np.concatenate([d.cardinalities for d in live]),
            np.concatenate([d.op_codes for d in live]),
            {
                code: np.concatenate(chunks)
                for code, chunks in merged_groups.items()
            },
        )
        batches: List[CandidateBatch] = []
        offset = 0
        for description in descriptions:
            if description is None:
                batches.append(self._empty_batch())
                continue
            size = description.op_codes.shape[0]
            batches.append(
                self._assemble_batch(description, node_costs[offset : offset + size])
            )
            offset += size
        return batches

    # ------------------------------------------------ trusted worker pipeline
    def _cross_pattern(
        self, inner_formats: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Memoized per-outer candidate layout for one inner-format sequence.

        Within a DP level most splits share the same inner frontier format
        sequence, so the ``(pattern_ops, pattern_inner, per_outer)`` layout
        is cached by the raw bytes of ``inner_formats``.  Only the trusted
        path uses the memo; the sequential engine keeps deriving the layout
        per call so benchmark comparisons stay honest.
        """
        key = inner_formats.tobytes()
        cached = self._pattern_memo.get(key)
        if cached is None:
            ops_per_inner = self._applicable_counts[inner_formats]
            pattern_ops = np.concatenate(
                [self._applicable_arrays[code] for code in inner_formats.tolist()]
            )
            pattern_inner = np.repeat(
                np.arange(inner_formats.shape[0], dtype=np.int64), ops_per_inner
            )
            cached = (pattern_ops, pattern_inner, int(ops_per_inner.sum()))
            self._pattern_memo[key] = cached
        return cached

    def _describe_cross_trusted(
        self,
        outer_idx: np.ndarray,
        inner_idx: np.ndarray,
        outer_rel: frozenset,
        inner_rel: frozenset,
    ) -> "Optional[_CrossDescription]":
        """:meth:`_describe_cross` minus validation, for pre-validated splits.

        The caller asserts that all outer handles join exactly
        ``outer_rel`` and all inner handles ``inner_rel`` (DP splits derive
        both from subset bits, so re-reading per-handle relations would only
        re-check an invariant the enumeration already guarantees).  Groups
        are left empty — :meth:`join_candidates_level` computes one global
        per-operator index over the whole level instead.
        """
        arena = self._arena
        num_outer = outer_idx.shape[0]
        num_inner = inner_idx.shape[0]
        if num_outer == 0 or num_inner == 0:
            return None
        outer_cards = arena.cardinalities_of(outer_idx)
        inner_cards = arena.cardinalities_of(inner_idx)
        selectivity = self._selectivity(outer_rel, inner_rel)
        products = outer_cards[:, None] * inner_cards[None, :] * selectivity
        output_cards = np.where(products > 1.0, products, 1.0)

        inner_formats = arena.format_codes_of(inner_idx)
        pattern_ops, pattern_inner, per_outer = self._cross_pattern(inner_formats)
        op_codes = np.tile(pattern_ops, num_outer)
        inner_pos = np.tile(pattern_inner, num_outer)
        outer_pos = np.repeat(np.arange(num_outer, dtype=np.int64), per_outer)
        return _CrossDescription(
            op_codes=op_codes,
            outer_pos=outer_pos,
            inner_pos=inner_pos,
            cardinalities=output_cards[outer_pos, inner_pos],
            outer_cards_pc=outer_cards[outer_pos],
            inner_cards_pc=inner_cards[inner_pos],
            base_costs=arena.costs_of(outer_idx)[outer_pos]
            + arena.costs_of(inner_idx)[inner_pos],
            groups={},
        )

    def join_candidates_level(
        self,
        splits: Sequence[Tuple[np.ndarray, np.ndarray, frozenset, frozenset]],
    ) -> List[CandidateBatch]:
        """Trusted variant of :meth:`join_candidates_multi` for DP shards.

        ``splits`` rows are ``(outer_handles, inner_handles, outer_rel,
        inner_rel)`` with int64 handle arrays and pre-derived table sets
        (the shared-memory fabric ships subset bits, so relations come from
        bit positions rather than per-handle lookups).  Per-operator groups
        are computed once over the concatenated level — elementwise kernels
        make the scatter bit-identical to the per-split merged groups of
        ``join_candidates_multi``.
        """
        descriptions = [
            self._describe_cross_trusted(
                np.asarray(outer_handles, dtype=np.int64),
                np.asarray(inner_handles, dtype=np.int64),
                outer_rel,
                inner_rel,
            )
            for outer_handles, inner_handles, outer_rel, inner_rel in splits
        ]
        live = [d for d in descriptions if d is not None]
        if not live:
            return [self._empty_batch() for _ in descriptions]
        all_ops = np.concatenate([d.op_codes for d in live])
        groups = {
            code: np.flatnonzero(all_ops == code)
            for code in np.unique(all_ops).tolist()
        }
        node_costs = self._node_costs_grouped(
            np.concatenate([d.outer_cards_pc for d in live]),
            np.concatenate([d.inner_cards_pc for d in live]),
            np.concatenate([d.cardinalities for d in live]),
            all_ops,
            groups,
        )
        batches: List[CandidateBatch] = []
        offset = 0
        for description in descriptions:
            if description is None:
                batches.append(self._empty_batch())
                continue
            size = description.op_codes.shape[0]
            batches.append(
                self._assemble_batch(description, node_costs[offset : offset + size])
            )
            offset += size
        return batches

    def realize_candidate(
        self,
        batch: CandidateBatch,
        position: int,
        outer_handles: Sequence[int],
        inner_handles: Sequence[int],
    ) -> int:
        """Create the arena node for one accepted cross-product candidate."""
        return self._arena.add_join(
            int(batch.op_codes[position]),
            outer_handles[int(batch.outer_pos[position])],
            inner_handles[int(batch.inner_pos[position])],
            float(batch.cardinalities[position]),
            batch.costs[position],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchCostModel(query={self._query.name!r}, arena={self._arena!r})"
