"""Per-metric cost formulas.

Each metric implements two per-node contribution functions (one for scans,
one for joins).  The total plan cost for a metric is the sum of the node
contributions over the plan tree, computed incrementally by
:class:`~repro.cost.model.PlanFactory`.  Using additive node contributions
keeps every metric consistent with the multi-objective principle of
optimality exploited by Algorithm 2.

The three metrics of the paper's evaluation:

``TimeMetric``
    Textbook I/O-dominated execution-time formulas (block-nested-loop, hash,
    sort-merge joins; sequential and index scans).  Parallel operator
    variants divide their time by the parallelism degree.
``BufferMetric``
    Working-memory footprint: hash joins hold their build side, sort-merge
    and block-nested-loop joins hold their configured memory budget.
``DiskMetric``
    Temporary disk footprint: materialized outputs, hash-join spill
    partitions and external-sort runs.

Extension metrics (used by the example applications, not by the paper's main
grid): ``MonetaryMetric``, ``EnergyMetric`` and ``PrecisionLossMetric``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple, Type

import numpy as np

from repro.plans.operators import (
    DataFormat,
    JoinAlgorithm,
    JoinOperator,
    ScanAlgorithm,
    ScanOperator,
)
from repro.plans.plan import Plan
from repro.query.table import PAGE_SIZE_BYTES, Table


@dataclass(frozen=True)
class CostModelConfig:
    """Shared parameters of all cost metrics.

    Parameters
    ----------
    bytes_per_row:
        Average width of intermediate-result rows; used to convert row counts
        into page counts.
    page_size_bytes:
        Page size for the row-to-page conversion.
    cpu_cost_per_row:
        CPU cost charged per produced output row (in the same unit as one
        page I/O), so that even fully cached plans have non-zero time cost.
    price_per_time_unit:
        Monetary price of one time unit on one worker (cloud scenario).
    parallelism_overhead:
        Fractional monetary overhead per additional worker (coordination,
        shuffling) in the cloud scenario.
    power_per_time_unit:
        Energy drawn per time unit of single-threaded work.
    """

    bytes_per_row: float = 100.0
    page_size_bytes: float = PAGE_SIZE_BYTES
    cpu_cost_per_row: float = 0.001
    price_per_time_unit: float = 1.0
    parallelism_overhead: float = 0.1
    power_per_time_unit: float = 1.0

    def pages(self, cardinality: float) -> float:
        """Number of pages occupied by ``cardinality`` intermediate rows."""
        return max(1.0, cardinality * self.bytes_per_row / self.page_size_bytes)


class CostMetric:
    """Interface of a single cost metric.

    Sub-classes implement the per-node contribution functions.  All
    contributions must be non-negative so that total plan cost is monotone in
    its sub-plan costs.

    A join node's contribution only depends on the *cardinalities* of its
    inputs, never on their structure, so every metric exposes three layers:

    * :meth:`join_cost` — object layer, reads ``outer.cardinality`` /
      ``inner.cardinality`` and delegates;
    * :meth:`join_cost_cards` — scalar kernel on plain floats (what the plan
      arena uses for one-off nodes);
    * :meth:`join_cost_batch` — vectorized kernel on NumPy arrays for one
      fixed operator, **bit-identical** to calling :meth:`join_cost_cards`
      element by element (pinned by ``tests/test_arena.py``).
    """

    #: Short machine-readable metric name (used in reports and metric selection).
    name: str = "abstract"

    def scan_cost(
        self,
        table: Table,
        operator: ScanOperator,
        output_cardinality: float,
        config: CostModelConfig,
    ) -> float:
        """Cost contribution of a scan node."""
        raise NotImplementedError

    def join_cost(
        self,
        outer: Plan,
        inner: Plan,
        operator: JoinOperator,
        output_cardinality: float,
        config: CostModelConfig,
    ) -> float:
        """Cost contribution of a join node (excluding its children)."""
        return self.join_cost_cards(
            outer.cardinality, inner.cardinality, operator, output_cardinality, config
        )

    def join_cost_cards(
        self,
        outer_cardinality: float,
        inner_cardinality: float,
        operator: JoinOperator,
        output_cardinality: float,
        config: CostModelConfig,
    ) -> float:
        """Join contribution from input/output cardinalities (scalar kernel)."""
        raise NotImplementedError

    def join_cost_batch(
        self,
        outer_cardinalities: np.ndarray,
        inner_cardinalities: np.ndarray,
        operator: JoinOperator,
        output_cardinalities: np.ndarray,
        config: CostModelConfig,
        pages: "Tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None,
    ) -> np.ndarray:
        """Vectorized join contributions for one operator over many pairs.

        ``pages`` optionally carries precomputed ``(outer, inner, output)``
        page counts so that several metrics costing the same batch share
        them.  The default implementation falls back to the scalar kernel
        per element, so custom metrics stay correct (if slow) under the
        batch engine; the built-in metrics override it with array formulas
        that perform the exact same IEEE-754 operations.
        """
        del pages
        return np.asarray(
            [
                self.join_cost_cards(
                    float(outer), float(inner), operator, float(output), config
                )
                for outer, inner, output in zip(
                    outer_cardinalities, inner_cardinalities, output_cardinalities
                )
            ],
            dtype=np.float64,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _sequential_join_time(
    outer_cardinality: float,
    inner_cardinality: float,
    operator: JoinOperator,
    output_cardinality: float,
    config: CostModelConfig,
) -> float:
    """Single-threaded execution time of a join node.

    Shared by the time, monetary and energy metrics (which scale it
    differently with the parallelism degree).
    """
    outer_pages = config.pages(outer_cardinality)
    inner_pages = config.pages(inner_cardinality)
    output_pages = config.pages(output_cardinality)
    cpu = config.cpu_cost_per_row * output_cardinality

    if operator.algorithm is JoinAlgorithm.HASH:
        # Build the inner side, probe with the outer side.  If the build side
        # exceeds the memory budget, both sides are partitioned to disk and
        # re-read (classic Grace hash join).
        io = outer_pages + inner_pages
        if inner_pages > operator.memory_pages:
            io += 2.0 * (outer_pages + inner_pages)
    elif operator.algorithm is JoinAlgorithm.SORT_MERGE:
        # External sort of both inputs followed by a merge pass.
        io = _external_sort_cost(outer_pages, operator.memory_pages)
        io += _external_sort_cost(inner_pages, operator.memory_pages)
        io += outer_pages + inner_pages
    elif operator.algorithm is JoinAlgorithm.BLOCK_NESTED_LOOP:
        # One pass over the outer per block of memory, scanning the inner each time.
        blocks = math.ceil(outer_pages / operator.memory_pages)
        io = outer_pages + blocks * inner_pages
    elif operator.algorithm is JoinAlgorithm.NESTED_LOOP:
        # Tuple-at-a-time nested loop: one inner scan per outer row.
        io = outer_pages + outer_cardinality * inner_pages
    else:  # pragma: no cover - defensive, enum is exhaustive
        raise ValueError(f"unknown join algorithm: {operator.algorithm}")

    materialization = (
        output_pages if operator.output_format is DataFormat.MATERIALIZED else 0.0
    )
    return io + materialization + cpu


def _external_sort_cost(pages: float, memory_pages: float) -> float:
    """I/O cost of an external merge sort of ``pages`` with ``memory_pages`` buffers."""
    if pages <= memory_pages:
        return pages
    runs = math.ceil(pages / memory_pages)
    fan_in = max(2.0, memory_pages - 1.0)
    merge_passes = max(1.0, math.ceil(math.log(runs, fan_in)))
    return 2.0 * pages * (1.0 + merge_passes)


# ---------------------------------------------------------------------------
# Vectorized kernels (one fixed operator, arrays of cardinalities)
# ---------------------------------------------------------------------------
# Every array formula below performs the same IEEE-754 double operations, in
# the same order and association, as its scalar twin above, so batch and
# scalar costing agree bit for bit.  Two constructions need care:
#
# * ``max(1.0, x)`` returns 1.0 for NaN inputs in Python (the comparison
#   ``x > 1.0`` is false), while ``np.maximum`` propagates NaN — so the batch
#   code uses ``np.where(x > 1.0, x, 1.0)``;
# * ``np.log`` may differ from C ``log`` by one ulp on some NumPy builds
#   (SIMD polynomial implementations), so the merge-pass count of the
#   external sort is computed with ``math.log`` on the (few) distinct run
#   counts instead of a vectorized logarithm.
def _pages_batch(cardinalities: np.ndarray, config: CostModelConfig) -> np.ndarray:
    """Vectorized :meth:`CostModelConfig.pages`."""
    raw = cardinalities * config.bytes_per_row / config.page_size_bytes
    return np.where(raw > 1.0, raw, 1.0)


def _merge_passes_batch(runs: np.ndarray, fan_in: float) -> np.ndarray:
    """``max(1.0, ceil(log(runs, fan_in)))`` per element, via ``math.log``.

    Run counts are ceiling results, so the number of distinct values in a
    batch is tiny; evaluating the logarithm with ``math`` per distinct value
    keeps the result bit-identical to the scalar kernel on every platform.
    """
    passes = np.empty_like(runs)
    for value in np.unique(runs).tolist():
        passes[runs == value] = max(1.0, math.ceil(math.log(value, fan_in)))
    return passes


def _external_sort_cost_batch(pages: np.ndarray, memory_pages: float) -> np.ndarray:
    """Vectorized :func:`_external_sort_cost`."""
    cost = pages.copy()
    spill = pages > memory_pages
    if spill.any():
        spilled = pages[spill]
        runs = np.ceil(spilled / memory_pages)
        fan_in = max(2.0, memory_pages - 1.0)
        merge_passes = _merge_passes_batch(runs, fan_in)
        cost[spill] = 2.0 * spilled * (1.0 + merge_passes)
    return cost


def _sequential_join_time_batch(
    outer_cardinalities: np.ndarray,
    inner_cardinalities: np.ndarray,
    operator: JoinOperator,
    output_cardinalities: np.ndarray,
    config: CostModelConfig,
    pages: "Tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None,
) -> np.ndarray:
    """Vectorized :func:`_sequential_join_time` for one operator."""
    if pages is not None:
        outer_pages, inner_pages, output_pages = pages
    else:
        outer_pages = _pages_batch(outer_cardinalities, config)
        inner_pages = _pages_batch(inner_cardinalities, config)
        output_pages = _pages_batch(output_cardinalities, config)
    cpu = config.cpu_cost_per_row * output_cardinalities

    if operator.algorithm is JoinAlgorithm.HASH:
        io = outer_pages + inner_pages
        spill = inner_pages > operator.memory_pages
        if spill.any():
            io[spill] = io[spill] + 2.0 * (outer_pages[spill] + inner_pages[spill])
    elif operator.algorithm is JoinAlgorithm.SORT_MERGE:
        io = _external_sort_cost_batch(outer_pages, operator.memory_pages)
        io = io + _external_sort_cost_batch(inner_pages, operator.memory_pages)
        io = io + (outer_pages + inner_pages)
    elif operator.algorithm is JoinAlgorithm.BLOCK_NESTED_LOOP:
        blocks = np.ceil(outer_pages / operator.memory_pages)
        io = outer_pages + blocks * inner_pages
    elif operator.algorithm is JoinAlgorithm.NESTED_LOOP:
        io = outer_pages + outer_cardinalities * inner_pages
    else:  # pragma: no cover - defensive, enum is exhaustive
        raise ValueError(f"unknown join algorithm: {operator.algorithm}")

    if operator.output_format is DataFormat.MATERIALIZED:
        return io + output_pages + cpu
    return io + 0.0 + cpu


def _sequential_scan_time(
    table: Table,
    operator: ScanOperator,
    output_cardinality: float,
    config: CostModelConfig,
) -> float:
    """Single-threaded execution time of a scan node."""
    table_pages = max(1.0, table.cardinality * table.row_width / config.page_size_bytes)
    cpu = config.cpu_cost_per_row * output_cardinality
    if operator.algorithm is ScanAlgorithm.INDEX:
        # Index scans touch a fraction of the pages plus the index traversal.
        io = 0.2 * table_pages + math.log2(table.cardinality + 1.0)
    elif operator.algorithm is ScanAlgorithm.SAMPLE:
        io = table_pages * operator.sampling_rate
    else:
        io = table_pages
    materialization = (
        config.pages(output_cardinality)
        if operator.output_format is DataFormat.MATERIALIZED
        else 0.0
    )
    return io + materialization + cpu


class TimeMetric(CostMetric):
    """Estimated execution time (I/O + CPU), divided by operator parallelism."""

    name = "time"

    def scan_cost(self, table, operator, output_cardinality, config):
        sequential = _sequential_scan_time(table, operator, output_cardinality, config)
        return sequential / operator.parallelism

    def join_cost_cards(
        self, outer_cardinality, inner_cardinality, operator, output_cardinality, config
    ):
        sequential = _sequential_join_time(
            outer_cardinality, inner_cardinality, operator, output_cardinality, config
        )
        return sequential / operator.parallelism

    def join_cost_batch(
        self, outer_cardinalities, inner_cardinalities, operator,
        output_cardinalities, config, pages=None,
    ):
        sequential = _sequential_join_time_batch(
            outer_cardinalities, inner_cardinalities, operator,
            output_cardinalities, config, pages,
        )
        return sequential / operator.parallelism


class BufferMetric(CostMetric):
    """Working-memory footprint accumulated over the plan's operators."""

    name = "buffer"

    def scan_cost(self, table, operator, output_cardinality, config):
        del table, output_cardinality, config
        # A scan needs one page per degree of parallelism for its read buffer.
        return float(operator.parallelism)

    def join_cost_cards(
        self, outer_cardinality, inner_cardinality, operator, output_cardinality, config
    ):
        del outer_cardinality, output_cardinality
        inner_pages = config.pages(inner_cardinality)
        if operator.algorithm is JoinAlgorithm.HASH:
            # The build side must be held in memory (capped by the budget when
            # the join degrades to a partitioned hash join).
            return min(inner_pages, operator.memory_pages) + float(operator.parallelism)
        if operator.algorithm in (
            JoinAlgorithm.SORT_MERGE,
            JoinAlgorithm.BLOCK_NESTED_LOOP,
        ):
            return float(operator.memory_pages)
        # Tuple nested loop only buffers a single page per input.
        return 2.0

    def join_cost_batch(
        self, outer_cardinalities, inner_cardinalities, operator,
        output_cardinalities, config, pages=None,
    ):
        size = inner_cardinalities.shape[0]
        if operator.algorithm is JoinAlgorithm.HASH:
            inner_pages = (
                pages[1] if pages is not None
                else _pages_batch(inner_cardinalities, config)
            )
            # ``min(x, m)`` keeps NaN (both the comparison-based Python min
            # and np.minimum return the NaN operand here).
            return np.minimum(inner_pages, operator.memory_pages) + float(
                operator.parallelism
            )
        if operator.algorithm in (
            JoinAlgorithm.SORT_MERGE,
            JoinAlgorithm.BLOCK_NESTED_LOOP,
        ):
            return np.full(size, float(operator.memory_pages))
        return np.full(size, 2.0)


class DiskMetric(CostMetric):
    """Temporary disk footprint (spill files, sort runs, materialized outputs)."""

    name = "disk"

    def scan_cost(self, table, operator, output_cardinality, config):
        del table
        if operator.output_format is DataFormat.MATERIALIZED:
            return config.pages(output_cardinality)
        return 0.0

    def join_cost_cards(
        self, outer_cardinality, inner_cardinality, operator, output_cardinality, config
    ):
        outer_pages = config.pages(outer_cardinality)
        inner_pages = config.pages(inner_cardinality)
        spill = 0.0
        if operator.algorithm is JoinAlgorithm.HASH:
            if inner_pages > operator.memory_pages:
                spill = outer_pages + inner_pages
        elif operator.algorithm is JoinAlgorithm.SORT_MERGE:
            if outer_pages > operator.memory_pages:
                spill += outer_pages
            if inner_pages > operator.memory_pages:
                spill += inner_pages
        materialization = (
            config.pages(output_cardinality)
            if operator.output_format is DataFormat.MATERIALIZED
            else 0.0
        )
        return spill + materialization

    def join_cost_batch(
        self, outer_cardinalities, inner_cardinalities, operator,
        output_cardinalities, config, pages=None,
    ):
        if pages is not None:
            outer_pages, inner_pages, output_pages = pages
        else:
            outer_pages = _pages_batch(outer_cardinalities, config)
            inner_pages = _pages_batch(inner_cardinalities, config)
            output_pages = None
        spill = np.zeros(outer_pages.shape[0])
        if operator.algorithm is JoinAlgorithm.HASH:
            mask = inner_pages > operator.memory_pages
            spill[mask] = outer_pages[mask] + inner_pages[mask]
        elif operator.algorithm is JoinAlgorithm.SORT_MERGE:
            mask = outer_pages > operator.memory_pages
            spill[mask] = spill[mask] + outer_pages[mask]
            mask = inner_pages > operator.memory_pages
            spill[mask] = spill[mask] + inner_pages[mask]
        if operator.output_format is DataFormat.MATERIALIZED:
            if output_pages is None:
                output_pages = _pages_batch(output_cardinalities, config)
            return spill + output_pages
        return spill + 0.0


class MonetaryMetric(CostMetric):
    """Monetary cost of cloud execution.

    Paying for ``p`` workers for ``t / p`` time units costs roughly the same
    as one worker for ``t`` time units, plus a coordination overhead that
    grows with the parallelism degree.  Execution time shrinks with
    parallelism while money grows — the tradeoff from the paper's cloud
    motivation.
    """

    name = "monetary"

    def scan_cost(self, table, operator, output_cardinality, config):
        sequential = _sequential_scan_time(table, operator, output_cardinality, config)
        overhead = 1.0 + config.parallelism_overhead * (operator.parallelism - 1)
        return sequential * config.price_per_time_unit * overhead

    def join_cost_cards(
        self, outer_cardinality, inner_cardinality, operator, output_cardinality, config
    ):
        sequential = _sequential_join_time(
            outer_cardinality, inner_cardinality, operator, output_cardinality, config
        )
        overhead = 1.0 + config.parallelism_overhead * (operator.parallelism - 1)
        return sequential * config.price_per_time_unit * overhead

    def join_cost_batch(
        self, outer_cardinalities, inner_cardinalities, operator,
        output_cardinalities, config, pages=None,
    ):
        sequential = _sequential_join_time_batch(
            outer_cardinalities, inner_cardinalities, operator,
            output_cardinalities, config, pages,
        )
        overhead = 1.0 + config.parallelism_overhead * (operator.parallelism - 1)
        return sequential * config.price_per_time_unit * overhead


class EnergyMetric(CostMetric):
    """Energy consumption, proportional to total (single-threaded) work."""

    name = "energy"

    #: Relative power draw of each join algorithm; hash joins are
    #: memory-intensive, nested loops are CPU-bound.
    _ALGORITHM_POWER: Dict[JoinAlgorithm, float] = {
        JoinAlgorithm.HASH: 1.2,
        JoinAlgorithm.SORT_MERGE: 1.1,
        JoinAlgorithm.BLOCK_NESTED_LOOP: 0.9,
        JoinAlgorithm.NESTED_LOOP: 1.0,
    }

    def scan_cost(self, table, operator, output_cardinality, config):
        sequential = _sequential_scan_time(table, operator, output_cardinality, config)
        return sequential * config.power_per_time_unit

    def join_cost_cards(
        self, outer_cardinality, inner_cardinality, operator, output_cardinality, config
    ):
        sequential = _sequential_join_time(
            outer_cardinality, inner_cardinality, operator, output_cardinality, config
        )
        power = self._ALGORITHM_POWER[operator.algorithm] * config.power_per_time_unit
        return sequential * power

    def join_cost_batch(
        self, outer_cardinalities, inner_cardinalities, operator,
        output_cardinalities, config, pages=None,
    ):
        sequential = _sequential_join_time_batch(
            outer_cardinalities, inner_cardinalities, operator,
            output_cardinalities, config, pages,
        )
        power = self._ALGORITHM_POWER[operator.algorithm] * config.power_per_time_unit
        return sequential * power


class PrecisionLossMetric(CostMetric):
    """Precision loss caused by sampling scans (approximate query processing).

    Result precision is a quality metric; the paper transforms it into a cost
    metric ("precision loss").  Each sampling scan contributes the fraction of
    rows it drops, so a plan reading full tables has zero precision loss.
    """

    name = "precision_loss"

    def scan_cost(self, table, operator, output_cardinality, config):
        del table, output_cardinality, config
        return 1.0 - operator.sampling_rate

    def join_cost_cards(
        self, outer_cardinality, inner_cardinality, operator, output_cardinality, config
    ):
        del outer_cardinality, inner_cardinality, operator
        del output_cardinality, config
        return 0.0

    def join_cost_batch(
        self, outer_cardinalities, inner_cardinalities, operator,
        output_cardinalities, config, pages=None,
    ):
        del inner_cardinalities, operator, output_cardinalities, config, pages
        return np.zeros(outer_cardinalities.shape[0])


#: Registry of all metric implementations by name.
_METRIC_REGISTRY: Dict[str, Type[CostMetric]] = {
    metric.name: metric
    for metric in (
        TimeMetric,
        BufferMetric,
        DiskMetric,
        MonetaryMetric,
        EnergyMetric,
        PrecisionLossMetric,
    )
}

#: The metric names used in the paper's evaluation (Section 6.1).
PAPER_METRICS: Tuple[str, str, str] = ("time", "buffer", "disk")


def metric_by_name(name: str) -> CostMetric:
    """Instantiate a metric from its registry name."""
    try:
        return _METRIC_REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_METRIC_REGISTRY))
        raise KeyError(f"unknown cost metric {name!r}; known metrics: {known}") from None


def available_metric_names() -> Tuple[str, ...]:
    """Names of all registered cost metrics."""
    return tuple(sorted(_METRIC_REGISTRY))
