"""The multi-objective cost model / plan factory.

:class:`MultiObjectiveCostModel` ties together a query, a cardinality
estimator, an operator library and a list of cost metrics.  It is the single
place where plans are built: ``make_scan`` and ``make_join`` compute the
output cardinality and the cost vector of the new node from its children in
O(#metrics) time, which realizes the constant-time sub-plan re-costing that
Section 4.2 relies on.

``PlanFactory`` is an alias kept for readability at call sites that only care
about plan construction (the search algorithms) rather than costing.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.cost.cardinality import CardinalityEstimator
from repro.cost.metrics import (
    PAPER_METRICS,
    CostModelConfig,
    CostMetric,
    metric_by_name,
)
from repro.plans.operators import JoinOperator, OperatorLibrary, ScanOperator
from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.query.query import Query


class MultiObjectiveCostModel:
    """Builds plans annotated with multi-metric cost vectors.

    Parameters
    ----------
    query:
        The query being optimized; provides table statistics and predicate
        selectivities.
    metrics:
        The cost metrics plans are compared on, either as names (see
        :func:`repro.cost.metrics.metric_by_name`) or metric instances.
    library:
        Operator library; defaults to :meth:`OperatorLibrary.default`.
    config:
        Shared cost-model parameters.
    """

    def __init__(
        self,
        query: Query,
        metrics: Sequence[str | CostMetric] = PAPER_METRICS,
        library: OperatorLibrary | None = None,
        config: CostModelConfig | None = None,
    ) -> None:
        if not metrics:
            raise ValueError("need at least one cost metric")
        self._query = query
        self._metrics: List[CostMetric] = [
            metric if isinstance(metric, CostMetric) else metric_by_name(metric)
            for metric in metrics
        ]
        self._library = library if library is not None else OperatorLibrary.default()
        self._config = config if config is not None else CostModelConfig()
        self._estimator = CardinalityEstimator(query)

    # ------------------------------------------------------------ accessors
    @property
    def query(self) -> Query:
        """The query being optimized."""
        return self._query

    @property
    def library(self) -> OperatorLibrary:
        """The operator library available to the optimizer."""
        return self._library

    @property
    def config(self) -> CostModelConfig:
        """Shared cost-model parameters."""
        return self._config

    @property
    def metrics(self) -> Tuple[CostMetric, ...]:
        """The cost metrics plans are compared on."""
        return tuple(self._metrics)

    @property
    def metric_names(self) -> Tuple[str, ...]:
        """Names of the cost metrics, in cost-vector order."""
        return tuple(metric.name for metric in self._metrics)

    @property
    def num_metrics(self) -> int:
        """Number of cost metrics (``l`` in the paper)."""
        return len(self._metrics)

    @property
    def estimator(self) -> CardinalityEstimator:
        """The cardinality estimator used when building plans."""
        return self._estimator

    # --------------------------------------------------------- plan building
    def make_scan(self, table_index: int, operator: ScanOperator) -> ScanPlan:
        """Build a scan plan for the table with the given index."""
        table = self._query.table(table_index)
        cardinality = self._estimator.scan_cardinality(table, operator)
        cost = tuple(
            metric.scan_cost(table, operator, cardinality, self._config)
            for metric in self._metrics
        )
        return ScanPlan(table=table, operator=operator, cost=cost, cardinality=cardinality)

    def make_join(self, outer: Plan, inner: Plan, operator: JoinOperator) -> JoinPlan:
        """Build a join plan on top of two existing sub-plans."""
        cardinality = self._estimator.join_cardinality(
            outer.rel, inner.rel, outer.cardinality, inner.cardinality
        )
        node_cost = tuple(
            metric.join_cost(outer, inner, operator, cardinality, self._config)
            for metric in self._metrics
        )
        total_cost = tuple(
            outer_value + inner_value + node_value
            for outer_value, inner_value, node_value in zip(
                outer.cost, inner.cost, node_cost
            )
        )
        return JoinPlan(
            outer=outer,
            inner=inner,
            operator=operator,
            cost=total_cost,
            cardinality=cardinality,
        )

    # ----------------------------------------------------- operator shortcuts
    def scan_operators(self, table_index: int) -> Tuple[ScanOperator, ...]:
        """Scan operators applicable to the given table (``ScanOps`` in Alg. 3)."""
        return self._library.applicable_scan_operators(table_index)

    def join_operators(self, outer: Plan, inner: Plan) -> Tuple[JoinOperator, ...]:
        """Join operators applicable to the given sub-plans (``JoinOps`` in Alg. 3)."""
        return self._library.applicable_join_operators(
            outer.output_format, inner.output_format
        )

    def default_scan(self, table_index: int) -> ScanPlan:
        """Scan plan using the library's first applicable scan operator."""
        operator = self.scan_operators(table_index)[0]
        return self.make_scan(table_index, operator)

    def default_join(self, outer: Plan, inner: Plan) -> JoinPlan:
        """Join plan using the library's first applicable join operator."""
        operator = self.join_operators(outer, inner)[0]
        return self.make_join(outer, inner, operator)


#: Search algorithms only use the plan-building surface of the cost model;
#: the alias documents that intent at call sites.
PlanFactory = MultiObjectiveCostModel


def sample_metric_names(
    num_metrics: int,
    rng: random.Random,
    pool: Sequence[str] = PAPER_METRICS,
) -> Tuple[str, ...]:
    """Pick ``num_metrics`` distinct metric names uniformly from ``pool``.

    The paper's evaluation considers up to three cost metrics and, "for less
    than three cost metrics, selects the specified number of cost metrics
    with uniform distribution from the total set of metrics for each test
    case" (Section 6.1).
    """
    if not 1 <= num_metrics <= len(pool):
        raise ValueError(
            f"can only select between 1 and {len(pool)} metrics, got {num_metrics}"
        )
    return tuple(rng.sample(list(pool), num_metrics))
