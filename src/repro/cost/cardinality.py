"""Cardinality estimation.

Intermediate-result cardinalities drive every cost metric.  The estimator
implements the textbook model also used by the paper's lineage (Steinbrunn et
al., Trummer & Koch 2014): the output cardinality of a join is the product of
the input cardinalities times the combined selectivity of all join predicates
connecting the two sides (independence assumption); tables without a
connecting predicate produce a Cartesian product.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.plans.operators import ScanOperator
from repro.query.query import Query
from repro.query.table import Table


class CardinalityEstimator:
    """Estimates output cardinalities of scans and joins for one query."""

    def __init__(self, query: Query) -> None:
        self._query = query

    @property
    def query(self) -> Query:
        """The query whose statistics this estimator consults."""
        return self._query

    def scan_cardinality(self, table: Table, operator: ScanOperator) -> float:
        """Output cardinality of scanning ``table`` with ``operator``.

        Sampling scans produce a fraction of the table's rows; at least one
        row is always produced so that downstream cost formulas stay positive.
        """
        return max(1.0, table.cardinality * operator.sampling_rate)

    def join_cardinality(
        self,
        left_rel: FrozenSet[int],
        right_rel: FrozenSet[int],
        left_cardinality: float,
        right_cardinality: float,
    ) -> float:
        """Output cardinality of joining two intermediate results.

        Parameters
        ----------
        left_rel, right_rel:
            The table sets of the two inputs; they must be disjoint.
        left_cardinality, right_cardinality:
            Estimated cardinalities of the two inputs.
        """
        selectivity = self._query.selectivity_between(left_rel, right_rel)
        return max(1.0, left_cardinality * right_cardinality * selectivity)
