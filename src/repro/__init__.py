"""repro — reproduction of "A Fast Randomized Algorithm for Multi-Objective
Query Optimization" (Trummer & Koch, SIGMOD 2016).

The package provides:

* the RMQ randomized multi-objective query optimizer (the paper's
  contribution, :class:`~repro.core.rmq.RMQOptimizer`),
* every substrate it needs: a query/catalog model, random query generation,
  bushy plan representation with physical operators, multi-metric cost
  models, Pareto machinery,
* every baseline of the paper's evaluation (DP approximation schemes,
  iterative improvement, simulated annealing, two-phase optimization,
  NSGA-II),
* a benchmark harness that regenerates each figure of the evaluation.

Quickstart::

    from repro import (
        GraphShape, MultiObjectiveCostModel, QueryGenerator, RMQOptimizer
    )

    query = QueryGenerator().generate(num_tables=20, shape=GraphShape.CHAIN)
    cost_model = MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))
    optimizer = RMQOptimizer(cost_model)
    plans = optimizer.run(max_steps=50)
    for plan in plans:
        print(plan.cost)
"""

from repro.query import Catalog, GraphShape, JoinGraph, Query, QueryGenerator, Table
from repro.query.generator import SelectivityModel
from repro.plans import (
    DataFormat,
    JoinOperator,
    JoinPlan,
    OperatorLibrary,
    Plan,
    ScanOperator,
    ScanPlan,
    TransformationRules,
    explain_plan,
    plan_signature,
    validate_plan,
)
from repro.cost import (
    CostModelConfig,
    MultiObjectiveCostModel,
    PlanFactory,
)
from repro.pareto import (
    ParetoFrontier,
    approx_dominates,
    approximation_error,
    dominates,
    hypervolume,
    strictly_dominates,
)
from repro.core import (
    AlphaSchedule,
    AnytimeOptimizer,
    ParetoClimber,
    PlanCache,
    RandomPlanGenerator,
    RMQOptimizer,
)
from repro.baselines import (
    DPOptimizer,
    IterativeImprovementOptimizer,
    NSGA2Optimizer,
    SimulatedAnnealingOptimizer,
    TwoPhaseOptimizer,
    make_optimizer,
)

__version__ = "1.0.0"

__all__ = [
    # query substrate
    "Table",
    "Query",
    "JoinGraph",
    "GraphShape",
    "Catalog",
    "QueryGenerator",
    "SelectivityModel",
    # plans
    "Plan",
    "ScanPlan",
    "JoinPlan",
    "ScanOperator",
    "JoinOperator",
    "OperatorLibrary",
    "DataFormat",
    "TransformationRules",
    "explain_plan",
    "plan_signature",
    "validate_plan",
    # cost
    "MultiObjectiveCostModel",
    "PlanFactory",
    "CostModelConfig",
    # pareto
    "dominates",
    "strictly_dominates",
    "approx_dominates",
    "ParetoFrontier",
    "approximation_error",
    "hypervolume",
    # core algorithm
    "RMQOptimizer",
    "ParetoClimber",
    "PlanCache",
    "AlphaSchedule",
    "RandomPlanGenerator",
    "AnytimeOptimizer",
    # baselines
    "DPOptimizer",
    "IterativeImprovementOptimizer",
    "SimulatedAnnealingOptimizer",
    "TwoPhaseOptimizer",
    "NSGA2Optimizer",
    "make_optimizer",
    "__version__",
]
