"""Fast multi-objective hill climbing (Algorithm 2 of the paper).

``ParetoStep`` improves a plan by recursively improving its sub-plans and
then applying the local transformations at the current node, so that many
beneficial mutations in independent sub-trees are applied in a single step.
``ParetoClimb`` repeats steps until no neighbor strictly dominates the
current plan.

Two properties of the problem are exploited, exactly as discussed in
Section 4.2:

* the multi-objective principle of optimality — sub-plan improvements never
  worsen the whole plan, so mutations are judged by their local cost effect
  (cost vectors are maintained bottom-up, making re-costing O(#metrics));
* plan decomposability — mutations in independent sub-trees are applied
  simultaneously, reducing the number of complete plans built on the path to
  a local optimum.

Plans producing different output data representations are kept separately
during a step (the paper's ``SameOutput`` pruning), because the
representation influences the cost and applicability of operators higher up
in the tree.  Per representation a single non-dominated candidate is kept,
matching the pseudo-code's intent ("keeps one Pareto plan per output
format") and the complexity analysis (Lemma 2), which assumes each
``ParetoStep`` instance returns one plan per format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from repro.cost.model import PlanFactory
from repro.pareto.dominance import strictly_dominates
from repro.pareto.engine import SMALL_SET_SIZE, as_cost_matrix, dominance_fold
from repro.pareto.store import resolve_store_policy, sorted_dominance_fold
from repro.plans.operators import DataFormat
from repro.plans.plan import JoinPlan, Plan
from repro.plans.transformations import ArenaTransformationRules, TransformationRules

if TYPE_CHECKING:  # pragma: no cover - imports for type checking only
    from repro.cost.batch import BatchCostModel, JoinSpec, PlanRef


@dataclass(frozen=True)
class ClimbResult:
    """Outcome of one ``ParetoClimb`` invocation.

    Attributes
    ----------
    plan:
        The locally Pareto-optimal plan reached by the climb.
    path_length:
        Number of strictly improving moves performed (the statistic shown in
        Figure 3, left).
    plans_built:
        Number of plan nodes constructed during the climb (work counter).
    """

    plan: Plan
    path_length: int
    plans_built: int


class ParetoClimber:
    """Multi-objective hill climbing over the bushy plan space.

    Parameters
    ----------
    factory:
        Plan factory used to build mutated plans.
    rules:
        The local transformation rules defining the neighborhood.
    max_steps:
        Safety bound on the number of climbing steps (the climb always
        terminates because every move strictly dominates its predecessor,
        but a bound keeps worst cases predictable).
    store:
        Frontier store policy (see :mod:`repro.pareto.store`) accelerating
        the per-format candidate pruning: any indexed policy resolves large
        candidate groups through the first-objective-windowed
        :func:`~repro.pareto.store.sorted_dominance_fold`, ``"flat"`` pins
        the plain vectorized fold.  The selected plan is identical either
        way.
    """

    def __init__(
        self,
        factory: PlanFactory,
        rules: TransformationRules | None = None,
        max_steps: int = 10_000,
        store: str | None = None,
    ) -> None:
        if max_steps < 1:
            raise ValueError(f"max_steps must be positive, got {max_steps}")
        self._factory = factory
        self._rules = rules if rules is not None else TransformationRules()
        self._max_steps = max_steps
        self._store_policy = resolve_store_policy(store)
        self._plans_built = 0

    # ------------------------------------------------------------ ParetoStep
    def pareto_step(self, plan: Plan) -> Dict[DataFormat, Plan]:
        """One parallel transformation step (function ``ParetoStep``).

        Returns the best mutated plan found for each output data
        representation.  Sub-plans are improved by recursive calls before
        mutations are applied at this node, so a single step can change many
        independent parts of the plan tree.
        """
        candidates: List[Plan]
        if isinstance(plan, JoinPlan):
            outer_pareto = self.pareto_step(plan.outer)
            inner_pareto = self.pareto_step(plan.inner)
            candidates = []
            for outer in outer_pareto.values():
                for inner in inner_pareto.values():
                    rebuilt = self._rebuild(plan, outer, inner)
                    candidates.extend(self._rules.mutations(rebuilt, self._factory))
        else:
            candidates = self._rules.mutations(plan, self._factory)
        self._plans_built += len(candidates)
        return self._prune_per_format(candidates)

    # ----------------------------------------------------------- ParetoClimb
    def climb(self, plan: Plan) -> ClimbResult:
        """Climb from ``plan`` until no neighbor strictly dominates it."""
        built_before = self._plans_built
        current = plan
        path_length = 0
        improving = True
        while improving and path_length < self._max_steps:
            improving = False
            mutations = self.pareto_step(current)
            for mutated in mutations.values():
                if strictly_dominates(mutated.cost, current.cost):
                    current = mutated
                    path_length += 1
                    improving = True
                    break
        return ClimbResult(
            plan=current,
            path_length=path_length,
            plans_built=self._plans_built - built_before,
        )

    # ------------------------------------------------------------ accessors
    @property
    def plans_built(self) -> int:
        """Total number of candidate plans constructed by this climber."""
        return self._plans_built

    @property
    def rules(self) -> TransformationRules:
        """The transformation rules defining the neighborhood."""
        return self._rules

    @property
    def store_policy(self) -> str:
        """Frontier-store policy used for large-group pruning."""
        return self._store_policy

    # ------------------------------------------------------------- internals
    def _rebuild(self, original: JoinPlan, outer: Plan, inner: Plan) -> JoinPlan:
        """Rebuild the original join on top of possibly improved children."""
        if outer is original.outer and inner is original.inner:
            return original
        return self._rules.rebuild_join(outer, inner, original.operator, self._factory)

    def _prune_per_format(self, candidates: List[Plan]) -> Dict[DataFormat, Plan]:
        """Keep one non-dominated candidate per output data representation.

        When two candidates of the same representation are mutually
        non-dominated the incumbent is kept; Section 4.2 explicitly allows
        selecting an arbitrary non-dominated neighbor instead of branching.
        Large candidate groups resolve the sequential fold through a
        vectorized kernel — :func:`repro.pareto.engine.dominance_fold`
        under the ``flat`` policy, the first-objective-windowed
        :func:`repro.pareto.store.sorted_dominance_fold` under any indexed
        policy — both of which select exactly the same plan as the scalar
        loop.
        """
        fold = dominance_fold if self._store_policy == "flat" else sorted_dominance_fold
        groups: Dict[DataFormat, List[Plan]] = {}
        for candidate in candidates:
            groups.setdefault(candidate.output_format, []).append(candidate)
        best: Dict[DataFormat, Plan] = {}
        for output_format, group in groups.items():
            if len(group) > SMALL_SET_SIZE:
                costs = as_cost_matrix([plan.cost for plan in group])
                best[output_format] = group[fold(costs)]
                continue
            incumbent = group[0]
            for candidate in group[1:]:
                if strictly_dominates(candidate.cost, incumbent.cost):
                    incumbent = candidate
            best[output_format] = incumbent
        return best


class ArenaParetoClimber:
    """Multi-objective hill climbing on the columnar engine.

    The algorithm is :class:`ParetoClimber`'s, move for move; the difference
    is purely mechanical.  A ``ParetoStep`` node first *describes* its whole
    neighborhood as uncosted :class:`~repro.cost.batch.JoinSpec` candidates
    (via :class:`~repro.plans.transformations.ArenaTransformationRules`),
    then costs them in one batched
    :meth:`~repro.cost.batch.BatchCostModel.cost_specs` call and prunes per
    output format.  Only the per-format winners are realized into arena
    nodes, so a climb allocates a handful of rows per step instead of one
    ``Plan`` tree per candidate.

    ``ParetoStep`` is a pure function of the (hash-consed) plan handle, so
    its result is memoized per handle: successive climb steps share every
    sub-tree that did not change, and repeated encounters of the same
    sub-plan across iterations are dictionary hits.  The work counter is
    charged as if the sub-tree had been re-derived (each memo entry records
    its sub-tree's candidate count), so ``plans_built`` matches the object
    climber exactly.

    Selected plans, path lengths, and the ``plans_built`` counter are
    identical to the object climber (``tests/test_arena.py``).
    """

    def __init__(
        self,
        model: "BatchCostModel",
        rules: TransformationRules | None = None,
        max_steps: int = 10_000,
        store: str | None = None,
    ) -> None:
        if max_steps < 1:
            raise ValueError(f"max_steps must be positive, got {max_steps}")
        self._model = model
        self._arena = model.arena
        self._rules = ArenaTransformationRules(model, rules)
        self._max_steps = max_steps
        self._store_policy = resolve_store_policy(store)
        self._plans_built = 0
        # handle -> (winners per format, candidate count of the whole
        # recursion), see the class docstring.
        self._step_memo: Dict[int, tuple] = {}

    # ------------------------------------------------------------ ParetoStep
    def pareto_step(self, handle: int) -> Dict[int, int]:
        """One parallel transformation step; maps format codes to handles."""
        cached = self._step_memo.get(handle)
        if cached is not None:
            winners, subtree_candidates = cached
            self._plans_built += subtree_candidates
            return winners
        built_before = self._plans_built
        winners = self._pareto_step_uncached(handle)
        self._step_memo[handle] = (winners, self._plans_built - built_before)
        return winners

    def _pareto_step_uncached(self, handle: int) -> Dict[int, int]:
        arena = self._arena
        if not arena.is_join(handle):
            candidates: "List[PlanRef]" = self._rules.mutations(handle, [])
            self._plans_built += len(candidates)
            return self._prune_per_format(candidates)
        outer_pareto = self.pareto_step(arena.outer(handle))
        inner_pareto = self.pareto_step(arena.inner(handle))
        pending: "List[JoinSpec]" = []
        candidates = []
        original_outer = arena.outer(handle)
        original_inner = arena.inner(handle)
        root_code = arena.op_code(handle)
        for outer in outer_pareto.values():
            for inner in inner_pareto.values():
                if outer == original_outer and inner == original_inner:
                    rebuilt = handle
                else:
                    rebuilt = self._rules.rebuild_join(outer, inner, root_code)
                candidates.extend(self._rules.mutations(rebuilt, pending))
        self._plans_built += len(candidates)
        self._model.cost_specs(pending)
        return self._prune_per_format(candidates)

    # ----------------------------------------------------------- ParetoClimb
    def climb(self, handle: int) -> ClimbResult:
        """Climb from ``handle`` until no neighbor strictly dominates it."""
        built_before = self._plans_built
        arena = self._arena
        current = handle
        path_length = 0
        improving = True
        while improving and path_length < self._max_steps:
            improving = False
            mutations = self.pareto_step(current)
            for mutated in mutations.values():
                if strictly_dominates(arena.cost(mutated), arena.cost(current)):
                    current = mutated
                    path_length += 1
                    improving = True
                    break
        return ClimbResult(
            plan=current,
            path_length=path_length,
            plans_built=self._plans_built - built_before,
        )

    # ------------------------------------------------------------ accessors
    @property
    def plans_built(self) -> int:
        """Total number of candidate plans costed by this climber."""
        return self._plans_built

    @property
    def store_policy(self) -> str:
        """Frontier-store policy used for large-group pruning."""
        return self._store_policy

    # ------------------------------------------------------------- internals
    def _cost_of(self, ref: "PlanRef"):
        if isinstance(ref, int):
            return self._arena.cost(ref)
        assert ref.cost is not None
        return ref.cost

    def _prune_per_format(self, candidates: "List[PlanRef]") -> Dict[int, int]:
        """Keep one non-dominated candidate per output format (see object twin).

        Winners are realized into arena handles; losing candidates never
        touch the arena.
        """
        fold = dominance_fold if self._store_policy == "flat" else sorted_dominance_fold
        model = self._model
        arena = self._arena
        op_list = arena.op_code_list
        fmt_of_op = arena.format_code_by_op
        groups: "Dict[int, List[PlanRef]]" = {}
        for candidate in candidates:
            if type(candidate) is int:
                code = fmt_of_op[op_list[candidate]]
            else:
                code = fmt_of_op[candidate.op_code]
            groups.setdefault(code, []).append(candidate)
        best: Dict[int, int] = {}
        for format_code, group in groups.items():
            if len(group) > SMALL_SET_SIZE:
                costs = as_cost_matrix([self._cost_of(ref) for ref in group])
                best[format_code] = model.realize(group[fold(costs)])
                continue
            incumbent = group[0]
            incumbent_cost = self._cost_of(incumbent)
            for candidate in group[1:]:
                candidate_cost = self._cost_of(candidate)
                if strictly_dominates(candidate_cost, incumbent_cost):
                    incumbent = candidate
                    incumbent_cost = candidate_cost
            best[format_code] = model.realize(incumbent)
        return best
