"""The paper's primary contribution: the RMQ randomized optimizer.

Modules map one-to-one onto the paper's Section 4:

``random_plans``
    Random bushy (and left-deep) plan generation — the ``RandomPlan`` step of
    Algorithm 1 (linear time, Lemma 1).
``pareto_climb``
    Fast multi-objective hill climbing — Algorithm 2 (``ParetoStep`` /
    ``ParetoClimb``), applying mutations in independent sub-trees
    simultaneously.
``plan_cache``
    The partial-plan cache ``P`` mapping intermediate results to
    non-dominated partial plans.
``frontier``
    Frontier approximation for the intermediate results of a locally optimal
    plan — Algorithm 3 (``ApproximateFrontiers``) and the α schedule.
``rmq``
    The main loop — Algorithm 1 (``RandomMOQO``), exposed through the anytime
    optimizer interface shared with the baselines.
``interface``
    The anytime optimizer interface used by RMQ, all baselines and the
    benchmark harness.
"""

from repro.core.interface import AnytimeOptimizer, OptimizerStatistics
from repro.core.random_plans import RandomPlanGenerator
from repro.core.pareto_climb import ClimbResult, ParetoClimber
from repro.core.plan_cache import PlanCache
from repro.core.frontier import AlphaSchedule, FrontierApproximator
from repro.core.rmq import RMQOptimizer

__all__ = [
    "AnytimeOptimizer",
    "OptimizerStatistics",
    "RandomPlanGenerator",
    "ParetoClimber",
    "ClimbResult",
    "PlanCache",
    "AlphaSchedule",
    "FrontierApproximator",
    "RMQOptimizer",
]
