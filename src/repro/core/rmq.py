"""The RMQ optimizer: main loop of the paper (Algorithm 1, ``RandomMOQO``).

Each iteration performs the three steps of Section 4.1:

1. generate a random bushy plan (``RandomPlan``),
2. improve it via multi-objective hill climbing (``ParetoClimb``),
3. approximate the Pareto frontiers of all intermediate results used by the
   locally optimal plan, reusing non-dominated partial plans from the plan
   cache (``ApproximateFrontiers``) under the iteration-dependent
   approximation factor α.

The result plan set after any number of iterations is the cached plan set for
the full query table set, ``P[q]``.

Two interchangeable engines execute the loop:

* ``"arena"`` (default) — the columnar engine: plans are
  :class:`~repro.plans.arena.PlanArena` handles, hill-climbing neighborhoods
  and the frontier-combination cross products are costed by the batch kernel
  (:mod:`repro.cost.batch`), and ``Plan`` objects are materialized only when
  :meth:`RMQOptimizer.frontier` is called;
* ``"object"`` — the original ``Plan``-tree implementation, kept as the
  property-tested scalar reference.

Both engines produce bit-identical results — same frontier contents and
order, same RNG stream, same work counters (pinned by
``tests/test_arena.py``); pin one per process with ``REPRO_PLAN_ENGINE``.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.frontier import (
    AlphaSchedule,
    ArenaFrontierApproximator,
    FrontierApproximator,
)
from repro.core.interface import AnytimeOptimizer
from repro.core.pareto_climb import ArenaParetoClimber, ParetoClimber
from repro.core.plan_cache import ArenaPlanCache, PlanCache
from repro.core.random_plans import ArenaRandomPlanGenerator, RandomPlanGenerator
from repro.cost.batch import BatchCostModel
from repro.cost.model import MultiObjectiveCostModel
from repro.plans.arena import resolve_plan_engine
from repro.plans.plan import Plan
from repro.plans.transformations import TransformationRules


class RMQOptimizer(AnytimeOptimizer):
    """Randomized multi-objective query optimizer (the paper's RMQ).

    Parameters
    ----------
    cost_model:
        Cost model / plan factory for the query to optimize.
    rng:
        Source of randomness; inject a seeded ``random.Random`` for
        reproducible runs.
    schedule:
        α schedule for the frontier approximation; defaults to the paper's
        ``25 · 0.99^⌊i/25⌋``.
    rules:
        Local transformation rules for the hill climbing neighborhood.
    use_plan_cache:
        When False, the plan cache is cleared of partial plans between
        iterations (only complete plans are kept), disabling the sharing of
        partial plans across iterations.  Used by the ablation benchmark.
    use_climbing:
        When False, the random plan is used directly as the base of the
        frontier approximation without hill climbing (ablation).
    left_deep_only:
        When True, random plans are drawn from the left-deep space instead of
        the unconstrained bushy space (Section 4.1 notes this variation).
    store:
        Frontier store policy (see :mod:`repro.pareto.store`) passed through
        to the plan cache and the hill climber; results are identical for
        every policy, only query acceleration differs.
    engine:
        Plan engine: ``"arena"`` (columnar, batch-costed; the default) or
        ``"object"`` (the scalar reference).  ``None`` resolves through the
        ``REPRO_PLAN_ENGINE`` environment variable.  Results are identical.
    """

    name = "RMQ"

    def __init__(
        self,
        cost_model: MultiObjectiveCostModel,
        rng: random.Random | None = None,
        schedule: AlphaSchedule | None = None,
        rules: TransformationRules | None = None,
        use_plan_cache: bool = True,
        use_climbing: bool = True,
        left_deep_only: bool = False,
        store: str | None = None,
        engine: str | None = None,
    ) -> None:
        super().__init__(cost_model)
        self._rng = rng if rng is not None else random.Random()
        self._rules = rules if rules is not None else TransformationRules()
        self._engine = resolve_plan_engine(engine)
        if self._engine == "arena":
            self._batch_model = BatchCostModel(cost_model)
            self._generator = ArenaRandomPlanGenerator(self._batch_model, self._rng)
            self._climber = ArenaParetoClimber(
                self._batch_model, self._rules, store=store
            )
            self._approximator = ArenaFrontierApproximator(
                self._batch_model, schedule
            )
            self._cache = ArenaPlanCache(self._batch_model, store=store)
        else:
            self._batch_model = None
            self._generator = RandomPlanGenerator(cost_model, self._rng)
            self._climber = ParetoClimber(cost_model, self._rules, store=store)
            self._approximator = FrontierApproximator(cost_model, schedule)
            self._cache = PlanCache(store=store)
        self._iteration = 0
        self._use_plan_cache = use_plan_cache
        self._use_climbing = use_climbing
        self._left_deep_only = left_deep_only
        self._path_lengths: List[int] = []

    # ------------------------------------------------------------ accessors
    @property
    def engine(self) -> str:
        """The plan engine executing the loop (``"arena"`` or ``"object"``)."""
        return self._engine

    @property
    def plan_cache(self) -> PlanCache | ArenaPlanCache:
        """The partial-plan cache shared across iterations.

        Under the arena engine this is an
        :class:`~repro.core.plan_cache.ArenaPlanCache`, which answers the
        same read API (``plans`` materializes handles on access).
        """
        return self._cache

    @property
    def iteration(self) -> int:
        """Number of completed main-loop iterations."""
        return self._iteration

    @property
    def climb_path_lengths(self) -> List[int]:
        """Hill-climbing path lengths of all iterations (Figure 3, left)."""
        return list(self._path_lengths)

    @property
    def current_alpha(self) -> float:
        """Approximation factor that the next iteration will use."""
        return self._approximator.schedule.alpha(self._iteration + 1)

    # ------------------------------------------------------------- protocol
    def step(self) -> None:
        """Run one iteration of Algorithm 1."""
        self._iteration += 1
        random_plan = self._random_plan()
        if self._use_climbing:
            climb = self._climber.climb(random_plan)
            optimal_plan = climb.plan
            self._path_lengths.append(climb.path_length)
            self.statistics.plans_built += climb.plans_built
        else:
            optimal_plan = random_plan
            self._path_lengths.append(0)
        if not self._use_plan_cache:
            self._drop_partial_plans()
        built_before = self._approximator.plans_built
        self._approximator.approximate(optimal_plan, self._cache, self._iteration)
        self.statistics.plans_built += self._approximator.plans_built - built_before
        self.statistics.steps += 1
        self.statistics.extra["mean_path_length"] = sum(self._path_lengths) / len(
            self._path_lengths
        )

    def frontier(self) -> List[Plan]:
        """The cached Pareto plan set for the full query (``P[q]``)."""
        return self._cache.plans(self.query.relations)

    # ------------------------------------------------------------ internals
    def _random_plan(self):
        if self._left_deep_only:
            return self._generator.random_left_deep_plan()
        return self._generator.random_bushy_plan()

    def _drop_partial_plans(self) -> None:
        """Ablation hook: forget partial plans, keeping only complete plans."""
        if isinstance(self._cache, ArenaPlanCache):
            complete = self._cache.handles(self.query.relations)
        else:
            complete = self._cache.plans(self.query.relations)
        self._cache.clear()
        for plan in complete:
            self._cache.insert(plan)
