"""Random query plan generation (``RandomPlan`` in Algorithm 1).

The paper requires random *bushy* plans generated in linear time (Lemma 1,
citing Quiroz's linear-time random binary tree generation).  The generator
below builds a random bushy tree by repeatedly joining two uniformly chosen
partial plans until a single plan remains, which runs in O(n) plan-node
constructions and samples uniformly among join orders reachable by that
process.  Operators are chosen uniformly among the applicable operators of
the library.

A left-deep variant is provided because Section 4.1 notes that the algorithm
"can easily be adapted to consider different join order spaces (e.g.,
left-deep plans) by exchanging the random plan generation method".
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List

from repro.cost.model import PlanFactory
from repro.plans.plan import Plan

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.cost.batch import BatchCostModel


class RandomPlanGenerator:
    """Generates random query plans for one query/cost model.

    Parameters
    ----------
    factory:
        Plan factory (cost model) used to build and cost the plans.
    rng:
        Source of randomness; inject a seeded ``random.Random`` for
        reproducible runs.
    """

    def __init__(self, factory: PlanFactory, rng: random.Random | None = None) -> None:
        self._factory = factory
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------ bushy plans
    def random_bushy_plan(self) -> Plan:
        """A uniformly random bushy plan with random operator choices."""
        partial_plans = self._random_leaves()
        while len(partial_plans) > 1:
            outer = partial_plans.pop(self._rng.randrange(len(partial_plans)))
            inner = partial_plans.pop(self._rng.randrange(len(partial_plans)))
            partial_plans.append(self._random_join(outer, inner))
        return partial_plans[0]

    def random_left_deep_plan(self) -> Plan:
        """A random left-deep plan (outer child is always the composite)."""
        table_indices = list(self._factory.query.relations)
        self._rng.shuffle(table_indices)
        plan = self._random_scan(table_indices[0])
        for table_index in table_indices[1:]:
            plan = self._random_join(plan, self._random_scan(table_index))
        return plan

    def random_plans(self, count: int) -> List[Plan]:
        """Generate ``count`` independent random bushy plans."""
        return [self.random_bushy_plan() for _ in range(count)]

    # ------------------------------------------------------------- internals
    def _random_leaves(self) -> List[Plan]:
        leaves = [
            self._random_scan(table_index)
            for table_index in sorted(self._factory.query.relations)
        ]
        self._rng.shuffle(leaves)
        return leaves

    def _random_scan(self, table_index: int) -> Plan:
        operator = self._rng.choice(self._factory.scan_operators(table_index))
        return self._factory.make_scan(table_index, operator)

    def _random_join(self, outer: Plan, inner: Plan) -> Plan:
        operator = self._rng.choice(self._factory.join_operators(outer, inner))
        return self._factory.make_join(outer, inner, operator)


class ArenaRandomPlanGenerator:
    """``RandomPlan`` on the columnar engine: same draws, handle results.

    Mirrors :class:`RandomPlanGenerator` call for call — identical RNG
    consumption (every ``choice``/``shuffle``/``randrange`` happens in the
    same order over sequences of the same length), so a seeded run produces
    the same plans as the object generator, just as arena handles.
    """

    def __init__(
        self, model: "BatchCostModel", rng: random.Random | None = None
    ) -> None:
        self._model = model
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------ bushy plans
    def random_bushy_plan(self) -> int:
        """A uniformly random bushy plan with random operator choices."""
        partial_plans = self._random_leaves()
        while len(partial_plans) > 1:
            outer = partial_plans.pop(self._rng.randrange(len(partial_plans)))
            inner = partial_plans.pop(self._rng.randrange(len(partial_plans)))
            partial_plans.append(self._random_join(outer, inner))
        return partial_plans[0]

    def random_left_deep_plan(self) -> int:
        """A random left-deep plan (outer child is always the composite)."""
        table_indices = list(self._model.query.relations)
        self._rng.shuffle(table_indices)
        plan = self._random_scan(table_indices[0])
        for table_index in table_indices[1:]:
            plan = self._random_join(plan, self._random_scan(table_index))
        return plan

    def random_plans(self, count: int) -> List[int]:
        """Generate ``count`` independent random bushy plans."""
        return [self.random_bushy_plan() for _ in range(count)]

    # ------------------------------------------------------------- internals
    def _random_leaves(self) -> List[int]:
        leaves = [
            self._random_scan(table_index)
            for table_index in sorted(self._model.query.relations)
        ]
        self._rng.shuffle(leaves)
        return leaves

    def _random_scan(self, table_index: int) -> int:
        op_code = self._rng.choice(self._model.scan_codes(table_index))
        return self._model.make_scan(table_index, op_code)

    def _random_join(self, outer: int, inner: int) -> int:
        op_code = self._rng.choice(self._model.join_codes_for(inner))
        return self._model.make_join(outer, inner, op_code)
