"""The partial-plan cache (``P`` in Algorithms 1 and 3).

The cache maps every intermediate result (a set of table indices) that the
optimizer has encountered so far to a set of non-dominated partial plans
generating it.  Insertion follows Algorithm 3's pruning function:

* a new plan is rejected if a cached plan with the same output data
  representation α-dominates it (``SigBetter`` with the current α),
* otherwise the new plan is inserted and every cached plan with the same
  representation that the new plan (exactly) dominates is evicted.

With α > 1 the cache therefore stores an α-approximate Pareto set per table
set, whose size is bounded polynomially in the number of tables (Lemma 6);
with α = 1 it stores the exact non-dominated set.

Each per-table-set entry is backed by a vectorized
:class:`repro.pareto.engine.ParetoSet` whose rows are tagged with the plan's
output data representation, so the ``SigBetter`` comparison (same format and
α-dominant cost) runs as one batched kernel call once an entry grows beyond
a handful of plans.  Plan insertion order — and therefore every downstream
iteration order — is identical to the original pure-Python implementation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.pareto.dominance import approx_dominates, dominates
from repro.pareto.engine import ParetoSet
from repro.plans.plan import Plan


class PlanCache:
    """Cache of non-dominated partial plans per intermediate result.

    ``store`` pins the frontier store backing each per-table-set entry (see
    :mod:`repro.pareto.store`).  The default ``auto`` policy keeps the
    typically hand-sized entries on the flat fast path and only builds an
    index for table sets whose frontiers grow unusually large.
    """

    def __init__(self, store: str | None = None) -> None:
        self._store = store
        self._entries: Dict[FrozenSet[int], Tuple[List[Plan], ParetoSet]] = {}
        # Output formats are compared by identity (``is``), exactly like the
        # original ``SigBetter``; each distinct format object gets a small
        # integer tag used by the kernel.  The reference list pins the keyed
        # objects so id() values stay unique.
        self._format_tags: Dict[int, int] = {}
        self._format_refs: List[object] = []

    # ------------------------------------------------------------ accessors
    def plans(self, relations: FrozenSet[int] | Iterable[int]) -> List[Plan]:
        """Cached plans joining exactly the given table set (``P[rel]``)."""
        key = frozenset(relations)
        entry = self._entries.get(key)
        return list(entry[0]) if entry is not None else []

    def table_sets(self) -> List[FrozenSet[int]]:
        """All intermediate results that currently have cached plans."""
        return list(self._entries)

    def __contains__(self, relations: object) -> bool:
        if not isinstance(relations, (frozenset, set)):
            return False
        return frozenset(relations) in self._entries

    def __len__(self) -> int:
        """Number of cached intermediate results."""
        return len(self._entries)

    @property
    def total_plans(self) -> int:
        """Total number of cached partial plans over all intermediate results."""
        return sum(len(plans) for plans, _ in self._entries.values())

    def size_of(self, relations: FrozenSet[int] | Iterable[int]) -> int:
        """Number of cached plans for one intermediate result."""
        entry = self._entries.get(frozenset(relations))
        return len(entry[0]) if entry is not None else 0

    # -------------------------------------------------------------- updates
    def insert(self, plan: Plan, alpha: float = 1.0) -> bool:
        """Insert a partial plan using Algorithm 3's pruning rule.

        Returns True when the plan was kept.  ``alpha`` is the approximation
        factor of the current iteration; larger values keep the per-table-set
        plan sets smaller.
        """
        if alpha < 1.0:
            raise ValueError(f"approximation factor must be at least 1, got {alpha}")
        key = plan.rel
        entry = self._entries.get(key)
        if entry is None:
            entry = ([], ParetoSet(store=self._store))
            self._entries[key] = entry
        plans, costs = entry
        accepted, evicted = costs.insert(
            plan.cost, alpha=alpha, tag=self._format_tag(plan.output_format)
        )
        if not accepted:
            return False
        if evicted:
            removed = set(evicted)
            entry = (
                [p for index, p in enumerate(plans) if index not in removed],
                costs,
            )
            self._entries[key] = entry
            plans = entry[0]
        plans.append(plan)
        return True

    def insert_all(self, plans: Iterable[Plan], alpha: float = 1.0) -> int:
        """Insert several plans; returns how many were kept."""
        return sum(1 for plan in plans if self.insert(plan, alpha))

    def clear(self) -> None:
        """Drop every cached plan."""
        self._entries.clear()

    # ------------------------------------------------------------- queries
    def frontier_costs(
        self, relations: FrozenSet[int] | Iterable[int]
    ) -> List[Tuple[float, ...]]:
        """Cost vectors of the cached plans for one intermediate result."""
        return [plan.cost for plan in self.plans(relations)]

    # ------------------------------------------------------------ internals
    def _format_tag(self, output_format: object) -> int:
        tag = self._format_tags.get(id(output_format))
        if tag is None:
            tag = len(self._format_refs)
            self._format_tags[id(output_format)] = tag
            self._format_refs.append(output_format)
        return tag

    @staticmethod
    def _sig_better(first: Plan, second: Plan, alpha: float) -> bool:
        """``SigBetter`` from Algorithm 3: same output format and α-dominant cost.

        Kept as the scalar specification of the tagged kernel comparison.
        """
        if first.output_format is not second.output_format:
            return False
        if alpha == 1.0:
            return dominates(first.cost, second.cost)
        return approx_dominates(first.cost, second.cost, alpha)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanCache(table_sets={len(self)}, total_plans={self.total_plans})"
