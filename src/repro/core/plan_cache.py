"""The partial-plan cache (``P`` in Algorithms 1 and 3).

The cache maps every intermediate result (a set of table indices) that the
optimizer has encountered so far to a set of non-dominated partial plans
generating it.  Insertion follows Algorithm 3's pruning function:

* a new plan is rejected if a cached plan with the same output data
  representation α-dominates it (``SigBetter`` with the current α),
* otherwise the new plan is inserted and every cached plan with the same
  representation that the new plan (exactly) dominates is evicted.

With α > 1 the cache therefore stores an α-approximate Pareto set per table
set, whose size is bounded polynomially in the number of tables (Lemma 6);
with α = 1 it stores the exact non-dominated set.

Each per-table-set entry is backed by a vectorized
:class:`repro.pareto.engine.ParetoSet` whose rows are tagged with the plan's
output data representation, so the ``SigBetter`` comparison (same format and
α-dominant cost) runs as one batched kernel call once an entry grows beyond
a handful of plans.  Plan insertion order — and therefore every downstream
iteration order — is identical to the original pure-Python implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from repro.obs import global_metrics
from repro.pareto.dominance import approx_dominates, dominates
from repro.pareto.engine import (
    ParetoSet,
    approx_dominates_matrix,
    batch_insert_masks,
    dominates_matrix,
)
from repro.plans.plan import Plan

if TYPE_CHECKING:  # pragma: no cover - imports for type checking only
    from repro.cost.batch import BatchCostModel, CandidateBatch


class PlanCache:
    """Cache of non-dominated partial plans per intermediate result.

    ``store`` pins the frontier store backing each per-table-set entry (see
    :mod:`repro.pareto.store`).  The default ``auto`` policy keeps the
    typically hand-sized entries on the flat fast path and only builds an
    index for table sets whose frontiers grow unusually large.
    """

    def __init__(self, store: str | None = None) -> None:
        self._store = store
        self._entries: Dict[FrozenSet[int], Tuple[List[Plan], ParetoSet]] = {}
        # Output formats are compared by identity (``is``), exactly like the
        # original ``SigBetter``; each distinct format object gets a small
        # integer tag used by the kernel.  The reference list pins the keyed
        # objects so id() values stay unique.
        self._format_tags: Dict[int, int] = {}
        self._format_refs: List[object] = []

    # ------------------------------------------------------------ accessors
    def plans(self, relations: FrozenSet[int] | Iterable[int]) -> List[Plan]:
        """Cached plans joining exactly the given table set (``P[rel]``)."""
        key = frozenset(relations)
        entry = self._entries.get(key)
        return list(entry[0]) if entry is not None else []

    def table_sets(self) -> List[FrozenSet[int]]:
        """All intermediate results that currently have cached plans."""
        return list(self._entries)

    def __contains__(self, relations: object) -> bool:
        if not isinstance(relations, (frozenset, set)):
            return False
        return frozenset(relations) in self._entries

    def __len__(self) -> int:
        """Number of cached intermediate results."""
        return len(self._entries)

    @property
    def total_plans(self) -> int:
        """Total number of cached partial plans over all intermediate results."""
        return sum(len(plans) for plans, _ in self._entries.values())

    def size_of(self, relations: FrozenSet[int] | Iterable[int]) -> int:
        """Number of cached plans for one intermediate result."""
        entry = self._entries.get(frozenset(relations))
        return len(entry[0]) if entry is not None else 0

    # -------------------------------------------------------------- updates
    def insert(self, plan: Plan, alpha: float = 1.0) -> bool:
        """Insert a partial plan using Algorithm 3's pruning rule.

        Returns True when the plan was kept.  ``alpha`` is the approximation
        factor of the current iteration; larger values keep the per-table-set
        plan sets smaller.
        """
        if alpha < 1.0:
            raise ValueError(f"approximation factor must be at least 1, got {alpha}")
        key = plan.rel
        entry = self._entries.get(key)
        if entry is None:
            entry = ([], ParetoSet(store=self._store))
            self._entries[key] = entry
        plans, costs = entry
        accepted, evicted = costs.insert(
            plan.cost, alpha=alpha, tag=self._format_tag(plan.output_format)
        )
        metrics = global_metrics()
        metrics.add("frontier.candidates")
        if not accepted:
            metrics.add("frontier.rejected")
            return False
        metrics.add("frontier.accepted")
        if evicted:
            metrics.add("frontier.evicted", len(evicted))
        if evicted:
            removed = set(evicted)
            entry = (
                [p for index, p in enumerate(plans) if index not in removed],
                costs,
            )
            self._entries[key] = entry
            plans = entry[0]
        plans.append(plan)
        return True

    def insert_all(self, plans: Iterable[Plan], alpha: float = 1.0) -> int:
        """Insert several plans; returns how many were kept."""
        return sum(1 for plan in plans if self.insert(plan, alpha))

    def clear(self) -> None:
        """Drop every cached plan."""
        self._entries.clear()

    # ------------------------------------------------------------- queries
    def frontier_costs(
        self, relations: FrozenSet[int] | Iterable[int]
    ) -> List[Tuple[float, ...]]:
        """Cost vectors of the cached plans for one intermediate result."""
        return [plan.cost for plan in self.plans(relations)]

    # ------------------------------------------------------------ internals
    def _format_tag(self, output_format: object) -> int:
        tag = self._format_tags.get(id(output_format))
        if tag is None:
            tag = len(self._format_refs)
            self._format_tags[id(output_format)] = tag
            self._format_refs.append(output_format)
        return tag

    @staticmethod
    def _sig_better(first: Plan, second: Plan, alpha: float) -> bool:
        """``SigBetter`` from Algorithm 3: same output format and α-dominant cost.

        Kept as the scalar specification of the tagged kernel comparison.
        """
        if first.output_format is not second.output_format:
            return False
        if alpha == 1.0:
            return dominates(first.cost, second.cost)
        return approx_dominates(first.cost, second.cost, alpha)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanCache(table_sets={len(self)}, total_plans={self.total_plans})"


#: Minimum batch size for which the batched cache insertion runs the
#: vectorized covered-by-frontier pre-filter (below it, per-row insertion is
#: cheaper than the kernel dispatch; the decisions are identical).
_PREFILTER_MIN_BATCH = 8


class _ArenaEntry:
    """One intermediate result's frontier: handles, tags, and cost rows."""

    __slots__ = ("handles", "tags", "rows")

    def __init__(self, num_metrics: int) -> None:
        self.handles: List[int] = []
        self.tags: List[int] = []
        self.rows = np.empty((0, num_metrics), dtype=np.float64)


class ArenaPlanCache:
    """The partial-plan cache of the columnar engine: handles, not objects.

    Mirrors :class:`PlanCache` decision for decision — same ``SigBetter``
    rule, same insertion order, same eviction bookkeeping — but each cached
    plan is a :class:`~repro.plans.arena.PlanArena` handle, each entry keeps
    its cost rows as a contiguous matrix, and whole candidate batches (the
    cross product of two sub-plan frontiers × join operators) are inserted
    through vectorized kernels:

    * with **α = 1** rows of different output formats never interact, so the
      batch decomposes per format tag into independent
      :func:`~repro.pareto.engine.batch_insert_masks` calls — one kernel
      pass per tag for the whole batch;
    * with **α > 1** candidates α-dominated by the *pre-batch* frontier are
      rejected in one kernel pass per tag — sound because eviction requires
      exact dominance, and exact dominance composed with α-dominance is
      still α-dominance (the covering row may be evicted mid-batch, but
      only by a row that also covers the candidate) — and only the
      surviving minority runs through sequential insertion against the
      evolving frontier.

    Every accept/evict decision, and the resulting frontier order, equals
    the scalar path's.  Only accepted candidates are realized into arena
    nodes.  ``store`` is accepted for interface parity with
    :class:`PlanCache` but ignored: the batch kernels play the role the
    indexed frontier stores play on the object path.
    """

    def __init__(self, model: "BatchCostModel", store: str | None = None) -> None:
        del store  # interface parity; see the class docstring
        self._model = model
        self._arena = model.arena
        self._num_metrics = model.num_metrics
        self._entries: Dict[FrozenSet[int], _ArenaEntry] = {}

    # ------------------------------------------------------------ accessors
    def handles(self, relations: FrozenSet[int] | Iterable[int]) -> List[int]:
        """Cached plan handles joining exactly the given table set."""
        entry = self._entries.get(frozenset(relations))
        return list(entry.handles) if entry is not None else []

    def handles_array(self, relations: FrozenSet[int] | Iterable[int]) -> np.ndarray:
        """Cached plan handles for one table set as an int64 array.

        The form the shared-memory task fabric publishes frontiers in: one
        contiguous handle run per table set, sliceable without copies on the
        worker side.
        """
        entry = self._entries.get(frozenset(relations))
        if entry is None:
            return np.empty(0, dtype=np.int64)
        return np.asarray(entry.handles, dtype=np.int64)

    def plans(self, relations: FrozenSet[int] | Iterable[int]) -> List[Plan]:
        """Cached plans for one table set, materialized as ``Plan`` objects."""
        entry = self._entries.get(frozenset(relations))
        if entry is None:
            return []
        return self._arena.to_plans(entry.handles)

    def table_sets(self) -> List[FrozenSet[int]]:
        """All intermediate results that currently have cached plans."""
        return list(self._entries)

    def __contains__(self, relations: object) -> bool:
        if not isinstance(relations, (frozenset, set)):
            return False
        return frozenset(relations) in self._entries

    def __len__(self) -> int:
        """Number of cached intermediate results."""
        return len(self._entries)

    @property
    def total_plans(self) -> int:
        """Total number of cached partial plans over all intermediate results."""
        return sum(len(entry.handles) for entry in self._entries.values())

    def size_of(self, relations: FrozenSet[int] | Iterable[int]) -> int:
        """Number of cached plans for one intermediate result."""
        entry = self._entries.get(frozenset(relations))
        return len(entry.handles) if entry is not None else 0

    def frontier_costs(
        self, relations: FrozenSet[int] | Iterable[int]
    ) -> List[Tuple[float, ...]]:
        """Cost vectors of the cached plans for one intermediate result."""
        entry = self._entries.get(frozenset(relations))
        if entry is None:
            return []
        return [self._arena.cost(handle) for handle in entry.handles]

    # -------------------------------------------------------------- updates
    def _entry(self, key: FrozenSet[int]) -> _ArenaEntry:
        entry = self._entries.get(key)
        if entry is None:
            entry = _ArenaEntry(self._num_metrics)
            self._entries[key] = entry
        return entry

    def insert(self, handle: int, alpha: float = 1.0) -> bool:
        """Insert one plan handle under Algorithm 3's pruning rule."""
        if alpha < 1.0:
            raise ValueError(f"approximation factor must be at least 1, got {alpha}")
        entry = self._entry(self._arena.rel(handle))
        tag = self._arena.format_code(handle)
        row = np.asarray(self._arena.cost(handle), dtype=np.float64)
        metrics = global_metrics()
        metrics.add("frontier.candidates")
        if self._covered(entry, tag, row, alpha):
            metrics.add("frontier.rejected")
            return False
        before = len(entry.handles)
        self._append_row(entry, handle, tag, row)
        metrics.add("frontier.accepted")
        evicted = before + 1 - len(entry.handles)
        if evicted:
            metrics.add("frontier.evicted", evicted)
        return True

    def insert_all(self, plan_handles: Iterable[int], alpha: float = 1.0) -> int:
        """Insert several handles; returns how many were kept."""
        return sum(1 for handle in plan_handles if self.insert(handle, alpha))

    def insert_candidates(
        self,
        relations: FrozenSet[int],
        batch: "CandidateBatch",
        outer_handles: Sequence[int],
        inner_handles: Sequence[int],
        alpha: float,
    ) -> int:
        """Insert a costed cross-product batch; returns the accepted count.

        Decisions are identical to inserting the batch rows one by one in
        order (the scalar path); accepted rows are realized into arena nodes
        on the spot.
        """
        if alpha < 1.0:
            raise ValueError(f"approximation factor must be at least 1, got {alpha}")
        if batch.size == 0:
            return 0
        entry = self._entry(relations)
        model = self._model

        def realize(position: int) -> int:
            return model.realize_candidate(batch, position, outer_handles, inner_handles)

        before = len(entry.handles)
        accepted_count, _ = _insert_batch(entry, batch, alpha, realize)
        # One registry update per batch: counter increments per candidate row
        # would dominate the kernel work at large batch sizes.
        metrics = global_metrics()
        metrics.add("frontier.candidates", batch.size)
        if accepted_count:
            metrics.add("frontier.accepted", accepted_count)
        if accepted_count != batch.size:
            metrics.add("frontier.rejected", batch.size - accepted_count)
        evicted = before + accepted_count - len(entry.handles)
        if evicted:
            metrics.add("frontier.evicted", evicted)
        return accepted_count

    def replay_accept(
        self, handle: int, tag: int | None = None, row: np.ndarray | None = None
    ) -> None:
        """Append a handle whose accept decision was already taken elsewhere.

        The replay half of the distributed DP: workers record exactly the
        candidate subsequence sequential insertion would accept, so replaying
        it only needs the *eviction* side of :meth:`insert` — the redundant
        covered-check (always false for a recorded accept on identical
        frontier state) is skipped.  ``tag``/``row`` may be passed when the
        caller already has them (e.g. from a packed effects record) to avoid
        re-deriving them from the arena.
        """
        entry = self._entry(self._arena.rel(handle))
        if tag is None:
            tag = self._arena.format_code(handle)
        if row is None:
            row = np.asarray(self._arena.cost(handle), dtype=np.float64)
        _entry_append(entry, handle, tag, row)

    def replay_accept_batch(
        self,
        relations: FrozenSet[int],
        handles: Sequence[int],
        tags: np.ndarray,
        rows: np.ndarray,
    ) -> None:
        """Replay a run of recorded accepts for one subset in one pass.

        Equivalent to calling :meth:`replay_accept` for each row in order,
        but the per-row eviction scans collapse into two dominance
        matrices.  The closed form relies on every shipped row having been
        *accepted*: each row's eviction pass always runs, so an old entry
        survives iff **no** new same-tag row dominates it, and new row
        ``i`` survives iff no **later** new same-tag row dominates it —
        with surviving old rows keeping their order ahead of surviving new
        rows, exactly the list order sequential appends produce.
        """
        if len(handles) == 0:
            return
        if len(handles) == 1:
            self.replay_accept(int(handles[0]), tag=int(tags[0]), row=rows[0])
            return
        entry = self._entry(relations)
        tags = np.asarray(tags, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.float64)
        count = len(handles)
        if entry.handles:
            old_tags = np.asarray(entry.tags, dtype=np.int64)
            # evicts_old[i, f]: new row i dominates old entry row f (same
            # elementwise <= as _entry_append).
            evicts_old = (tags[:, None] == old_tags[None, :]) & dominates_matrix(
                rows, entry.rows
            )
            old_keep = np.flatnonzero(~evicts_old.any(axis=0))
            if old_keep.size != len(entry.handles):
                kept = old_keep.tolist()
                entry.rows = entry.rows[old_keep]
                entry.handles = [entry.handles[k] for k in kept]
                entry.tags = [entry.tags[k] for k in kept]
        # peer[j, i]: new row j dominates new row i; only later rows
        # (j > i) evict, so mask to the strict lower triangle along j.
        peer = (tags[:, None] == tags[None, :]) & dominates_matrix(rows, rows)
        order = np.arange(count)
        evicted = (peer & (order[:, None] > order[None, :])).any(axis=0)
        new_keep = np.flatnonzero(~evicted)
        entry.rows = np.concatenate([entry.rows, rows[new_keep]])
        kept = new_keep.tolist()
        entry.handles.extend(int(handles[k]) for k in kept)
        entry.tags.extend(int(tags[k]) for k in kept)

    @staticmethod
    def _covered(entry: _ArenaEntry, tag: int, row: np.ndarray, alpha: float) -> bool:
        """Whether a same-tag entry row α-dominates ``row`` (``SigBetter``)."""
        return _entry_covered(entry, tag, row, alpha)

    @staticmethod
    def _append_row(
        entry: _ArenaEntry, handle: int, tag: int, row: np.ndarray
    ) -> None:
        """Append an accepted row, evicting same-tag rows it dominates."""
        _entry_append(entry, handle, tag, row)

    def clear(self) -> None:
        """Drop every cached plan."""
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArenaPlanCache(table_sets={len(self)}, total_plans={self.total_plans})"
        )


# ---------------------------------------------------------------------------
# Entry-level insertion kernels
# ---------------------------------------------------------------------------
# The decision logic of ArenaPlanCache, factored over a bare _ArenaEntry so
# that out-of-cache consumers — the distributed DP workers simulating a
# subset's insertions before the main thread replays them — share the exact
# accept/evict decisions with the sequential path.


def _entry_covered(
    entry: _ArenaEntry, tag: int, row: np.ndarray, alpha: float
) -> bool:
    """Whether a same-tag entry row α-dominates ``row`` (``SigBetter``)."""
    if not entry.handles:
        return False
    tag_match = np.asarray(entry.tags, dtype=np.int64) == tag
    covered = tag_match & np.all(entry.rows <= alpha * row, axis=1)
    return bool(covered.any())


def _entry_append(entry: _ArenaEntry, handle: int, tag: int, row: np.ndarray) -> None:
    """Append an accepted row, evicting same-tag rows it dominates."""
    if entry.handles:
        tag_match = np.asarray(entry.tags, dtype=np.int64) == tag
        evicted = tag_match & np.all(row <= entry.rows, axis=1)
        if evicted.any():
            keep = ~evicted
            entry.rows = entry.rows[keep]
            kept_positions = np.flatnonzero(keep).tolist()
            entry.handles = [entry.handles[k] for k in kept_positions]
            entry.tags = [entry.tags[k] for k in kept_positions]
    entry.rows = np.concatenate([entry.rows, row[None, :]])
    entry.handles.append(handle)
    entry.tags.append(tag)


def _entry_prefilter(
    entry: _ArenaEntry, batch: "CandidateBatch", alpha: float
) -> List[int]:
    """Positions of batch rows *not* α-covered by the pre-batch frontier."""
    size = batch.size
    if not entry.handles or size < _PREFILTER_MIN_BATCH:
        return list(range(size))
    frontier_tags = np.asarray(entry.tags, dtype=np.int64)
    covered = np.zeros(size, dtype=bool)
    for tag in np.unique(batch.tags).tolist():
        frontier_mask = frontier_tags == tag
        if not frontier_mask.any():
            continue
        batch_mask = batch.tags == tag
        covered[batch_mask] = approx_dominates_matrix(
            entry.rows[frontier_mask], batch.costs[batch_mask], alpha
        ).any(axis=0)
    return np.flatnonzero(~covered).tolist()


def _insert_batch_exact(
    entry: _ArenaEntry,
    batch: "CandidateBatch",
    realize,
) -> Tuple[int, List[int]]:
    """Whole-batch insertion at α = 1, decomposed per format tag.

    Rows only ever reject or evict rows of their own tag, so sequential
    insertion splits into independent per-tag processes; each runs as
    one :func:`batch_insert_masks` kernel call.  The final entry order —
    surviving existing rows first (original order), then kept batch rows
    (batch order) — matches sequential insertion, which always appends
    at the end.  ``realize(position)`` is called only for rows still kept
    at the end of the batch; the returned accepted positions additionally
    include rows accepted but evicted by a later batch row (sequential
    replay needs them to reproduce mid-batch decisions).
    """
    size = batch.size
    existing_size = entry.rows.shape[0]
    existing_tags = np.asarray(entry.tags, dtype=np.int64)
    surviving = np.ones(existing_size, dtype=bool)
    kept = np.zeros(size, dtype=bool)
    accepted = np.zeros(size, dtype=bool)
    for tag in np.unique(batch.tags).tolist():
        batch_mask = batch.tags == tag
        existing_mask = existing_tags == tag
        accepted_sub, kept_sub, surviving_sub = batch_insert_masks(
            entry.rows[existing_mask], batch.costs[batch_mask]
        )
        batch_positions = np.flatnonzero(batch_mask)
        accepted[batch_positions[accepted_sub]] = True
        kept[batch_positions[kept_sub]] = True
        surviving[np.flatnonzero(existing_mask)[~surviving_sub]] = False
    kept_positions = np.flatnonzero(kept).tolist()
    new_handles = [realize(position) for position in kept_positions]
    surviving_positions = np.flatnonzero(surviving).tolist()
    entry.handles = [entry.handles[k] for k in surviving_positions] + new_handles
    entry.tags = [entry.tags[k] for k in surviving_positions] + [
        int(batch.tags[position]) for position in kept_positions
    ]
    entry.rows = np.concatenate([entry.rows[surviving], batch.costs[kept]])
    accepted_positions = np.flatnonzero(accepted).tolist()
    return len(accepted_positions), accepted_positions


def _insert_batch_sequential(
    entry: _ArenaEntry,
    batch: "CandidateBatch",
    alpha: float,
    realize,
) -> Tuple[int, List[int]]:
    """Pre-filtered sequential insertion against the evolving frontier."""
    survivors = _entry_prefilter(entry, batch, alpha)
    accepted_positions: List[int] = []
    for position in survivors:
        row = batch.costs[position]
        tag = int(batch.tags[position])
        if _entry_covered(entry, tag, row, alpha):
            continue
        handle = realize(position)
        _entry_append(entry, handle, tag, row)
        accepted_positions.append(position)
    return len(accepted_positions), accepted_positions


def _insert_batch(
    entry: _ArenaEntry,
    batch: "CandidateBatch",
    alpha: float,
    realize,
) -> Tuple[int, List[int]]:
    """Insert a costed batch into one entry; returns (count, positions).

    Dispatches between the α = 1 whole-batch kernel and the pre-filtered
    sequential path with the same thresholds as
    :meth:`ArenaPlanCache.insert_candidates`; the accepted positions are in
    acceptance (= batch) order either way.
    """
    if alpha == 1.0 and batch.size >= _PREFILTER_MIN_BATCH:
        return _insert_batch_exact(entry, batch, realize)
    return _insert_batch_sequential(entry, batch, alpha, realize)


def _insert_batch_approx(
    entry: _ArenaEntry,
    batch: "CandidateBatch",
    alpha: float,
    realize,
) -> Tuple[int, List[int]]:
    """Whole-batch α > 1 insertion, vectorized per *accepted* row.

    Decision-identical to :func:`_insert_batch_sequential` (property-tested
    in ``tests/test_shm.py``): one fused (frontier × batch) α-cover
    prefilter kills rows the pre-batch frontier covers, then a sweep runs
    once per **accepted** row — each acceptance vector-rejects every later
    survivor it α-covers and vector-evicts dominated peers and frontier
    rows.  Accepted counts are tiny next to batch sizes, so this does
    O(accepted · batch) work where pairwise matrices would do O(batch²).
    This is the insertion path of the shared-memory fabric's worker
    processes; the sequential engine keeps the reference kernels above.

    Three facts make the decomposition sound:

    * the α-cover prefilter against the *pre-batch* frontier is exhaustive
      for frontier rows — mid-batch evictions only remove frontier rows,
      and any evictor covers (by transitivity of ``<=`` against the same
      computed ``α·cost`` values) everything its victim covered;
    * the same transitivity lets acceptance-time rejection stand in for
      the sequential check against *currently alive* accepted peers: a row
      covered only by a later-evicted peer is also covered by that peer's
      evictor;
    * eviction requires exact dominance, which is order-insensitive.
    """
    size = batch.size
    if entry.handles:
        frontier_tags = np.asarray(entry.tags, dtype=np.int64)
        # One fused (frontier x batch) pass: tag equality AND the exact
        # per-element comparison of _entry_covered.  Masked per-tag slicing
        # would compute the same booleans with far more interpreter work.
        covered = (
            (frontier_tags[:, None] == batch.tags[None, :])
            & approx_dominates_matrix(entry.rows, batch.costs, alpha)
        ).any(axis=0)
        survivors = np.flatnonzero(~covered)
    else:
        frontier_tags = np.empty(0, dtype=np.int64)
        survivors = np.arange(size)
    if survivors.size == 0:
        return 0, []
    if survivors.size == 1:
        # Lone survivor: always accepted (nothing can peer-cover it), so
        # the generic matrix path collapses to one reference append.
        position = int(survivors[0])
        _entry_append(
            entry, realize(position), int(batch.tags[position]),
            batch.costs[position],
        )
        return 1, [position]
    costs = np.ascontiguousarray(batch.costs[survivors], dtype=np.float64)
    tags = batch.tags[survivors]
    # alpha * cost_i computed once per survivor: every cover comparison
    # against row i (from frontier evictors or accepted peers alike) reads
    # the same float values _entry_covered would compute.
    alpha_costs = alpha * costs
    frontier_alive = np.ones(len(entry.handles), dtype=bool)
    frontier_rows = entry.rows
    alive = np.ones(survivors.size, dtype=bool)
    accepted_order: List[int] = []
    accepted_live: List[int] = []
    index = 0
    while index < alive.shape[0]:
        remaining = alive[index:]
        step = int(remaining.argmax())
        if not remaining[step]:
            break
        i = index + step
        index = i + 1
        tag = tags[i]
        row = costs[i]
        tag_match = tags == tag
        # Reject every survivor this row α-covers (covers[i, j]: same
        # elementwise float ops as _entry_covered, NaN-safe).  Earlier and
        # self positions may flip too, but the scan never revisits them.
        alive &= ~(tag_match & (row <= alpha_costs).all(axis=1))
        # Evict accepted peers and frontier rows it exactly dominates (as
        # in _entry_append: cost_i <= cost_j elementwise).
        if accepted_live:
            peers = np.asarray(accepted_live, dtype=np.int64)
            evicted = (tags[peers] == tag) & (row <= costs[peers]).all(axis=1)
            if evicted.any():
                accepted_live = [
                    j for j, gone in zip(accepted_live, evicted.tolist()) if not gone
                ]
        if frontier_rows.shape[0]:
            frontier_alive &= ~(
                (frontier_tags == tag) & (row <= frontier_rows).all(axis=1)
            )
        accepted_live.append(i)
        accepted_order.append(i)
    survivor_positions = survivors.tolist()
    handles = {i: realize(survivor_positions[i]) for i in accepted_order}
    if entry.handles and not frontier_alive.all():
        keep = np.flatnonzero(frontier_alive)
        entry.rows = entry.rows[keep]
        kept = keep.tolist()
        entry.handles = [entry.handles[k] for k in kept]
        entry.tags = [entry.tags[k] for k in kept]
    entry.rows = np.concatenate([entry.rows, costs[accepted_live]])
    entry.handles.extend(handles[i] for i in accepted_live)
    entry.tags.extend(int(tags[i]) for i in accepted_live)
    positions = [survivor_positions[i] for i in accepted_order]
    return len(positions), positions


class FrontierSimulator:
    """Replays :class:`ArenaPlanCache` insertion decisions off to the side.

    A distributed DP worker owns the frontier of exactly one table subset —
    which starts empty and is touched by nobody else — so it can decide
    accept/evict for that subset on a private scratch entry without
    realizing any arena node.  The accepted batch positions it reports are
    later replayed (in order) into the real cache by the coordinator's
    reduce step, reproducing the sequential engine bit for bit.

    The simulator dispatches α > 1 batches to the vectorized
    :func:`_insert_batch_approx` path (decision-identical to the sequential
    kernels, one matrix pass per batch) and α = 1 batches to the shared
    exact kernel.
    """

    def __init__(self, num_metrics: int) -> None:
        self._entry = _ArenaEntry(num_metrics)
        self._num_metrics = num_metrics

    @classmethod
    def from_columns(
        cls,
        num_metrics: int,
        handles: Sequence[int],
        tags: Sequence[int],
        rows: np.ndarray,
    ) -> "FrontierSimulator":
        """Construct a simulator over borrowed frontier columns, copy-free.

        ``rows`` is adopted as-is — e.g. a read-only view into a published
        shared-memory segment or an arena column snapshot.  The insertion
        kernels never write into an existing row matrix (they only replace
        it wholesale on change), so a read-only borrow is safe; the first
        mutating batch leaves the borrowed source untouched.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != num_metrics:
            raise ValueError(
                f"rows must be (n, {num_metrics}), got shape {rows.shape}"
            )
        if not (len(handles) == len(tags) == rows.shape[0]):
            raise ValueError("handles, tags, and rows must have equal length")
        simulator = cls(num_metrics)
        entry = simulator._entry
        entry.handles = [int(handle) for handle in handles]
        entry.tags = [int(tag) for tag in tags]
        entry.rows = rows
        return simulator

    def columns(self) -> Tuple[List[int], List[int], np.ndarray]:
        """The scratch frontier's ``(handles, tags, rows)`` columns.

        The inverse of :meth:`from_columns`: ``rows`` is the live matrix
        (not a copy), in frontier order.
        """
        entry = self._entry
        return entry.handles, entry.tags, entry.rows

    def insert_batch(
        self, batch: "CandidateBatch", alpha: float, base: int = 0
    ) -> List[int]:
        """Positions sequential insertion would accept; updates the scratch
        entry in place.  Scratch handles are the placeholders
        ``-1 - (base + position)`` — never dereferenced; ``base`` lets a
        caller keep them distinct across the batches of one subset."""
        if batch.size == 0:
            return []
        def realize(position: int) -> int:
            return -1 - (base + position)
        if alpha == 1.0:
            _, positions = _insert_batch(self._entry, batch, alpha, realize)
        else:
            _, positions = _insert_batch_approx(self._entry, batch, alpha, realize)
        return positions

    @property
    def num_metrics(self) -> int:
        """Width of the scratch frontier's cost rows."""
        return self._num_metrics

    @property
    def size(self) -> int:
        """Number of rows currently on the scratch frontier."""
        return len(self._entry.handles)

