"""Anytime optimizer interface.

The paper compares "incremental optimization algorithms in terms of the α
values that they produce after certain amounts of optimization time"
(Section 3).  Every algorithm in this library — RMQ and all baselines —
therefore implements the same anytime protocol:

* ``step()`` performs one bounded unit of work (one RMQ iteration, one
  NSGA-II generation, one DP subset batch, ...),
* ``frontier()`` returns the current approximation of the Pareto plan set
  for the full query (possibly empty if the algorithm has not produced any
  complete plan yet, as is the case for the DP schemes before they finish),
* ``run(...)`` drives ``step()`` under a time or iteration budget.

The benchmark harness snapshots ``frontier()`` at checkpoints to produce the
error-versus-time series shown in the paper's figures.

Examples
--------
Every driver in the library funnels through :func:`run_steps`, so budget
semantics are defined in exactly one place:

>>> from repro.core.interface import run_steps
>>> class CountingOptimizer:
...     finished = False
...     def __init__(self):
...         self.steps_taken = 0
...     def step(self):
...         self.steps_taken += 1
>>> optimizer = CountingOptimizer()
>>> run_steps(optimizer, max_steps=5)
5
>>> ticks = []
>>> run_steps(optimizer, max_steps=3,
...           on_tick=lambda steps, elapsed: ticks.append(steps))
3
>>> ticks          # observer runs before every step and once after the last
[0, 1, 2, 3]
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional

from repro.cost.model import MultiObjectiveCostModel
from repro.obs.metrics import Metrics
from repro.plans.plan import Plan
from repro.query.query import Query


class OptimizerStatistics:
    """Counters every optimizer maintains for reporting and tests.

    Historically a plain dataclass of ints; since the observability
    consolidation the counters live in a
    :class:`~repro.obs.metrics.Metrics` registry (``optimizer.steps`` /
    ``optimizer.plans_built``) while this class stays a **thin view**:
    ``statistics.steps += 1`` and friends behave exactly as before, every
    existing caller and test unchanged.  Each statistics object owns a
    private registry by default, so per-optimizer counts stay exact; pass
    ``metrics`` to back several optimizers onto one shared registry.
    """

    __slots__ = ("_metrics", "extra")

    def __init__(
        self,
        steps: int = 0,
        plans_built: int = 0,
        extra: Optional[Dict[str, float]] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self._metrics = metrics if metrics is not None else Metrics()
        if steps:
            self._metrics.set_counter("optimizer.steps", int(steps))
        if plans_built:
            self._metrics.set_counter("optimizer.plans_built", int(plans_built))
        #: Algorithm-specific extra counters (e.g. climb path lengths for RMQ).
        self.extra: Dict[str, float] = dict(extra) if extra else {}

    @property
    def steps(self) -> int:
        """Number of calls to ``step()`` so far."""
        return self._metrics.counter("optimizer.steps")

    @steps.setter
    def steps(self, value: int) -> None:
        self._metrics.set_counter("optimizer.steps", int(value))

    @property
    def plans_built(self) -> int:
        """Total number of plan nodes constructed (scans + joins) so far."""
        return self._metrics.counter("optimizer.plans_built")

    @plans_built.setter
    def plans_built(self, value: int) -> None:
        self._metrics.set_counter("optimizer.plans_built", int(value))

    @property
    def metrics(self) -> Metrics:
        """The backing registry (``optimizer.*`` counter names)."""
        return self._metrics

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OptimizerStatistics):
            return NotImplemented
        return (
            self.steps == other.steps
            and self.plans_built == other.plans_built
            and self.extra == other.extra
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OptimizerStatistics(steps={self.steps}, "
            f"plans_built={self.plans_built}, extra={self.extra!r})"
        )


class AnytimeOptimizer(ABC):
    """Base class of all multi-objective query optimization algorithms."""

    #: Short algorithm name used in benchmark reports (e.g. ``"RMQ"``).
    name: str = "abstract"

    def __init__(self, cost_model: MultiObjectiveCostModel) -> None:
        self._cost_model = cost_model
        self._statistics = OptimizerStatistics()

    # ------------------------------------------------------------ accessors
    @property
    def cost_model(self) -> MultiObjectiveCostModel:
        """The cost model (and plan factory) the optimizer builds plans with."""
        return self._cost_model

    @property
    def query(self) -> Query:
        """The query being optimized."""
        return self._cost_model.query

    @property
    def statistics(self) -> OptimizerStatistics:
        """Work counters accumulated so far."""
        return self._statistics

    # ------------------------------------------------------------- protocol
    @abstractmethod
    def step(self) -> None:
        """Perform one bounded unit of optimization work."""

    @abstractmethod
    def frontier(self) -> List[Plan]:
        """Current approximation of the Pareto plan set for the full query."""

    @property
    def finished(self) -> bool:
        """Whether additional ``step()`` calls can still improve the result.

        Randomized algorithms never finish (they keep refining); exhaustive
        algorithms such as the DP schemes report completion so that drivers
        can stop early.
        """
        return False

    # --------------------------------------------------------------- driver
    def run(
        self,
        time_budget: float | None = None,
        max_steps: int | None = None,
    ) -> List[Plan]:
        """Run ``step()`` until a budget is exhausted and return the frontier.

        Parameters
        ----------
        time_budget:
            Wall-clock budget in seconds (checked between steps).
        max_steps:
            Maximum number of ``step()`` calls.

        At least one of the two budgets must be given.
        """
        if time_budget is None and max_steps is None:
            raise ValueError("need a time budget and/or a step budget")
        run_steps(self, max_steps=max_steps, time_budget=time_budget)
        return self.frontier()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(query={self.query.name!r})"


def run_steps(
    optimizer: AnytimeOptimizer,
    max_steps: int | None = None,
    time_budget: float | None = None,
    on_tick: Callable[[int, float], bool | None] | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> int:
    """The one stepping loop shared by every driver in the library.

    ``AnytimeOptimizer.run``, the checkpointed evaluators in
    ``repro.bench.anytime``, and the benchmark task executor all drive
    ``step()`` through this helper instead of hand-rolling their own
    ``while`` loops, so budget semantics cannot drift apart.

    Parameters
    ----------
    optimizer:
        The optimizer to drive; stepped in place.
    max_steps:
        Maximum number of ``step()`` calls (``0`` is allowed and steps never).
    time_budget:
        Wall-clock budget in seconds, measured with ``clock`` from loop entry
        and checked between steps.
    on_tick:
        Optional observer called at the top of every loop iteration as
        ``on_tick(steps_taken, elapsed)`` — before the finished/budget
        checks, so it always runs exactly once more after the final step,
        whatever ends the run.  Returning a truthy value stops the run
        (used by the anytime evaluator once every checkpoint has been
        snapshotted).
    clock:
        Monotonic time source; injectable for deterministic tests.

    Returns
    -------
    int
        The number of steps actually taken.
    """
    start = clock()
    steps = 0
    while True:
        elapsed = clock() - start
        if on_tick is not None and on_tick(steps, elapsed):
            break
        if optimizer.finished:
            break
        if max_steps is not None and steps >= max_steps:
            break
        if time_budget is not None and elapsed >= time_budget:
            break
        optimizer.step()
        steps += 1
    return steps
