"""Frontier approximation (Algorithm 3, ``ApproximateFrontiers``).

Given a locally Pareto-optimal plan, the approximator walks the plan tree in
post-order and, for every intermediate result the plan uses, combines all
cached partial plans for the children with every applicable operator,
inserting the results into the plan cache under the current approximation
factor α.  Cached plans may come from earlier iterations and may use
different join orders — the cache is the mechanism that shares partial plans
across iterations.

The approximation factor follows the paper's schedule
``α(i) = 25 · 0.99^⌊i/25⌋`` (never below one): coarse early on to explore
many join orders quickly, finer later to exploit the discovered join orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.cost.model import PlanFactory
from repro.core.plan_cache import ArenaPlanCache, PlanCache
from repro.plans.plan import JoinPlan, Plan, ScanPlan

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.cost.batch import BatchCostModel


@dataclass(frozen=True)
class AlphaSchedule:
    """Approximation-precision schedule ``α(i)``.

    The paper's schedule starts at 25 and decays by 1% every 25 iterations.
    Alternative schedules (used by the ablation benchmarks) can be expressed
    with the same three parameters or by the convenience constructors.
    """

    initial: float = 25.0
    decay: float = 0.99
    period: int = 25
    floor: float = 1.0

    def __post_init__(self) -> None:
        if self.initial < 1.0:
            raise ValueError(f"initial alpha must be at least 1, got {self.initial}")
        if not 0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")
        if self.period < 1:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.floor < 1.0:
            raise ValueError(f"alpha floor must be at least 1, got {self.floor}")

    def alpha(self, iteration: int) -> float:
        """Approximation factor for the given (1-based) iteration number."""
        if iteration < 1:
            raise ValueError(f"iteration numbers start at 1, got {iteration}")
        value = self.initial * self.decay ** (iteration // self.period)
        return max(self.floor, value)

    @classmethod
    def paper(cls) -> "AlphaSchedule":
        """The schedule used in the paper: ``25 · 0.99^⌊i/25⌋``."""
        return cls()

    @classmethod
    def constant(cls, alpha: float) -> "AlphaSchedule":
        """A fixed approximation factor (used by ablation experiments)."""
        return cls(initial=alpha, decay=1.0, period=1, floor=alpha)

    @classmethod
    def compressed(cls, factor: float = 100.0) -> "AlphaSchedule":
        """The paper's schedule compressed by ``factor`` in the iteration axis.

        The paper tuned its schedule (1% decay every 25 iterations) for a JIT
        compiled implementation performing thousands of iterations per second.
        A pure-Python reproduction performs roughly ``factor`` times fewer
        iterations in the same wall-clock budget; compressing the schedule by
        the same factor keeps the precision-refinement trajectory aligned with
        wall-clock time instead of the iteration count.  ``compressed(1)`` is
        equivalent to :meth:`paper` up to the flooring of the period.
        """
        if factor < 1:
            raise ValueError(f"compression factor must be at least 1, got {factor}")
        # Paper: multiply alpha by 0.99 every 25 iterations.  Compressed:
        # multiply by 0.99 every 25 / factor iterations, i.e. by
        # 0.99 ** (factor / 25) every iteration.
        return cls(initial=25.0, decay=0.99 ** (factor / 25.0), period=1)


class FrontierApproximator:
    """Approximates Pareto frontiers for the intermediate results of a plan.

    Parameters
    ----------
    factory:
        Plan factory used to build the candidate plans.
    schedule:
        α schedule; defaults to the paper's schedule.
    """

    def __init__(
        self,
        factory: PlanFactory,
        schedule: AlphaSchedule | None = None,
    ) -> None:
        self._factory = factory
        self._schedule = schedule if schedule is not None else AlphaSchedule.paper()
        self._plans_built = 0

    @property
    def schedule(self) -> AlphaSchedule:
        """The α schedule in use."""
        return self._schedule

    @property
    def plans_built(self) -> int:
        """Number of candidate plans constructed so far."""
        return self._plans_built

    # ------------------------------------------------------------ algorithm
    def approximate(self, plan: Plan, cache: PlanCache, iteration: int) -> PlanCache:
        """Run ``ApproximateFrontiers`` for one locally optimal plan.

        Parameters
        ----------
        plan:
            The locally Pareto-optimal plan whose join order (and intermediate
            results) are exploited.
        cache:
            The plan cache shared across iterations; updated in place and also
            returned for convenience.
        iteration:
            The main-loop iteration counter ``i`` (1-based), which determines
            the approximation factor.
        """
        alpha = self._schedule.alpha(iteration)
        self._approximate_node(plan, cache, alpha)
        return cache

    def _approximate_node(self, plan: Plan, cache: PlanCache, alpha: float) -> None:
        if isinstance(plan, JoinPlan):
            self._approximate_node(plan.outer, cache, alpha)
            self._approximate_node(plan.inner, cache, alpha)
            outer_plans = cache.plans(plan.outer.rel)
            inner_plans = cache.plans(plan.inner.rel)
            for outer in outer_plans:
                for inner in inner_plans:
                    for operator in self._factory.join_operators(outer, inner):
                        candidate = self._factory.make_join(outer, inner, operator)
                        self._plans_built += 1
                        cache.insert(candidate, alpha)
        elif isinstance(plan, ScanPlan):
            table_index = plan.table.index
            for operator in self._factory.scan_operators(table_index):
                candidate = self._factory.make_scan(table_index, operator)
                self._plans_built += 1
                cache.insert(candidate, alpha)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown plan type: {type(plan)!r}")


class ArenaFrontierApproximator:
    """``ApproximateFrontiers`` on the columnar engine (handles, not objects).

    The structure mirrors :class:`FrontierApproximator` exactly — post-order
    walk of the locally optimal plan, scans inserted per operator, join
    frontiers combined bottom-up — but the combination step costs the whole
    ``|outer frontier| × |inner frontier| × |join operators|`` cross product
    with one :meth:`~repro.cost.batch.BatchCostModel.join_candidates` call
    and inserts it through the cache's batched pre-filter.  Frontier
    contents, insertion order, and the ``plans_built`` counter are identical
    to the object path.
    """

    def __init__(
        self,
        model: "BatchCostModel",
        schedule: AlphaSchedule | None = None,
    ) -> None:
        self._model = model
        self._arena = model.arena
        self._schedule = schedule if schedule is not None else AlphaSchedule.paper()
        self._plans_built = 0

    @property
    def schedule(self) -> AlphaSchedule:
        """The α schedule in use."""
        return self._schedule

    @property
    def plans_built(self) -> int:
        """Number of candidate plans costed so far."""
        return self._plans_built

    # ------------------------------------------------------------ algorithm
    def approximate(
        self, handle: int, cache: ArenaPlanCache, iteration: int
    ) -> ArenaPlanCache:
        """Run ``ApproximateFrontiers`` for one locally optimal plan handle."""
        alpha = self._schedule.alpha(iteration)
        self._approximate_node(handle, cache, alpha)
        return cache

    def _approximate_node(
        self, handle: int, cache: ArenaPlanCache, alpha: float
    ) -> None:
        arena = self._arena
        if arena.is_join(handle):
            outer, inner = arena.outer(handle), arena.inner(handle)
            self._approximate_node(outer, cache, alpha)
            self._approximate_node(inner, cache, alpha)
            outer_handles = cache.handles(arena.rel(outer))
            inner_handles = cache.handles(arena.rel(inner))
            batch = self._model.join_candidates(outer_handles, inner_handles)
            self._plans_built += batch.size
            cache.insert_candidates(
                arena.rel(handle), batch, outer_handles, inner_handles, alpha
            )
        else:
            table_index = arena.table_index(handle)
            for op_code in self._model.scan_codes(table_index):
                candidate = self._model.make_scan(table_index, op_code)
                self._plans_built += 1
                cache.insert(candidate, alpha)


#: Type of α-schedule callables accepted where a full schedule object is not
#: needed (e.g. quick experiments): maps the iteration number to α.
AlphaFunction = Callable[[int], float]
