"""Nested-span tracing with a zero-overhead disabled path.

A :class:`Tracer` records **spans** (timed, possibly nested regions — one
DP level, one coordinator lease, one ``run_scenario`` phase) and **typed
events** (instants — a lease expiry, a corrupt cache entry) into an
in-memory buffer of Chrome ``trace_event`` records, exportable with
:mod:`repro.obs.export` and loadable in ``chrome://tracing`` / Perfetto.

Design constraints, in order:

* **Zero overhead when disabled.**  The process-global tracer defaults to
  :data:`NULL_TRACER`, whose ``span()`` returns the shared identity
  sentinel :data:`NULL_SPAN` — no span object is allocated, ``__enter__``
  / ``__exit__`` are constant no-ops, and no clock is read.  Hot paths can
  therefore call ``get_tracer().span(...)`` unconditionally.
* **Determinism untouched.**  Tracing only *observes*: it reads a
  monotonic clock (injectable for tests) and appends records; it never
  touches RNG streams, frontier state, or provenance hashes.  Traced and
  untraced runs are bit-identical (pinned by ``tests/test_obs.py``).
* **Thread-safe recording.**  Events are appended to a list (atomic under
  the GIL); export snapshots a copy.

Examples
--------
>>> from repro.obs.tracer import Tracer
>>> ticks = iter(range(100))
>>> tracer = Tracer(clock=lambda: next(ticks) / 1000.0)  # 1 ms per tick
>>> with tracer.span("dp.level", tables=3):
...     tracer.event("dp.level.cached", subsets=0)
>>> [(e["name"], e["ph"]) for e in tracer.events()]
[('dp.level.cached', 'i'), ('dp.level', 'X')]
>>> tracer.events()[1]["dur"]  # 2 ticks inside the span, microseconds
2000.0
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "Tracer",
]


class NullSpan:
    """The disabled span: a shared, reusable, do-nothing context manager.

    :data:`NULL_SPAN` is the only instance; ``NullTracer.span`` returns it
    by identity so the disabled fast path allocates nothing.
    """

    __slots__ = ()

    #: Disabled spans record nothing.
    enabled = False

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def event(self, name: str, **attrs: object) -> None:
        """No-op twin of :meth:`Span.event`."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NULL_SPAN"


#: The shared disabled span (identity sentinel of the disabled fast path).
NULL_SPAN = NullSpan()


class NullTracer:
    """The disabled tracer: every call is a constant no-op.

    ``span()`` returns :data:`NULL_SPAN` by identity (no allocation, no
    clock read); ``event()`` does nothing.  :data:`NULL_TRACER` is the only
    instance ever installed, so ``get_tracer() is NULL_TRACER`` is the
    canonical "is tracing off?" test.
    """

    __slots__ = ()

    #: The flag hot paths may branch on to skip building span attributes.
    enabled = False

    def span(self, name: str, **attrs: object) -> NullSpan:
        """Return the shared no-op span (identity sentinel)."""
        return NULL_SPAN

    def event(self, name: str, **attrs: object) -> None:
        """Discard the event."""

    def events(self) -> List[dict]:
        """A disabled tracer holds no events."""
        return []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NULL_TRACER"


#: The shared disabled tracer, installed by default.
NULL_TRACER = NullTracer()


class Span:
    """One live span of an enabled :class:`Tracer` (a context manager).

    Entering reads the clock; exiting records one Chrome ``"X"``
    (complete) event with microsecond ``ts``/``dur``.  Nesting is implied
    by time containment per thread, exactly how ``chrome://tracing``
    renders flame graphs — no explicit parent pointers are needed.
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._start: Optional[float] = None

    #: Enabled spans record on exit.
    enabled = True

    def __enter__(self) -> "Span":
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        start = self._start if self._start is not None else self._tracer._clock()
        self._tracer._record_complete(self._name, start, self._attrs)
        return False

    def event(self, name: str, **attrs: object) -> None:
        """Record an instant event while the span is open."""
        self._tracer.event(name, **attrs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self._name!r})"


class Tracer:
    """An enabled tracer: records spans and events as Chrome trace records.

    Parameters
    ----------
    clock:
        Monotonic time source in seconds (default ``time.perf_counter``).
        Injectable so tests produce deterministic timestamps.  The first
        reading becomes the trace epoch; all ``ts`` values are microseconds
        since it.

    Records follow the Chrome ``trace_event`` format: spans are phase
    ``"X"`` (complete) events carrying ``dur``; :meth:`event` records are
    phase ``"i"`` (instant) events with thread scope.  Keyword attributes
    become the record's ``args`` (keep them JSON-serializable; the exporter
    stringifies anything else).
    """

    __slots__ = ("_clock", "_epoch", "_events", "_pid")

    #: Enabled tracers record.
    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._events: List[dict] = []
        self._pid = os.getpid()

    # ------------------------------------------------------------ recording
    def _ts(self, instant: float) -> float:
        """Microseconds since the trace epoch."""
        return (instant - self._epoch) * 1e6

    def span(self, name: str, **attrs: object) -> Span:
        """Open a span; use as ``with tracer.span("dp.level", tables=k):``."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Record an instant event."""
        self._events.append(
            {
                "name": name,
                "ph": "i",
                "ts": self._ts(self._clock()),
                "pid": self._pid,
                "tid": threading.get_ident(),
                "s": "t",
                "args": attrs,
            }
        )

    def _record_complete(
        self, name: str, start: float, attrs: Dict[str, object]
    ) -> None:
        end = self._clock()
        self._events.append(
            {
                "name": name,
                "ph": "X",
                "ts": self._ts(start),
                "dur": self._ts(end) - self._ts(start),
                "pid": self._pid,
                "tid": threading.get_ident(),
                "args": attrs,
            }
        )

    # ----------------------------------------------------------- inspection
    def events(self) -> List[dict]:
        """A copy of the recorded events (append order, not span order)."""
        return list(self._events)

    def __len__(self) -> int:
        """Number of recorded events."""
        return len(self._events)

    def clear(self) -> None:
        """Drop all recorded events (the epoch is preserved)."""
        self._events.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(events={len(self._events)})"
