"""``repro.obs`` — zero-overhead-when-disabled tracing and metrics.

Two process-global singletons anchor the layer:

* the **tracer** — :data:`~repro.obs.tracer.NULL_TRACER` by default, so
  every ``get_tracer().span(...)`` on a hot path is a constant no-op
  (identity-sentinel span, no allocation, no clock read); installed as a
  real :class:`~repro.obs.tracer.Tracer` by :func:`enable_tracing`, the
  ``repro trace`` subcommand, or the ``REPRO_TRACE=1`` environment gate;
* the **global metrics registry** — always on (:func:`global_metrics`);
  plain counter bumps are cheap enough to leave unconditional, and
  per-worker snapshots fold into it deterministically.

Timing *histograms* on hot paths are gated on ``get_tracer().enabled`` so
the disabled configuration pays no clock reads.

Examples
--------
>>> import repro.obs as obs
>>> obs.tracing_enabled()
False
>>> obs.get_tracer() is obs.NULL_TRACER
True
>>> tracer = obs.enable_tracing()
>>> with obs.get_tracer().span("dp.level", tables=2):
...     pass
>>> len(tracer.events())
1
>>> obs.disable_tracing() is tracer
True
>>> obs.tracing_enabled()
False
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional, Union

from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
)
from repro.obs.metrics import (
    HISTOGRAM_BUCKETS,
    METRICS_SNAPSHOT_FORMAT,
    Histogram,
    Metrics,
    bucket_bounds,
    bucket_index,
    merge_snapshots,
)
from repro.obs.export import (
    CHROME_TRACE_FORMAT,
    chrome_trace_payload,
    render_metrics_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_snapshot,
)
from repro.obs.dashboard import MetricsPublisher, render_dashboard, tail_dashboard

__all__ = [
    "CHROME_TRACE_FORMAT",
    "HISTOGRAM_BUCKETS",
    "METRICS_SNAPSHOT_FORMAT",
    "Histogram",
    "Metrics",
    "MetricsPublisher",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "Tracer",
    "bucket_bounds",
    "bucket_index",
    "chrome_trace_payload",
    "configure_from_env",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "global_metrics",
    "merge_snapshots",
    "render_dashboard",
    "render_metrics_report",
    "reset_global_metrics",
    "set_tracer",
    "tail_dashboard",
    "tracing_enabled",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_snapshot",
]

#: Environment gate: ``REPRO_TRACE=1`` enables tracing at import of the CLI.
TRACE_ENV_VAR = "REPRO_TRACE"
#: Optional trace output path honored with the env gate.
TRACE_OUT_ENV_VAR = "REPRO_TRACE_OUT"
#: Optional metrics snapshot output path honored with the env gate.
METRICS_OUT_ENV_VAR = "REPRO_METRICS_OUT"

_tracer: Union[Tracer, NullTracer] = NULL_TRACER
_metrics = Metrics()


def get_tracer() -> Union[Tracer, NullTracer]:
    """The process-global tracer (:data:`NULL_TRACER` unless enabled)."""
    return _tracer


def set_tracer(tracer: Union[Tracer, NullTracer]) -> Union[Tracer, NullTracer]:
    """Install ``tracer`` as the global tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def enable_tracing(clock: Callable[[], float] = time.perf_counter) -> Tracer:
    """Install (and return) a fresh enabled :class:`Tracer`."""
    tracer = Tracer(clock=clock)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> Union[Tracer, NullTracer]:
    """Reinstall :data:`NULL_TRACER`; returns the tracer that was active."""
    return set_tracer(NULL_TRACER)


def tracing_enabled() -> bool:
    """True when the global tracer records."""
    return _tracer.enabled


def global_metrics() -> Metrics:
    """The process-global (always-on) metrics registry."""
    return _metrics


def reset_global_metrics() -> Metrics:
    """Clear the global registry (test isolation); returns it."""
    _metrics.clear()
    return _metrics


def configure_from_env(environ: Optional[dict] = None) -> bool:
    """Honor the ``REPRO_TRACE`` gate; returns whether tracing is now on.

    ``REPRO_TRACE`` in ``{"1", "true", "yes", "on"}`` (case-insensitive)
    installs an enabled tracer if one is not already active; any other
    value (or absence) leaves the current tracer untouched — the gate only
    ever turns tracing *on*, so programmatic ``enable_tracing`` calls are
    never reverted by the environment.
    """
    env = environ if environ is not None else os.environ
    flag = str(env.get(TRACE_ENV_VAR, "")).strip().lower()
    if flag in ("1", "true", "yes", "on") and not _tracer.enabled:
        enable_tracing()
    return _tracer.enabled
