"""Exporters: Chrome ``trace_event`` JSON and plain-text metrics reports.

The trace exporter renders a :class:`~repro.obs.tracer.Tracer`'s records
as the JSON object format of the Chrome trace-event specification (a
``traceEvents`` array plus metadata), loadable in ``chrome://tracing`` and
Perfetto.  :func:`validate_chrome_trace` checks a payload against the
subset of the schema the library emits — the CI ``obs-smoke`` job runs it
on a real coordinator trace.

The metrics exporter renders a snapshot dict
(:meth:`~repro.obs.metrics.Metrics.snapshot`) as an aligned text report,
and :func:`write_metrics_snapshot` persists snapshots atomically (temp
file + ``os.replace``) so a concurrently tailing dashboard only ever reads
complete JSON.

Examples
--------
>>> from repro.obs.metrics import Metrics
>>> metrics = Metrics()
>>> _ = metrics.add("cache.hits", 3)
>>> print(render_metrics_report(metrics.snapshot()))
== counters ==
cache.hits                                                    3
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import List, Union

from repro.obs.metrics import METRICS_SNAPSHOT_FORMAT, Histogram
from repro.obs.tracer import Tracer

__all__ = [
    "CHROME_TRACE_FORMAT",
    "chrome_trace_payload",
    "render_metrics_report",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_json_atomic",
    "write_metrics_snapshot",
]

#: Format tag recorded in the trace payload's ``otherData``.
CHROME_TRACE_FORMAT = "repro-chrome-trace-v1"

#: Event phases the library emits: complete spans and instant events.
_EMITTED_PHASES = ("X", "i")


def write_json_atomic(path: str, payload: dict) -> None:
    """Write a JSON file atomically (temp file + ``os.replace``).

    The observability twin of :func:`repro.dist.cache.write_json_atomic`
    (duplicated so :mod:`repro.obs` stays stdlib-only and importable from
    every layer without cycles).
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, default=str)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


# --------------------------------------------------------------- chrome trace
def chrome_trace_payload(tracer: Tracer) -> dict:
    """A tracer's records as a Chrome trace-event JSON object."""
    return {
        "traceEvents": tracer.events(),
        "displayTimeUnit": "ms",
        "otherData": {"format": CHROME_TRACE_FORMAT},
    }


def write_chrome_trace(tracer_or_payload: Union[Tracer, dict], path: str) -> int:
    """Write a Chrome trace JSON file; returns the number of events."""
    if isinstance(tracer_or_payload, Tracer):
        payload = chrome_trace_payload(tracer_or_payload)
    else:
        payload = tracer_or_payload
    write_json_atomic(path, payload)
    return len(payload["traceEvents"])


def validate_chrome_trace(payload: dict) -> List[str]:
    """Validate a trace payload against the emitted trace-event schema.

    Returns a list of human-readable problems (empty = valid).  Checks the
    JSON-object envelope, the per-event required keys of the Chrome
    trace-event format (``name``/``ph``/``ts``/``pid``/``tid``, ``dur`` on
    complete events, scope on instant events), and JSON-serializability of
    the whole payload.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload['traceEvents'] must be a list"]
    for position, event in enumerate(events):
        label = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            errors.append(f"{label}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                errors.append(f"{label}: missing required key {key!r}")
        phase = event.get("ph")
        if phase not in _EMITTED_PHASES:
            errors.append(f"{label}: unexpected phase {phase!r}")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            errors.append(f"{label}: complete event without numeric 'dur'")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append(f"{label}: instant event without a valid scope 's'")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{label}: 'ts' must be numeric")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            errors.append(f"{label}: 'args' must be an object")
    try:
        json.dumps(payload, default=str)
    except (TypeError, ValueError) as exc:
        errors.append(f"payload is not JSON-serializable: {exc}")
    return errors


# --------------------------------------------------------------- metrics text
def _format_histogram_line(name: str, payload: dict) -> str:
    histogram = Histogram.from_dict(payload)
    if histogram.count == 0:
        return f"{name:<48} count=0"
    return (
        f"{name:<48} count={histogram.count} mean={histogram.mean:.6g} "
        f"min={histogram.min:.6g} max={histogram.max:.6g}"
    )


def render_metrics_report(snapshot: dict) -> str:
    """A metrics snapshot as an aligned plain-text report.

    Sections (counters / gauges / histograms) appear only when non-empty;
    names are sorted, so the report is deterministic for a given snapshot.
    """
    if snapshot.get("format") != METRICS_SNAPSHOT_FORMAT:
        raise ValueError(
            f"foreign metrics snapshot (format={snapshot.get('format')!r})"
        )
    lines: List[str] = []
    counters = snapshot["counters"]
    if counters:
        lines.append("== counters ==")
        for name in sorted(counters):
            lines.append(f"{name:<48} {counters[name]:>14}")
    gauges = snapshot["gauges"]
    if gauges:
        if lines:
            lines.append("")
        lines.append("== gauges ==")
        for name in sorted(gauges):
            lines.append(f"{name:<48} {gauges[name]:>14.6g}")
    histograms = snapshot["histograms"]
    if histograms:
        if lines:
            lines.append("")
        lines.append("== histograms ==")
        for name in sorted(histograms):
            lines.append(_format_histogram_line(name, histograms[name]))
    return "\n".join(lines) if lines else "(no metrics recorded)"


def write_metrics_snapshot(path: str, snapshot: dict) -> None:
    """Persist a snapshot atomically (dashboards tail this file)."""
    write_json_atomic(path, snapshot)
