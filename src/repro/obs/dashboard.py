"""A ``repro top``-style live text dashboard over metrics snapshots.

The driver side periodically persists the global registry to a JSON file
(:class:`MetricsPublisher`, atomic writes); ``repro top --file <path>``
tails that file and redraws a compact text dashboard
(:func:`tail_dashboard`).  Rendering is a pure function of one snapshot
(:func:`render_dashboard`), so tests never need a live coordinator.

Examples
--------
>>> from repro.obs.metrics import Metrics
>>> metrics = Metrics()
>>> _ = metrics.add("coordinator.completed", 7)
>>> _ = metrics.add("cache.hits", 3)
>>> _ = metrics.add("cache.misses", 1)
>>> print(render_dashboard(metrics.snapshot()))  # doctest: +ELLIPSIS
repro top — coordinator metrics
===============================
leases      completed=7 scheduled=0 expired=0 split=0 failed=0 inflight=0
cache       hits=3 misses=1 hit-rate=75.0% evictions=0
...
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO, Callable, List, Optional

from repro.obs.metrics import METRICS_SNAPSHOT_FORMAT, Histogram, Metrics
from repro.obs.export import write_metrics_snapshot

__all__ = [
    "MetricsPublisher",
    "render_dashboard",
    "tail_dashboard",
]


def _rate(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole else "n/a"


def _histogram_cell(payload: Optional[dict]) -> str:
    if not payload:
        return "n/a"
    histogram = Histogram.from_dict(payload)
    if histogram.count == 0:
        return "n/a"
    return (
        f"n={histogram.count} mean={histogram.mean:.4g}s "
        f"max={histogram.max:.4g}s"
    )


def render_dashboard(snapshot: dict) -> str:
    """One metrics snapshot as a compact coordinator dashboard (pure).

    Missing names render as zeros, so the dashboard degrades gracefully on
    partial runs (e.g. local backend: no shm rows beyond zeros).
    """
    if snapshot.get("format") != METRICS_SNAPSHOT_FORMAT:
        raise ValueError(
            f"foreign metrics snapshot (format={snapshot.get('format')!r})"
        )
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    histograms = snapshot["histograms"]

    def counter(name: str) -> int:
        return int(counters.get(name, 0))

    scheduled = counter("coordinator.scheduled")
    completed = counter("coordinator.completed")
    inflight = max(0, scheduled - completed - counter("coordinator.failed_leases"))
    hits = counter("cache.hits")
    misses = counter("cache.misses")
    title = "repro top — coordinator metrics"
    lines: List[str] = [title, "=" * len(title)]
    lines.append(
        "leases      "
        f"completed={completed} scheduled={scheduled} "
        f"expired={counter('coordinator.reassignments')} "
        f"split={counter('coordinator.splits')} "
        f"failed={counter('coordinator.failed_leases')} "
        f"inflight={inflight}"
    )
    lines.append(
        "cache       "
        f"hits={hits} misses={misses} hit-rate={_rate(hits, hits + misses)} "
        f"evictions={counter('cache.evictions')}"
    )
    lines.append(
        "cache bytes "
        f"read={counter('cache.bytes_read')} "
        f"written={counter('cache.bytes_written')} "
        f"corrupt={counter('cache.corrupt_entries')}"
    )
    lines.append(
        "dp          "
        f"candidates={counter('dp.candidates')} "
        f"subset-hits={counter('dp.subset_cache_hits')} "
        f"subset-misses={counter('dp.subset_cache_misses')}"
    )
    lines.append(
        "frontier    "
        f"accepted={counter('frontier.accepted')} "
        f"rejected={counter('frontier.rejected')} "
        f"evicted={counter('frontier.evicted')} "
        f"rows={int(gauges.get('frontier.rows', 0))}"
    )
    lines.append(
        "shm         "
        f"flushes={counter('shm.flushes')} "
        f"bytes-published={counter('shm.bytes_published')} "
        f"segment-growths={counter('shm.segment_growths')}"
    )
    lines.append(
        "lease lat   " + _histogram_cell(histograms.get("coordinator.lease_seconds"))
    )
    return "\n".join(lines)


def tail_dashboard(
    path: str,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    stream: Optional[IO[str]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Tail a published snapshot file, redrawing the dashboard each tick.

    ``iterations=None`` runs until interrupted (``repro top``); tests pass
    a small count plus an injected ``sleep``.  Returns the number of
    renders actually drawn (a missing or partially-written file yields a
    waiting line, not a crash).
    """
    out = stream if stream is not None else sys.stdout
    drawn = 0
    tick = 0
    while iterations is None or tick < iterations:
        tick += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except (OSError, ValueError):
            out.write(f"(waiting for metrics at {path})\n")
        else:
            try:
                out.write(render_dashboard(snapshot) + "\n")
                drawn += 1
            except ValueError as exc:
                out.write(f"(unreadable snapshot: {exc})\n")
        out.flush()
        if iterations is None or tick < iterations:
            sleep(interval)
    return drawn


class MetricsPublisher:
    """Periodically persist a registry to a JSON file for ``repro top``.

    A daemon thread snapshots ``metrics`` every ``interval`` seconds and
    writes atomically, so a concurrent tailer only ever reads complete
    JSON.  ``stop()`` performs one final write; usable as a context
    manager.
    """

    def __init__(self, metrics: Metrics, path: str, interval: float = 0.5) -> None:
        import threading

        self._metrics = metrics
        self._path = path
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-publisher", daemon=True
        )
        self.writes = 0

    def _publish(self) -> None:
        write_metrics_snapshot(self._path, self._metrics.snapshot())
        self.writes += 1

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._publish()

    def start(self) -> "MetricsPublisher":
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and write one final, complete snapshot."""
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._publish()

    def __enter__(self) -> "MetricsPublisher":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
