"""The metrics registry: counters, gauges, log-bucket histograms.

A :class:`Metrics` instance is a named registry of three primitives:

* **counters** — monotonically increasing integers (``add``);
* **gauges** — last-written floats (``gauge``), e.g. a frontier's row
  count or a shared-memory segment's size;
* **histograms** — fixed log-scale buckets (``observe``), e.g. per-lease
  latencies.  Bucket boundaries are powers of two of the observed value
  (:func:`bucket_index`), so bucketing is a pure per-observation function:
  merging two histograms is bucket-wise integer addition and therefore
  independent of observation *order* — the property that lets per-worker
  metrics fold deterministically into driver totals across process
  boundaries.

``snapshot()`` renders a registry as a plain JSON-serializable dict;
``merge_snapshot()`` folds one snapshot into a registry (counters add,
gauges keep the maximum, histograms merge bucket-wise).  Snapshots are the
only cross-process interchange — worker processes never share registry
objects, they ship snapshots piggybacked on their results.

Mutation fast paths (``add`` / ``gauge`` / ``observe``) are single dict
operations — atomic under the GIL, deliberately lock-free so hot loops pay
no synchronization.  Writers of the *same* name must be serialized by the
caller when exactness matters across threads (the
:class:`~repro.dist.coordinator.Coordinator` mutates only under its own
lock); ``merge_snapshot`` and ``snapshot`` take the registry lock, so
concurrent merges from worker threads are exact.

Examples
--------
>>> from repro.obs.metrics import Metrics
>>> metrics = Metrics()
>>> metrics.add("cache.hits")
1
>>> metrics.add("cache.hits", 2)
3
>>> metrics.gauge("frontier.rows", 41.0)
>>> metrics.observe("lease.seconds", 0.25)
>>> other = Metrics()
>>> _ = other.add("cache.hits", 10)
>>> other.merge_snapshot(metrics.snapshot())
>>> other.counter("cache.hits")
13
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "HISTOGRAM_BUCKETS",
    "METRICS_SNAPSHOT_FORMAT",
    "Histogram",
    "Metrics",
    "bucket_bounds",
    "bucket_index",
]

#: Version tag of the snapshot dict format.
METRICS_SNAPSHOT_FORMAT = "repro-metrics-v1"

#: Number of fixed histogram buckets.
HISTOGRAM_BUCKETS = 128

#: Bucket ``_BUCKET_OFFSET`` holds values in ``[0.5, 1.0)`` — i.e. the
#: binary exponent 0; the offset centres the representable range so both
#: sub-second latencies and multi-gigabyte sizes bucket without clamping.
_BUCKET_OFFSET = 64


def bucket_index(value: float) -> int:
    """The fixed log-scale bucket of one observation.

    Bucket ``i`` covers ``[2**(i - 65), 2**(i - 64))``; non-positive and
    NaN observations land in bucket 0, ``+inf`` in the last bucket.  Pure
    per-value — bucketing never depends on previous observations, which is
    what makes histogram merges order-independent.

    >>> bucket_index(0.75)  # [0.5, 1) is the exponent-0 bucket
    64
    >>> bucket_index(1.0) - bucket_index(0.5)
    1
    >>> bucket_index(0.0)
    0
    """
    if value != value or value <= 0.0:  # NaN or non-positive
        return 0
    if value == math.inf:
        return HISTOGRAM_BUCKETS - 1
    exponent = math.frexp(value)[1]  # value = m * 2**exponent, m in [0.5, 1)
    return min(HISTOGRAM_BUCKETS - 1, max(0, exponent + _BUCKET_OFFSET))


def bucket_bounds(index: int) -> Tuple[float, float]:
    """``[low, high)`` value bounds of bucket ``index`` (for reports)."""
    if not 0 <= index < HISTOGRAM_BUCKETS:
        raise ValueError(f"bucket index out of range: {index}")
    if index == 0:
        return (0.0, 2.0 ** (1 - _BUCKET_OFFSET))
    return (2.0 ** (index - 1 - _BUCKET_OFFSET), 2.0 ** (index - _BUCKET_OFFSET))


class Histogram:
    """Fixed log-bucket histogram with exact count/sum/min/max side-stats."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Sparse ``bucket index -> observation count``.
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (NaN when empty)."""
        return self.total / self.count if self.count else math.nan

    def to_dict(self) -> dict:
        """JSON-serializable form (bucket keys as strings, sorted)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {
                str(index): self.buckets[index] for index in sorted(self.buckets)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Rebuild from :meth:`to_dict` output."""
        histogram = cls()
        histogram.merge_dict(payload)
        return histogram

    def merge_dict(self, payload: dict) -> None:
        """Fold a serialized histogram in (bucket-wise; order-independent)."""
        count = int(payload["count"])
        if count == 0:
            return
        self.count += count
        self.total += float(payload["sum"])
        low = payload.get("min")
        high = payload.get("max")
        if low is not None and float(low) < self.min:
            self.min = float(low)
        if high is not None and float(high) > self.max:
            self.max = float(high)
        for key, bucket_count in payload["buckets"].items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + int(bucket_count)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram(count={self.count}, mean={self.mean:.6g})"


class Metrics:
    """A named registry of counters, gauges, and histograms (see module doc)."""

    __slots__ = ("_lock", "_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------- mutation
    def add(self, name: str, value: int = 1) -> int:
        """Increment counter ``name`` by ``value``; returns the new total.

        Lock-free (one dict read-modify-write, atomic under the GIL);
        serialize same-name writers externally when cross-thread exactness
        matters.
        """
        total = self._counters.get(name, 0) + value
        self._counters[name] = total
        return total

    def set_counter(self, name: str, value: int) -> None:
        """Set counter ``name`` to an absolute value (thin-view setters)."""
        self._counters[name] = value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins; merges keep the maximum)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms.setdefault(name, Histogram())
        histogram.observe(value)

    # ------------------------------------------------------------ inspection
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never written)."""
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        """Current value of gauge ``name`` (None when never written)."""
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        """Histogram ``name`` (None when never written)."""
        return self._histograms.get(name)

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """All counters whose name starts with ``prefix`` (sorted copy)."""
        return {
            name: self._counters[name]
            for name in sorted(self._counters)
            if name.startswith(prefix)
        }

    def names(self) -> List[str]:
        """All registered names, sorted, across the three primitive kinds."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    # ----------------------------------------------------- snapshot / merge
    def snapshot(self) -> dict:
        """The registry as a plain JSON-serializable dict (sorted keys)."""
        with self._lock:
            return {
                "format": METRICS_SNAPSHOT_FORMAT,
                "counters": {
                    name: self._counters[name] for name in sorted(self._counters)
                },
                "gauges": {
                    name: self._gauges[name] for name in sorted(self._gauges)
                },
                "histograms": {
                    name: self._histograms[name].to_dict()
                    for name in sorted(self._histograms)
                },
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold one snapshot in: counters add, gauges max, histograms merge.

        Deterministic and order-independent over any set of snapshots
        (addition and max are commutative and associative; histogram sums
        accumulate in sorted-name order) — per-worker snapshots fold into
        the same driver totals no matter which worker reports first.
        Raises ``ValueError`` on a foreign payload.
        """
        if snapshot.get("format") != METRICS_SNAPSHOT_FORMAT:
            raise ValueError(
                f"foreign metrics snapshot (format={snapshot.get('format')!r})"
            )
        with self._lock:
            for name in sorted(snapshot["counters"]):
                self._counters[name] = (
                    self._counters.get(name, 0) + int(snapshot["counters"][name])
                )
            for name in sorted(snapshot["gauges"]):
                value = float(snapshot["gauges"][name])
                current = self._gauges.get(name)
                if current is None or value > current:
                    self._gauges[name] = value
            for name in sorted(snapshot["histograms"]):
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms.setdefault(name, Histogram())
                histogram.merge_dict(snapshot["histograms"][name])

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "Metrics":
        """A fresh registry holding exactly one snapshot's contents."""
        metrics = cls()
        metrics.merge_snapshot(snapshot)
        return metrics

    def clear(self) -> None:
        """Drop every registered name."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        """Number of registered names."""
        return len(self.names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Metrics(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold many snapshots into one (a convenience over ``merge_snapshot``)."""
    merged = Metrics()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()
