"""Indexed frontier stores: the tiered storage layer below :class:`ParetoSet`.

The engine's flat storage answers every dominance query with a full scan of
the frontier — ``O(n·d)`` per insert, which is the remaining hot path for
very large frontiers now that the benchmark pipeline can shard arbitrarily
large grids.  This module provides index-accelerated alternatives behind one
:class:`FrontierStore` protocol:

* :class:`FlatFrontier` — linear scan over a contiguous buffer.  The
  reference implementation of the protocol: small, obviously correct, and
  the store the property tests compare the indexed tiers against.
* :class:`SortedFrontier` — rows kept sorted by the first objective in
  blocks of ``~block_size`` rows.  Binary search over the block boundaries
  restricts every query to a *pruning window* (a dominator must have a
  first-objective value no larger than the query's; a dominated row no
  smaller), and per-block bounding costs (componentwise ``ideal`` / ``nadir``
  corners) let whole blocks be skipped or bulk-accepted without touching
  their rows.  The tier of choice for few metrics, where sorting one
  objective localizes most of the dominance structure.
* :class:`NDTreeFrontier` — an ND-tree in the spirit of Jaszkiewicz and
  Lust's ND-Tree update: a binary tree of boxes, each node carrying the
  ``ideal``/``nadir`` corners of its subtree, with leaves splitting on the
  widest objective at the median.  Queries descend only into boxes whose
  bounding costs can interact with the query point; subtree-level
  quick-accept and bulk-collect use the same corner tests.  Preferred for
  four or more metrics, where a single sort key no longer prunes well.

**Semantics are identical across stores.**  Every comparison is the same
IEEE-754 double comparison the flat scan performs (``a <= alpha * b`` and
friends), and the store answers *set* questions whose results do not depend
on scan order: "does any kept row α-dominate this one?" and "which kept rows
does this one dominate?".  :class:`~repro.pareto.engine.ParetoSet` keeps
ownership of the rows themselves (in insertion order) and treats the store
purely as a search index, so frontier contents — values, order, acceptance
and eviction decisions — are bit-identical whichever store is selected; the
property tests in ``tests/test_store.py`` pin this.

Rows containing NaN are *inert* under IEEE comparison semantics (they never
dominate and are never dominated), so the indexed stores keep them in a side
table and never scan them; ``±inf`` rows order and compare normally and stay
in the index.

**Store selection.**  :func:`resolve_store_policy` turns a requested policy
(``None`` → the ``REPRO_FRONTIER_STORE`` environment variable → ``"auto"``)
into one of ``"flat"``, ``"sorted"``, ``"ndtree"`` or ``"auto"``.  The
``auto`` policy keeps small frontiers on the flat path (index maintenance
only pays off beyond :data:`AUTO_ENGAGE_SIZE` rows) and then picks the tier
by metric count via :func:`auto_store_kind` — see the ``Frontier stores``
section of ``docs/API.md``.  Setting ``REPRO_FRONTIER_STORE=flat`` pins every
frontier in the process to the flat path, which is the recommended first step
when debugging a suspected store issue.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Protocol, Sequence, Tuple

import numpy as np

__all__ = [
    "AUTO_ENGAGE_SIZE",
    "SORTED_MAX_METRICS",
    "STORE_KINDS",
    "STORE_POLICIES",
    "FrontierStore",
    "FlatFrontier",
    "SortedFrontier",
    "NDTreeFrontier",
    "auto_store_kind",
    "make_store",
    "resolve_store_policy",
    "sorted_dominance_fold",
    "store_stats",
]

#: Environment variable pinning the store policy for the whole process.
STORE_ENV_VAR = "REPRO_FRONTIER_STORE"

#: Frontier size at which the ``auto`` policy switches from the flat path to
#: an indexed store.  Below this, a single vectorized scan (or the engine's
#: tuple fast path) beats index maintenance.
AUTO_ENGAGE_SIZE = 256

#: Largest metric count for which ``auto`` selects the sorted tier; above it
#: a single sort key prunes poorly and the ND-tree is used instead.
SORTED_MAX_METRICS = 3

#: Concrete store kinds (instantiable via :func:`make_store`).
STORE_KINDS = ("flat", "sorted", "ndtree")

#: Valid store policies (``auto`` resolves to a kind per frontier).
STORE_POLICIES = ("auto",) + STORE_KINDS


def resolve_store_policy(store: str | None) -> str:
    """Resolve a requested store policy to one of :data:`STORE_POLICIES`.

    ``None`` falls back to the ``REPRO_FRONTIER_STORE`` environment variable
    and then to ``"auto"``; explicit values win over the environment.
    """
    if store is None:
        store = os.environ.get(STORE_ENV_VAR) or "auto"
    if store not in STORE_POLICIES:
        raise ValueError(
            f"unknown frontier store {store!r}; expected one of {STORE_POLICIES}"
        )
    return store


def auto_store_kind(num_metrics: int) -> str:
    """Indexed store kind the ``auto`` policy picks for a metric count."""
    return "sorted" if num_metrics <= SORTED_MAX_METRICS else "ndtree"


def make_store(kind: str, num_metrics: int, block_size: int = 128) -> "FrontierStore":
    """Instantiate a concrete frontier store (``auto`` resolved by metrics)."""
    if kind == "auto":
        kind = auto_store_kind(num_metrics)
    if kind == "flat":
        return FlatFrontier(num_metrics)
    if kind == "sorted":
        return SortedFrontier(num_metrics, block_size=block_size)
    if kind == "ndtree":
        return NDTreeFrontier(num_metrics, leaf_size=block_size // 2)
    raise ValueError(f"unknown frontier store {kind!r}; expected one of {STORE_KINDS}")


class FrontierStore(Protocol):
    """Search index over the rows of a Pareto frontier.

    The owner (:class:`~repro.pareto.engine.ParetoSet`) assigns each row a
    stable integer id and keeps the row values; the store answers dominance
    queries over the *current* id set.  A query row containing NaN never
    matches anything (IEEE comparisons are false), and stored NaN rows are
    likewise never reported — implementations may keep them aside.

    ``tag`` arguments mirror the engine's tagged comparisons (the plan
    cache's ``SigBetter``): ``None`` compares against every row, an integer
    restricts matches to rows added with that tag.
    """

    name: str

    def __len__(self) -> int: ...

    def clear(self) -> None:
        """Drop every row."""
        ...

    def bulk_load(
        self, ids: Sequence[int], rows: np.ndarray, tags: Sequence[int]
    ) -> None:
        """Replace the contents with ``(ids, rows, tags)`` in one pass."""
        ...

    def add(self, row_id: int, row: np.ndarray, tag: int) -> None:
        """Index one new row (already accepted by the owner)."""
        ...

    def remove_ids(self, ids: Iterable[int]) -> None:
        """Drop the given row ids (each currently present)."""
        ...

    def any_covering(
        self, row: np.ndarray, alpha: float, tag: int | None
    ) -> bool:
        """Whether some kept row ``m`` (matching ``tag``) has ``m <= alpha*row``."""
        ...

    def dominated_ids(self, row: np.ndarray, tag: int | None) -> List[int]:
        """Ids of kept rows ``m`` (matching ``tag``) with ``row <= m``."""
        ...

    def any_strictly_dominating(self, row: np.ndarray) -> bool:
        """Whether some kept row ``m`` has ``m <= row`` and ``m != row``."""
        ...


def store_stats(store: "FrontierStore") -> Dict[str, int | str]:
    """Diagnostic counters of a frontier store, uniform across tiers.

    Every concrete store keeps a plain-int query counter (incremented on
    ``any_covering`` / ``dominated_ids`` / ``any_strictly_dominating``) and
    exposes it through a ``stats`` property; this helper reads it with a
    graceful fallback for protocol-compatible third-party stores.
    """
    stats = getattr(store, "stats", None)
    if stats is None:
        return {"kind": store.name, "size": len(store)}
    return dict(stats)


def _has_nan(row: np.ndarray) -> bool:
    return bool(np.isnan(row).any())


# ---------------------------------------------------------------------------
# Flat store: the reference implementation of the protocol
# ---------------------------------------------------------------------------
class FlatFrontier:
    """Linear-scan store over a contiguous buffer (the protocol's reference).

    Functionally identical to the scan the engine performs inline on its
    flat path; kept as a store so that the indexed tiers have an oracle to
    be property-tested against at the protocol level.
    """

    name = "flat"

    def __init__(self, num_metrics: int) -> None:
        self._dim = num_metrics
        self._rows = np.empty((8, num_metrics), dtype=np.float64)
        self._tags = np.empty(8, dtype=np.int64)
        self._ids = np.empty(8, dtype=np.int64)
        self._count = 0
        self._queries = 0

    @property
    def stats(self) -> Dict[str, int | str]:
        """Cheap diagnostic counters (see :func:`store_stats`)."""
        return {"kind": self.name, "size": len(self), "queries": self._queries}

    def __len__(self) -> int:
        return self._count

    def clear(self) -> None:
        self._count = 0

    def bulk_load(self, ids, rows, tags) -> None:
        self._count = 0
        n = len(ids)
        if n:
            self._grow(n)
            self._rows[:n] = rows
            self._tags[:n] = np.asarray(list(tags), dtype=np.int64)
            self._ids[:n] = np.asarray(list(ids), dtype=np.int64)
            self._count = n

    def _grow(self, needed: int) -> None:
        capacity = self._rows.shape[0]
        if needed <= capacity:
            return
        capacity = max(capacity * 2, needed)
        rows = np.empty((capacity, self._dim), dtype=np.float64)
        rows[: self._count] = self._rows[: self._count]
        tags = np.empty(capacity, dtype=np.int64)
        tags[: self._count] = self._tags[: self._count]
        ids = np.empty(capacity, dtype=np.int64)
        ids[: self._count] = self._ids[: self._count]
        self._rows, self._tags, self._ids = rows, tags, ids

    def add(self, row_id: int, row: np.ndarray, tag: int) -> None:
        self._grow(self._count + 1)
        self._rows[self._count] = row
        self._tags[self._count] = tag
        self._ids[self._count] = row_id
        self._count += 1

    def remove_ids(self, ids: Iterable[int]) -> None:
        drop = np.isin(self._ids[: self._count], np.asarray(list(ids), dtype=np.int64))
        keep = ~drop
        kept = int(keep.sum())
        self._rows[:kept] = self._rows[: self._count][keep]
        self._tags[:kept] = self._tags[: self._count][keep]
        self._ids[:kept] = self._ids[: self._count][keep]
        self._count = kept

    def any_covering(self, row, alpha, tag) -> bool:
        self._queries += 1
        if not self._count:
            return False
        mask = np.all(self._rows[: self._count] <= alpha * row, axis=1)
        if tag is not None:
            mask &= self._tags[: self._count] == tag
        return bool(mask.any())

    def dominated_ids(self, row, tag) -> List[int]:
        self._queries += 1
        if not self._count:
            return []
        mask = np.all(row <= self._rows[: self._count], axis=1)
        if tag is not None:
            mask &= self._tags[: self._count] == tag
        return self._ids[: self._count][mask].tolist()

    def any_strictly_dominating(self, row) -> bool:
        self._queries += 1
        if not self._count:
            return False
        active = self._rows[: self._count]
        mask = np.all(active <= row, axis=1) & np.any(active < row, axis=1)
        return bool(mask.any())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlatFrontier(size={self._count}, dim={self._dim})"


# ---------------------------------------------------------------------------
# Sorted store: blocked first-objective order + per-block bounding costs
# ---------------------------------------------------------------------------
class _SortedBlock:
    """One run of rows, sorted by first objective, with bounding corners."""

    __slots__ = ("rows", "tags", "ids", "count", "ideal", "nadir", "pos")

    def __init__(self, capacity: int, dim: int, pos: int) -> None:
        self.rows = np.empty((capacity, dim), dtype=np.float64)
        self.tags = np.empty(capacity, dtype=np.int64)
        self.ids = np.empty(capacity, dtype=np.int64)
        self.count = 0
        self.ideal = np.empty(dim, dtype=np.float64)
        self.nadir = np.empty(dim, dtype=np.float64)
        self.pos = pos  # index of this block in the store's block list

    def recompute_bounds(self) -> None:
        active = self.rows[: self.count]
        self.ideal = np.fmin.reduce(active, axis=0)
        self.nadir = np.fmax.reduce(active, axis=0)


class SortedFrontier:
    """Blocked sorted-array store (first-objective order, windowed pruning).

    Rows live in blocks of at most ``2 * block_size`` rows; blocks partition
    the frontier in first-objective order (block value ranges are sorted and
    non-overlapping).  Per-block summaries — the block's first-objective
    range and its componentwise ``ideal``/``nadir`` corners — are kept in
    contiguous arrays, so a query is: one binary search to bound the window
    of blocks that can interact, one vectorized pass over the window's
    summaries to select candidate blocks, then a scan of (typically very
    few) candidate blocks.

    The pruning rules follow from the corner definitions: a block can
    contain a row α-dominating ``q`` only if ``ideal <= alpha*q``
    componentwise, and if ``nadir <= alpha*q`` *every* row in the block does;
    dually a block can contain rows dominated by ``q`` only if ``q <= nadir``,
    and if ``q <= ideal`` all of them are.
    """

    name = "sorted"

    def __init__(self, num_metrics: int, block_size: int = 128) -> None:
        if block_size < 2:
            raise ValueError(f"block size must be at least 2, got {block_size}")
        self._queries = 0
        self._dim = num_metrics
        self._block = block_size
        self._capacity = 2 * block_size
        self._blocks: List[_SortedBlock] = []
        self._block_of: Dict[int, _SortedBlock] = {}
        self._inert: Dict[int, None] = {}  # rows containing NaN (never interact)
        # Contiguous per-block summaries (first _nb entries are live).
        cap = 8
        self._sum_lo = np.empty(cap, dtype=np.float64)
        self._sum_hi = np.empty(cap, dtype=np.float64)
        self._sum_ideal = np.empty((cap, num_metrics), dtype=np.float64)
        self._sum_nadir = np.empty((cap, num_metrics), dtype=np.float64)
        self._nb = 0
        self._len = 0

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return self._len

    @property
    def num_blocks(self) -> int:
        """Number of live blocks (diagnostic)."""
        return self._nb

    @property
    def stats(self) -> Dict[str, int | str]:
        """Cheap diagnostic counters (see :func:`store_stats`)."""
        return {
            "kind": self.name,
            "size": len(self),
            "queries": self._queries,
            "blocks": self._nb,
        }

    def clear(self) -> None:
        self._blocks = []
        self._block_of = {}
        self._inert = {}
        self._nb = 0
        self._len = 0

    # ------------------------------------------------------------- summaries
    def _grow_summaries(self, needed: int) -> None:
        cap = self._sum_lo.shape[0]
        if needed <= cap:
            return
        cap = max(cap * 2, needed)
        for attr in ("_sum_lo", "_sum_hi"):
            fresh = np.empty(cap, dtype=np.float64)
            fresh[: self._nb] = getattr(self, attr)[: self._nb]
            setattr(self, attr, fresh)
        for attr in ("_sum_ideal", "_sum_nadir"):
            fresh = np.empty((cap, self._dim), dtype=np.float64)
            fresh[: self._nb] = getattr(self, attr)[: self._nb]
            setattr(self, attr, fresh)

    def _write_summary(self, blk: _SortedBlock) -> None:
        i = blk.pos
        self._sum_lo[i] = blk.rows[0, 0]
        self._sum_hi[i] = blk.rows[blk.count - 1, 0]
        self._sum_ideal[i] = blk.ideal
        self._sum_nadir[i] = blk.nadir

    def _insert_block(self, blk: _SortedBlock, at: int) -> None:
        self._grow_summaries(self._nb + 1)
        nb = self._nb
        for arr in (self._sum_lo, self._sum_hi, self._sum_ideal, self._sum_nadir):
            arr[at + 1 : nb + 1] = arr[at:nb]
        self._blocks.insert(at, blk)
        self._nb = nb + 1
        # Reassign positions from the insertion point (cheap python loop;
        # splits are amortized over ~block_size inserts).
        for index in range(at, self._nb):
            self._blocks[index].pos = index
        self._write_summary(blk)

    def _remove_block(self, blk: _SortedBlock) -> None:
        at = blk.pos
        nb = self._nb
        for arr in (self._sum_lo, self._sum_hi, self._sum_ideal, self._sum_nadir):
            arr[at : nb - 1] = arr[at + 1 : nb]
        del self._blocks[at]
        self._nb = nb - 1
        for index in range(at, self._nb):
            self._blocks[index].pos = index

    # -------------------------------------------------------------- updates
    def bulk_load(self, ids, rows, tags) -> None:
        self.clear()
        rows = np.asarray(rows, dtype=np.float64).reshape(len(ids), self._dim)
        ids_arr = np.asarray(list(ids), dtype=np.int64)
        tags_arr = np.asarray(list(tags), dtype=np.int64)
        self._len = int(ids_arr.shape[0])
        if not self._len:
            return
        if self._dim:
            nan_mask = np.isnan(rows).any(axis=1)
        else:
            nan_mask = np.zeros(self._len, dtype=bool)
        for row_id in ids_arr[nan_mask].tolist():
            self._inert[row_id] = None
        clean = ~nan_mask
        rows, ids_arr, tags_arr = rows[clean], ids_arr[clean], tags_arr[clean]
        order = (
            np.argsort(rows[:, 0], kind="stable")
            if self._dim
            else np.arange(rows.shape[0])
        )
        rows, ids_arr, tags_arr = rows[order], ids_arr[order], tags_arr[order]
        total = rows.shape[0]
        for start in range(0, total, self._block):
            stop = min(start + self._block, total)
            blk = _SortedBlock(self._capacity, self._dim, len(self._blocks))
            count = stop - start
            blk.rows[:count] = rows[start:stop]
            blk.tags[:count] = tags_arr[start:stop]
            blk.ids[:count] = ids_arr[start:stop]
            blk.count = count
            blk.recompute_bounds()
            self._blocks.append(blk)
            for row_id in ids_arr[start:stop].tolist():
                self._block_of[row_id] = blk
        self._nb = len(self._blocks)
        self._grow_summaries(self._nb)
        for blk in self._blocks:
            self._write_summary(blk)

    def add(self, row_id: int, row: np.ndarray, tag: int) -> None:
        if _has_nan(row):
            self._inert[row_id] = None
            self._len += 1
            return
        self._len += 1
        if not self._nb:
            blk = _SortedBlock(self._capacity, self._dim, 0)
            blk.rows[0] = row
            blk.tags[0] = tag
            blk.ids[0] = row_id
            blk.count = 1
            blk.ideal = row.copy()
            blk.nadir = row.copy()
            self._blocks.append(blk)
            self._nb = 1
            self._grow_summaries(1)
            self._write_summary(blk)
            self._block_of[row_id] = blk
            return
        first = row[0]
        at = int(np.searchsorted(self._sum_lo[: self._nb], first, side="right")) - 1
        if at < 0:
            at = 0
        blk = self._blocks[at]
        count = blk.count
        pos = int(np.searchsorted(blk.rows[:count, 0], first, side="right"))
        blk.rows[pos + 1 : count + 1] = blk.rows[pos:count]
        blk.tags[pos + 1 : count + 1] = blk.tags[pos:count]
        blk.ids[pos + 1 : count + 1] = blk.ids[pos:count]
        blk.rows[pos] = row
        blk.tags[pos] = tag
        blk.ids[pos] = row_id
        blk.count = count + 1
        np.fmin(blk.ideal, row, out=blk.ideal)
        np.fmax(blk.nadir, row, out=blk.nadir)
        self._block_of[row_id] = blk
        if blk.count == self._capacity:
            self._split(blk)
        else:
            self._write_summary(blk)

    def _split(self, blk: _SortedBlock) -> None:
        mid = blk.count // 2
        right = _SortedBlock(self._capacity, self._dim, blk.pos + 1)
        moved = blk.count - mid
        right.rows[:moved] = blk.rows[mid : blk.count]
        right.tags[:moved] = blk.tags[mid : blk.count]
        right.ids[:moved] = blk.ids[mid : blk.count]
        right.count = moved
        right.recompute_bounds()
        for row_id in right.ids[:moved].tolist():
            self._block_of[row_id] = right
        blk.count = mid
        blk.recompute_bounds()
        self._write_summary(blk)
        self._insert_block(right, blk.pos + 1)

    def remove_ids(self, ids: Iterable[int]) -> None:
        touched: Dict[int, Tuple[_SortedBlock, List[int]]] = {}
        for row_id in ids:
            if row_id in self._inert:
                del self._inert[row_id]
                self._len -= 1
                continue
            blk = self._block_of.pop(row_id)
            touched.setdefault(id(blk), (blk, []))[1].append(row_id)
        for blk, row_ids in touched.values():
            count = blk.count
            keep = ~np.isin(blk.ids[:count], np.asarray(row_ids, dtype=np.int64))
            kept = int(keep.sum())
            blk.rows[:kept] = blk.rows[:count][keep]
            blk.tags[:kept] = blk.tags[:count][keep]
            blk.ids[:kept] = blk.ids[:count][keep]
            blk.count = kept
            self._len -= count - kept
            if kept == 0:
                self._remove_block(blk)
            else:
                blk.recompute_bounds()
                self._write_summary(blk)

    # ------------------------------------------------------------- queries
    def any_covering(self, row, alpha, tag) -> bool:
        self._queries += 1
        if not self._nb or _has_nan(row):
            return False
        bound = alpha * row
        # A dominator m has m[0] <= bound[0]; blocks starting above that
        # first-objective value cannot contain one.
        window = int(
            np.searchsorted(self._sum_lo[: self._nb], bound[0], side="right")
        )
        if not window:
            return False
        gate = np.all(self._sum_ideal[:window] <= bound, axis=1)
        if not gate.any():
            return False
        if tag is None:
            sure = gate & np.all(self._sum_nadir[:window] <= bound, axis=1)
            if sure.any():
                return True
        for index in np.flatnonzero(gate).tolist():
            blk = self._blocks[index]
            mask = np.all(blk.rows[: blk.count] <= bound, axis=1)
            if tag is not None:
                mask &= blk.tags[: blk.count] == tag
            if mask.any():
                return True
        return False

    def dominated_ids(self, row, tag) -> List[int]:
        self._queries += 1
        if not self._nb or _has_nan(row):
            return []
        # A dominated row m has m[0] >= row[0]; blocks ending below that
        # cannot contain one.
        start = int(np.searchsorted(self._sum_hi[: self._nb], row[0], side="left"))
        if start >= self._nb:
            return []
        gate = np.all(row <= self._sum_nadir[start : self._nb], axis=1)
        if not gate.any():
            return []
        out: List[int] = []
        for offset in np.flatnonzero(gate).tolist():
            blk = self._blocks[start + offset]
            count = blk.count
            if tag is None and bool(np.all(row <= blk.ideal)):
                out.extend(blk.ids[:count].tolist())
                continue
            mask = np.all(row <= blk.rows[:count], axis=1)
            if tag is not None:
                mask &= blk.tags[:count] == tag
            if mask.any():
                out.extend(blk.ids[:count][mask].tolist())
        return out

    def any_strictly_dominating(self, row) -> bool:
        self._queries += 1
        if not self._nb or _has_nan(row):
            return False
        window = int(np.searchsorted(self._sum_lo[: self._nb], row[0], side="right"))
        if not window:
            return False
        gate = np.all(self._sum_ideal[:window] <= row, axis=1)
        if not gate.any():
            return False
        sure = (
            gate
            & np.all(self._sum_nadir[:window] <= row, axis=1)
            & np.any(self._sum_ideal[:window] < row, axis=1)
        )
        if sure.any():
            return True
        for index in np.flatnonzero(gate).tolist():
            blk = self._blocks[index]
            active = blk.rows[: blk.count]
            mask = np.all(active <= row, axis=1) & np.any(active < row, axis=1)
            if mask.any():
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SortedFrontier(size={self._len}, dim={self._dim}, blocks={self._nb})"
        )


# ---------------------------------------------------------------------------
# ND-tree store: bounding-cost tree with median splits
# ---------------------------------------------------------------------------
class _NDNode:
    """One ND-tree node: a leaf bucket of rows or an internal split."""

    __slots__ = (
        "parent",
        "children",
        "split_dim",
        "split_value",
        "rows",
        "tags",
        "ids",
        "count",
        "ideal",
        "nadir",
    )

    def __init__(self, parent: "_NDNode | None", capacity: int, dim: int) -> None:
        self.parent = parent
        self.children: List[_NDNode] | None = None
        self.split_dim = -1
        self.split_value = 0.0
        self.rows = np.empty((capacity, dim), dtype=np.float64)
        self.tags = np.empty(capacity, dtype=np.int64)
        self.ids = np.empty(capacity, dtype=np.int64)
        self.count = 0
        self.ideal = np.empty(dim, dtype=np.float64)
        self.nadir = np.empty(dim, dtype=np.float64)

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def recompute_leaf_bounds(self) -> None:
        active = self.rows[: self.count]
        self.ideal = np.fmin.reduce(active, axis=0)
        self.nadir = np.fmax.reduce(active, axis=0)

    def recompute_inner_bounds(self) -> None:
        assert self.children
        self.ideal = np.fmin.reduce([child.ideal for child in self.children], axis=0)
        self.nadir = np.fmax.reduce([child.nadir for child in self.children], axis=0)


class NDTreeFrontier:
    """ND-tree store: a binary tree of bounding boxes over the frontier.

    Every node carries the ``ideal``/``nadir`` corners of its subtree
    (maintained exactly under insertion and recomputed bottom-up after
    removals).  Queries prune with the same corner tests as the sorted
    store's blocks, but hierarchically: a subtree is skipped the moment its
    box cannot interact with the query row, bulk-accepted when its ``nadir``
    already answers the query, and bulk-collected when the query row
    dominates its ``ideal``.  Leaves split deterministically on the widest
    objective at the median, so tree shape — and therefore every result —
    is a pure function of the insertion sequence.
    """

    name = "ndtree"

    def __init__(self, num_metrics: int, leaf_size: int = 64) -> None:
        if leaf_size < 2:
            raise ValueError(f"leaf size must be at least 2, got {leaf_size}")
        self._dim = num_metrics
        self._leaf = leaf_size
        self._root: _NDNode | None = None
        self._leaf_of: Dict[int, _NDNode] = {}
        self._inert: Dict[int, None] = {}
        self._len = 0
        self._queries = 0

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return self._len

    @property
    def stats(self) -> Dict[str, int | str]:
        """Cheap diagnostic counters (see :func:`store_stats`)."""
        return {"kind": self.name, "size": len(self), "queries": self._queries}

    def clear(self) -> None:
        self._root = None
        self._leaf_of = {}
        self._inert = {}
        self._len = 0

    # -------------------------------------------------------------- updates
    def bulk_load(self, ids, rows, tags) -> None:
        self.clear()
        rows = np.asarray(rows, dtype=np.float64).reshape(len(ids), self._dim)
        for row_id, row, tag in zip(ids, rows, tags):
            self.add(int(row_id), row, int(tag))

    def add(self, row_id: int, row: np.ndarray, tag: int) -> None:
        if _has_nan(row):
            self._inert[row_id] = None
            self._len += 1
            return
        self._len += 1
        if self._root is None:
            node = _NDNode(None, self._leaf, self._dim)
            self._root = node
            node.ideal = row.copy()
            node.nadir = row.copy()
        else:
            node = self._root
            while not node.is_leaf:
                np.fmin(node.ideal, row, out=node.ideal)
                np.fmax(node.nadir, row, out=node.nadir)
                assert node.children is not None
                node = (
                    node.children[0]
                    if row[node.split_dim] <= node.split_value
                    else node.children[1]
                )
            np.fmin(node.ideal, row, out=node.ideal)
            np.fmax(node.nadir, row, out=node.nadir)
        if node.count == node.rows.shape[0]:
            self._grow_or_split(node)
            # Re-descend from the (possibly now internal) node.
            while not node.is_leaf:
                assert node.children is not None
                node = (
                    node.children[0]
                    if row[node.split_dim] <= node.split_value
                    else node.children[1]
                )
        node.rows[node.count] = row
        node.tags[node.count] = tag
        node.ids[node.count] = row_id
        node.count += 1
        np.fmin(node.ideal, row, out=node.ideal)
        np.fmax(node.nadir, row, out=node.nadir)
        self._leaf_of[row_id] = node

    def _grow_or_split(self, leaf: _NDNode) -> None:
        """Split a full leaf at the median of its widest objective.

        When every objective is constant over the leaf (possible with
        equal-cost rows under different tags) the leaf cannot be split and
        its bucket is grown instead.
        """
        count = leaf.count
        with np.errstate(invalid="ignore"):
            # inf - inf (a constant-infinite objective) yields NaN: such a
            # dimension cannot discriminate, so rank it last.
            spread = leaf.nadir - leaf.ideal
        spread = np.where(np.isnan(spread), -np.inf, spread)
        for dim in np.argsort(-spread, kind="stable").tolist():
            column = leaf.rows[:count, dim]
            with np.errstate(invalid="ignore"):
                split_value = float(np.median(column))
            left_mask = column <= split_value
            left_count = int(left_mask.sum())
            if left_count == 0 or left_count == count:
                continue
            left = _NDNode(leaf, count, self._dim)
            right = _NDNode(leaf, count, self._dim)
            for child, mask in ((left, left_mask), (right, ~left_mask)):
                child_count = int(mask.sum())
                child.rows[:child_count] = leaf.rows[:count][mask]
                child.tags[:child_count] = leaf.tags[:count][mask]
                child.ids[:child_count] = leaf.ids[:count][mask]
                child.count = child_count
                child.recompute_leaf_bounds()
                for row_id in child.ids[:child_count].tolist():
                    self._leaf_of[row_id] = child
            leaf.children = [left, right]
            leaf.split_dim = int(dim)
            leaf.split_value = split_value
            leaf.rows = np.empty((0, self._dim), dtype=np.float64)
            leaf.tags = np.empty(0, dtype=np.int64)
            leaf.ids = np.empty(0, dtype=np.int64)
            leaf.count = 0
            return
        # Degenerate: grow the bucket in place.
        capacity = max(2 * count, 2)
        fresh_rows = np.empty((capacity, self._dim), dtype=np.float64)
        fresh_rows[:count] = leaf.rows[:count]
        leaf.rows = fresh_rows
        for attr in ("tags", "ids"):
            fresh_int = np.empty(capacity, dtype=np.int64)
            fresh_int[:count] = getattr(leaf, attr)[:count]
            setattr(leaf, attr, fresh_int)

    def remove_ids(self, ids: Iterable[int]) -> None:
        touched: Dict[int, Tuple[_NDNode, List[int]]] = {}
        for row_id in ids:
            if row_id in self._inert:
                del self._inert[row_id]
                self._len -= 1
                continue
            leaf = self._leaf_of.pop(row_id)
            touched.setdefault(id(leaf), (leaf, []))[1].append(row_id)
        for leaf, row_ids in touched.values():
            count = leaf.count
            keep = ~np.isin(leaf.ids[:count], np.asarray(row_ids, dtype=np.int64))
            kept = int(keep.sum())
            leaf.rows[:kept] = leaf.rows[:count][keep]
            leaf.tags[:kept] = leaf.tags[:count][keep]
            leaf.ids[:kept] = leaf.ids[:count][keep]
            leaf.count = kept
            self._len -= count - kept
            if kept == 0:
                self._detach(leaf)
            else:
                leaf.recompute_leaf_bounds()
                self._propagate_bounds(leaf.parent)

    def _detach(self, leaf: _NDNode) -> None:
        parent = leaf.parent
        if parent is None:
            self._root = None
            return
        assert parent.children is not None
        sibling = parent.children[0] if parent.children[1] is leaf else parent.children[1]
        grandparent = parent.parent
        sibling.parent = grandparent
        if grandparent is None:
            self._root = sibling
        else:
            assert grandparent.children is not None
            grandparent.children[
                grandparent.children.index(parent)
            ] = sibling
        # Re-point leaf bookkeeping below the hoisted sibling only if it is a
        # leaf (its descendants' parents are unchanged).
        if sibling.is_leaf:
            for row_id in sibling.ids[: sibling.count].tolist():
                self._leaf_of[row_id] = sibling
        self._propagate_bounds(grandparent)

    def _propagate_bounds(self, node: _NDNode | None) -> None:
        while node is not None:
            node.recompute_inner_bounds()
            node = node.parent

    # ------------------------------------------------------------- queries
    def any_covering(self, row, alpha, tag) -> bool:
        self._queries += 1
        root = self._root
        if root is None or _has_nan(row):
            return False
        bound = alpha * row
        stack = [root]
        while stack:
            node = stack.pop()
            if not bool(np.all(node.ideal <= bound)):
                continue
            if tag is None and bool(np.all(node.nadir <= bound)):
                return True
            if node.is_leaf:
                mask = np.all(node.rows[: node.count] <= bound, axis=1)
                if tag is not None:
                    mask &= node.tags[: node.count] == tag
                if mask.any():
                    return True
            else:
                assert node.children is not None
                stack.extend(node.children)
        return False

    def dominated_ids(self, row, tag) -> List[int]:
        self._queries += 1
        root = self._root
        if root is None or _has_nan(row):
            return []
        out: List[int] = []
        stack = [root]
        while stack:
            node = stack.pop()
            if not bool(np.all(row <= node.nadir)):
                continue
            if tag is None and bool(np.all(row <= node.ideal)):
                self._collect(node, out)
                continue
            if node.is_leaf:
                count = node.count
                mask = np.all(row <= node.rows[:count], axis=1)
                if tag is not None:
                    mask &= node.tags[:count] == tag
                if mask.any():
                    out.extend(node.ids[:count][mask].tolist())
            else:
                assert node.children is not None
                stack.extend(node.children)
        return out

    def _collect(self, node: _NDNode, out: List[int]) -> None:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                out.extend(current.ids[: current.count].tolist())
            else:
                assert current.children is not None
                stack.extend(current.children)

    def any_strictly_dominating(self, row) -> bool:
        self._queries += 1
        root = self._root
        if root is None or _has_nan(row):
            return False
        stack = [root]
        while stack:
            node = stack.pop()
            if not bool(np.all(node.ideal <= row)):
                continue
            if bool(np.all(node.nadir <= row)) and bool(np.any(node.ideal < row)):
                return True
            if node.is_leaf:
                active = node.rows[: node.count]
                mask = np.all(active <= row, axis=1) & np.any(active < row, axis=1)
                if mask.any():
                    return True
            else:
                assert node.children is not None
                stack.extend(node.children)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NDTreeFrontier(size={self._len}, dim={self._dim})"


# ---------------------------------------------------------------------------
# Sorted-window dominance fold (ParetoClimber's pruning under indexed policy)
# ---------------------------------------------------------------------------
def sorted_dominance_fold(matrix: np.ndarray) -> int:
    """Index selected by the sequential strict-dominance fold, via windows.

    Same result as :func:`repro.pareto.engine.dominance_fold` — the
    sequential "replace the incumbent with the first later row that strictly
    dominates it" scan — but each search is restricted to the sorted
    first-objective window ``row[0] <= incumbent[0]`` (a strict dominator
    can never be worse on any objective).  The window only shrinks as the
    incumbent improves, so adversarially this does no more comparisons than
    the plain vectorized fold and typically far fewer.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    if n == 0:
        raise ValueError("dominance fold needs at least one row")
    order = np.argsort(matrix[:, 0], kind="stable") if matrix.shape[1] else None
    if order is None:
        return 0
    sorted_first = matrix[order, 0]
    incumbent = 0
    position = 1
    while position < n:
        current = matrix[incumbent]
        window = int(np.searchsorted(sorted_first, current[0], side="right"))
        candidates = order[:window]
        candidates = candidates[candidates >= position]
        if candidates.size == 0:
            break
        rows = matrix[candidates]
        improving = np.all(rows <= current, axis=1) & np.any(rows < current, axis=1)
        hits = candidates[improving]
        if hits.size == 0:
            break
        incumbent = int(hits.min())
        position = incumbent + 1
    return incumbent
