"""Approximation-error indicator.

The paper judges a plan set by "the lowest approximation factor α such that
the produced plan set is an α-approximate Pareto plan set" (Section 6.1),
equivalent to the multiplicative ε indicator of Zitzler and Thiele with
``α = 1 + ε``.

Given a produced set ``A`` and a reference frontier ``R``::

    error(A, R) = max over r in R of  min over a in A of  max_i a_i / r_i

i.e. for each reference point, the best produced plan covering it is found,
and the worst such coverage factor over all reference points is reported.
``error = 1`` means the produced set covers the whole reference frontier.
An empty produced set yields ``float('inf')`` (matching how the paper treats
algorithms that returned no plans within the time budget).

The live implementation evaluates the double loop as one batched NumPy
reduction (:func:`repro.pareto.engine.approximation_error_matrix`);
:func:`approximation_error_scalar` keeps the original pure-Python version as
the reference the engine is property-tested against — the two are
bit-identical on equal inputs, not merely close.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.cost.vector import RATIO_FLOOR, max_ratio
from repro.pareto import engine
from repro.pareto.dominance import approx_dominates
from repro.plans.plan import Plan


def approximation_error(
    produced: Iterable[Sequence[float]],
    reference: Iterable[Sequence[float]],
) -> float:
    """Lowest α such that ``produced`` α-approximates ``reference``.

    Parameters
    ----------
    produced:
        Cost vectors of the plan set under evaluation.
    reference:
        Cost vectors of the reference (true or best-known) Pareto frontier.

    Returns
    -------
    float
        The approximation error (≥ 1), or ``inf`` when ``produced`` is empty
        while ``reference`` is not.

    Raises
    ------
    ValueError
        If the reference frontier is empty.
    """
    produced_list: List[Tuple[float, ...]] = [tuple(c) for c in produced]
    reference_list: List[Tuple[float, ...]] = [tuple(c) for c in reference]
    if not reference_list:
        raise ValueError("the reference frontier must not be empty")
    if not produced_list:
        return float("inf")
    produced_matrix = engine.as_cost_matrix(produced_list)
    reference_matrix = engine.as_cost_matrix(reference_list)
    return engine.approximation_error_matrix(
        produced_matrix, reference_matrix, ratio_floor=RATIO_FLOOR
    )


def approximation_error_scalar(
    produced: Iterable[Sequence[float]],
    reference: Iterable[Sequence[float]],
) -> float:
    """Pure-Python reference implementation of :func:`approximation_error`."""
    produced_list: List[Tuple[float, ...]] = [tuple(c) for c in produced]
    reference_list: List[Tuple[float, ...]] = [tuple(c) for c in reference]
    if not reference_list:
        raise ValueError("the reference frontier must not be empty")
    if not produced_list:
        return float("inf")
    worst = 1.0
    for reference_cost in reference_list:
        best_cover = min(
            max_ratio(produced_cost, reference_cost) for produced_cost in produced_list
        )
        if best_cover > worst:
            worst = best_cover
    return worst


def approximation_error_of_plans(
    produced: Iterable[Plan], reference: Iterable[Sequence[float]]
) -> float:
    """Convenience wrapper extracting cost vectors from plans."""
    return approximation_error((plan.cost for plan in produced), reference)


def is_alpha_approximation(
    produced: Iterable[Sequence[float]],
    reference: Iterable[Sequence[float]],
    alpha: float,
) -> bool:
    """Return whether every reference point is α-dominated by a produced point."""
    if alpha < 1.0:
        raise ValueError(f"approximation factor must be at least 1, got {alpha}")
    produced_list = [tuple(c) for c in produced]
    reference_list = [tuple(c) for c in reference]
    if not reference_list:
        raise ValueError("the reference frontier must not be empty")
    if not produced_list:
        return False
    produced_matrix = engine.as_cost_matrix(produced_list)
    reference_matrix = engine.as_cost_matrix(reference_list)
    if produced_matrix.shape[1] != reference_matrix.shape[1]:
        raise ValueError("cost vectors must have the same length")
    return engine.alpha_coverage(produced_matrix, reference_matrix, alpha)


def is_alpha_approximation_scalar(
    produced: Iterable[Sequence[float]],
    reference: Iterable[Sequence[float]],
    alpha: float,
) -> bool:
    """Pure-Python reference implementation of :func:`is_alpha_approximation`."""
    produced_list = [tuple(c) for c in produced]
    reference_list = [tuple(c) for c in reference]
    if not reference_list:
        raise ValueError("the reference frontier must not be empty")
    if not produced_list:
        return False
    return all(
        any(approx_dominates(p, r, alpha) for p in produced_list)
        for r in reference_list
    )
