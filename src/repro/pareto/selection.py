"""Plan selection from a Pareto frontier based on user preferences.

The paper describes two ways of consuming the Pareto plan set (Section 1):
either the tradeoffs are visualized and the user picks a plan interactively,
or "the best plan can be selected automatically out of that set based on a
specification of user preferences (i.e., in the form of cost weights and cost
bounds)".  This module implements the second option: hard per-metric upper
bounds filter the candidate set, and a weighted sum over (optionally
normalized) cost values ranks the remaining plans.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.plans.plan import Plan


class NoFeasiblePlanError(ValueError):
    """Raised when no plan satisfies the given cost bounds."""


def filter_by_bounds(
    plans: Iterable[Plan], bounds: Sequence[Optional[float]]
) -> List[Plan]:
    """Keep the plans whose cost respects every given upper bound.

    ``bounds[i]`` is the maximum acceptable value for metric ``i``;
    ``None`` entries leave the metric unconstrained.
    """
    kept = []
    for plan in plans:
        if len(plan.cost) != len(bounds):
            raise ValueError(
                f"plan has {len(plan.cost)} metrics but {len(bounds)} bounds were given"
            )
        if all(
            bound is None or value <= bound for value, bound in zip(plan.cost, bounds)
        ):
            kept.append(plan)
    return kept


def select_plan(
    plans: Iterable[Plan],
    weights: Optional[Sequence[float]] = None,
    bounds: Optional[Sequence[Optional[float]]] = None,
    normalize: bool = True,
) -> Plan:
    """Select one plan from a Pareto set according to user preferences.

    Parameters
    ----------
    plans:
        Candidate plans (typically the frontier returned by an optimizer).
    weights:
        Relative importance of each cost metric; uniform weights are used when
        omitted.  Weights must be non-negative and not all zero.
    bounds:
        Optional per-metric upper bounds applied before ranking.
    normalize:
        Normalize each metric by its maximum over the candidates before
        applying the weights, so that metrics with large absolute values do
        not dominate the ranking by scale alone.

    Returns
    -------
    Plan
        The feasible plan with the lowest weighted (normalized) cost.

    Raises
    ------
    NoFeasiblePlanError
        If no plan is given or none satisfies the bounds.
    """
    candidates = list(plans)
    if not candidates:
        raise NoFeasiblePlanError("no candidate plans were given")
    num_metrics = len(candidates[0].cost)

    if bounds is not None:
        candidates = filter_by_bounds(candidates, bounds)
        if not candidates:
            raise NoFeasiblePlanError("no plan satisfies the given cost bounds")

    if weights is None:
        weight_vector = [1.0] * num_metrics
    else:
        weight_vector = list(weights)
        if len(weight_vector) != num_metrics:
            raise ValueError(
                f"{len(weight_vector)} weights given for {num_metrics} cost metrics"
            )
        if any(weight < 0 for weight in weight_vector):
            raise ValueError("weights must be non-negative")
        if sum(weight_vector) == 0:
            raise ValueError("at least one weight must be positive")

    if normalize:
        scales = [
            max(plan.cost[index] for plan in candidates) or 1.0
            for index in range(num_metrics)
        ]
    else:
        scales = [1.0] * num_metrics

    def score(plan: Plan) -> float:
        return sum(
            weight * value / scale
            for weight, value, scale in zip(weight_vector, plan.cost, scales)
        )

    return min(candidates, key=score)
