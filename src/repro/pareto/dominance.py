"""Pareto dominance relations on cost vectors (Section 3 of the paper).

Cost metrics are *costs*: lower is better.  The relations are:

* ``dominates(c1, c2)`` — ``c1 ⪯ c2``: ``c1`` is less than or equal to
  ``c2`` in every metric.
* ``strictly_dominates(c1, c2)`` — ``c1 ≺ c2``: ``c1 ⪯ c2`` and the vectors
  differ, i.e. ``c1`` is strictly better in at least one metric.
* ``approx_dominates(c1, c2, alpha)`` — ``c1 ⪯_α c2``: ``c1 ⪯ α · c2``,
  i.e. ``c1`` is not worse than ``c2`` by more than factor ``α`` in any
  metric (``α ≥ 1``).
"""

from __future__ import annotations

from typing import Sequence


def dominates(first: Sequence[float], second: Sequence[float]) -> bool:
    """Return whether ``first ⪯ second`` (no metric is worse)."""
    if len(first) != len(second):
        raise ValueError(
            f"cost vectors have different lengths: {len(first)} vs {len(second)}"
        )
    return all(a <= b for a, b in zip(first, second))


def strictly_dominates(first: Sequence[float], second: Sequence[float]) -> bool:
    """Return whether ``first ≺ second`` (dominates and differs somewhere)."""
    if len(first) != len(second):
        raise ValueError(
            f"cost vectors have different lengths: {len(first)} vs {len(second)}"
        )
    not_worse = True
    strictly_better = False
    for a, b in zip(first, second):
        if a > b:
            not_worse = False
            break
        if a < b:
            strictly_better = True
    return not_worse and strictly_better


def approx_dominates(
    first: Sequence[float], second: Sequence[float], alpha: float
) -> bool:
    """Return whether ``first ⪯_α second`` for approximation factor ``alpha``.

    ``alpha`` must be at least one; ``approx_dominates(a, b, 1.0)`` is
    equivalent to ``dominates(a, b)``.
    """
    if alpha < 1.0:
        raise ValueError(f"approximation factor must be at least 1, got {alpha}")
    if len(first) != len(second):
        raise ValueError(
            f"cost vectors have different lengths: {len(first)} vs {len(second)}"
        )
    return all(a <= alpha * b for a, b in zip(first, second))
