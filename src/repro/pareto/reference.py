"""Pure-Python reference implementations of the frontier kernel.

These are the original tuple-arithmetic implementations that
:mod:`repro.pareto.engine` replaced on the hot path.  They are kept as the
executable specification: small, obviously correct, and used by

* the property tests in ``tests/test_engine.py``, which assert that the
  vectorized engine produces identical results on random inputs, and
* ``benchmarks/bench_micro_pareto.py``, which measures the speedup of the
  engine over this baseline.

Do not use these classes on hot paths; use
:class:`repro.pareto.frontier.ParetoFrontier` (engine-backed) instead.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, List, Sequence, Tuple, TypeVar

from repro.pareto.dominance import approx_dominates, dominates, strictly_dominates

ItemT = TypeVar("ItemT")


class ScalarParetoFrontier(Generic[ItemT]):
    """Reference (pure-Python) implementation of ``ParetoFrontier``.

    Semantics are the paper's Algorithm 3 pruning rule: a new item is
    rejected when an existing item α-dominates it; an accepted item evicts
    every existing item it (exactly) dominates.
    """

    def __init__(
        self,
        cost_of: Callable[[ItemT], Sequence[float]] = lambda item: item,  # type: ignore[assignment,return-value]
        alpha: float = 1.0,
    ) -> None:
        if alpha < 1.0:
            raise ValueError(f"approximation factor must be at least 1, got {alpha}")
        self._cost_of = cost_of
        self._alpha = alpha
        self._items: List[ItemT] = []

    @property
    def alpha(self) -> float:
        """Approximation factor used for insertion."""
        return self._alpha

    def items(self) -> List[ItemT]:
        """The currently kept items (copy)."""
        return list(self._items)

    def costs(self) -> List[Tuple[float, ...]]:
        """Cost vectors of the currently kept items."""
        return [tuple(self._cost_of(item)) for item in self._items]

    def __len__(self) -> int:
        return len(self._items)

    def insert(self, item: ItemT) -> bool:
        """Insert ``item`` unless an existing item α-dominates it."""
        cost = tuple(self._cost_of(item))
        for existing in self._items:
            if approx_dominates(tuple(self._cost_of(existing)), cost, self._alpha):
                return False
        self._items = [
            existing
            for existing in self._items
            if not dominates(cost, tuple(self._cost_of(existing)))
        ]
        self._items.append(item)
        return True

    def insert_all(self, items: Iterable[ItemT]) -> int:
        """Insert several items one by one; returns how many were accepted."""
        return sum(1 for item in items if self.insert(item))

    def covers(self, cost: Sequence[float], alpha: float | None = None) -> bool:
        """Return whether some kept item α-dominates the given cost vector."""
        factor = self._alpha if alpha is None else alpha
        return any(
            approx_dominates(tuple(self._cost_of(item)), cost, factor)
            for item in self._items
        )

    def dominated_by_any(self, cost: Sequence[float]) -> bool:
        """Return whether some kept item strictly dominates the cost vector."""
        return any(
            strictly_dominates(tuple(self._cost_of(item)), cost)
            for item in self._items
        )


def scalar_pareto_filter(
    costs: Iterable[Sequence[float]], alpha: float = 1.0
) -> List[Tuple[float, ...]]:
    """Reference implementation of ``pareto_filter`` (sequential insertion)."""
    frontier: ScalarParetoFrontier[Tuple[float, ...]] = ScalarParetoFrontier(alpha=alpha)
    for cost in costs:
        frontier.insert(tuple(cost))
    return frontier.items()
