"""NumPy-backed Pareto kernel (the hot numeric layer).

The algorithm layer of this library (hill climbing, RMQ, DP, NSGA-II, the
benchmark harness) expresses everything in terms of a handful of numeric
primitives on cost vectors: dominance tests, (α-approximate) frontier
insertion with eviction, the multiplicative ε approximation error, and the
hypervolume indicator.  This module implements those primitives once, over
contiguous ``float64`` matrices, so that every algorithm gets faster at the
same time and later scaling work (sharding, larger grids, more metrics) has a
single kernel to optimize.

Design points:

* **Cost matrices** are C-contiguous ``float64`` arrays of shape
  ``(num_vectors, num_metrics)``; :func:`as_cost_matrix` builds them from any
  iterable of cost sequences.
* **Semantics match the scalar reference exactly.**  The pure-Python
  functions in :mod:`repro.pareto.dominance`, :mod:`repro.pareto.epsilon` and
  :mod:`repro.pareto.hypervolume` remain the executable specification; the
  property tests in ``tests/test_engine.py`` assert agreement on random
  inputs.  All comparisons here use the same IEEE-754 double operations as
  the scalar code (``a <= alpha * b`` and friends), so results are
  bit-identical, not merely close.
* **Adaptive dispatch.**  :class:`ParetoSet` keeps a plain tuple list next to
  its array buffer and answers queries with pure-Python loops while the set
  is tiny (NumPy call overhead dominates below ~16 rows) and with vectorized
  kernels beyond that.  Batch insertion is always vectorized.
* **Exact hypervolume.**  :func:`hypervolume_exact` accumulates the sweep in
  rational arithmetic (``fractions.Fraction``), which makes the indicator
  *numerically monotone under union*: the exact value is monotone and the
  final rounding to ``float`` is a monotone map.  :func:`hypervolume_sweep`
  is the fast ``float64`` variant for throughput-sensitive callers.
* **Tiered frontier stores.**  Dominance queries of :class:`ParetoSet` are
  answered by a pluggable store (:mod:`repro.pareto.store`): a flat scan, a
  first-objective-sorted block index, or an ND-tree — selected by an
  ``auto`` policy on frontier size and metric count.  Contents are
  bit-identical across stores; only query time differs.

Examples
--------
The paper's pruning rule, on the default store (reject if dominated, evict
what the new row dominates; evicted indices refer to pre-insert positions):

>>> from repro.pareto.engine import ParetoSet
>>> frontier = ParetoSet()
>>> frontier.insert((2.0, 1.0))
(True, [])
>>> frontier.insert((1.0, 2.0))
(True, [])
>>> frontier.insert((3.0, 3.0))        # dominated by both kept rows
(False, [])
>>> frontier.insert((1.0, 1.0))        # dominates both kept rows
(True, [0, 1])
>>> frontier.costs()
[(1.0, 1.0)]
>>> frontier.store_name                # small frontiers stay on the flat path
'flat'

Batch insertion is equivalent to inserting row by row (same acceptance
count, same kept rows, same order):

>>> frontier = ParetoSet()
>>> accepted, kept, surviving = frontier.insert_batch(
...     [(2.0, 1.0), (1.0, 2.0), (3.0, 3.0), (1.0, 2.0)])
>>> accepted, kept
(2, [0, 1])
>>> frontier.costs()
[(2.0, 1.0), (1.0, 2.0)]
"""

from __future__ import annotations

from bisect import bisect_left
from fractions import Fraction
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.pareto.store import (
    AUTO_ENGAGE_SIZE,
    FrontierStore,
    make_store,
    resolve_store_policy,
)

__all__ = [
    "as_cost_matrix",
    "dominates_matrix",
    "strictly_dominates_matrix",
    "approx_dominates_matrix",
    "pareto_kept_mask",
    "batch_insert_masks",
    "dominance_fold",
    "approximation_error_matrix",
    "alpha_coverage",
    "hypervolume_exact",
    "hypervolume_sweep",
    "ParetoSet",
]

#: Below this many rows, per-item queries run as pure-Python tuple loops
#: (NumPy dispatch overhead exceeds the arithmetic for tiny sets; typical
#: inserts short-circuit on the first covering row, which pushes the
#: crossover well past the worst-case full-scan break-even of ~16 rows).
SMALL_SET_SIZE = 32

#: Bound on the number of boolean cells materialized per broadcasting chunk
#: (~4M cells ≈ 4 MB of temporaries).
_CHUNK_CELLS = 1 << 22

_INITIAL_CAPACITY = 8


# ---------------------------------------------------------------------------
# Matrix construction
# ---------------------------------------------------------------------------
def as_cost_matrix(
    costs: Iterable[Sequence[float]], num_metrics: int | None = None
) -> np.ndarray:
    """Build a contiguous ``(n, d)`` ``float64`` cost matrix.

    Raises ``ValueError`` when the vectors are ragged or do not match the
    requested ``num_metrics``.
    """
    rows = [tuple(cost) for cost in costs]
    if not rows:
        width = 0 if num_metrics is None else num_metrics
        return np.empty((0, width), dtype=np.float64)
    width = len(rows[0])
    if num_metrics is not None and width != num_metrics:
        raise ValueError(
            f"cost vectors have different lengths: {width} vs {num_metrics}"
        )
    if any(len(row) != width for row in rows):
        raise ValueError("cost vectors must have the same length")
    matrix = np.asarray(rows, dtype=np.float64)
    if matrix.ndim == 1:  # list of empty tuples
        matrix = matrix.reshape(len(rows), 0)
    return np.ascontiguousarray(matrix)


def _chunk_rows(num_a: int, num_b: int, dim: int) -> int:
    """Row-chunk size keeping broadcast temporaries under ``_CHUNK_CELLS``."""
    return max(1, _CHUNK_CELLS // max(1, num_b * max(1, dim)))


# ---------------------------------------------------------------------------
# Batched dominance
# ---------------------------------------------------------------------------
def _all_leq_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``out[i, j] = all_k a[i, k] <= b[j, k]`` via per-metric column passes.

    The metric count is tiny (2–5), so ``d`` two-dimensional comparisons are
    much faster than one broadcast ``(n, m, d)`` temporary with a strided
    boolean reduction over the last axis.
    """
    n, d = a.shape
    m = b.shape[0]
    if d == 0:
        return np.ones((n, m), dtype=bool)
    out = a[:, 0, None] <= b[None, :, 0]
    for metric in range(1, d):
        out &= a[:, metric, None] <= b[None, :, metric]
    return out


def dominates_matrix(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Boolean matrix ``out[i, j] = first[i] ⪯ second[j]``."""
    a = np.asarray(first, dtype=np.float64)
    b = np.asarray(second, dtype=np.float64)
    return _all_leq_matrix(a, b)


def strictly_dominates_matrix(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Boolean matrix ``out[i, j] = first[i] ≺ second[j]``.

    Uses ``a ≺ b ⇔ a ⪯ b ∧ ¬(b ⪯ a)`` (on equal-length vectors the two
    definitions coincide: given ``a ⪯ b``, some component is strictly better
    exactly when the vectors differ).
    """
    a = np.asarray(first, dtype=np.float64)
    b = np.asarray(second, dtype=np.float64)
    return _all_leq_matrix(a, b) & ~_all_leq_matrix(b, a).T


def approx_dominates_matrix(
    first: np.ndarray, second: np.ndarray, alpha: float
) -> np.ndarray:
    """Boolean matrix ``out[i, j] = first[i] ⪯_α second[j]``.

    Uses the same per-component ``a <= alpha * b`` comparison as the scalar
    :func:`repro.pareto.dominance.approx_dominates`.
    """
    if alpha < 1.0:
        raise ValueError(f"approximation factor must be at least 1, got {alpha}")
    a = np.asarray(first, dtype=np.float64)
    b = alpha * np.asarray(second, dtype=np.float64)
    return _all_leq_matrix(a, b)


#: Cache of strict upper-triangle boolean masks keyed by matrix size (chunk
#: sizes repeat, and ``np.triu``/``np.tril`` rebuild a float ``tri`` mask on
#: every call, which shows up in the batch-insert profile).
_TRIANGLE_MASKS: dict = {}


def _upper_triangle_mask(size: int) -> np.ndarray:
    mask = _TRIANGLE_MASKS.get(size)
    if mask is None:
        mask = np.triu(np.ones((size, size), dtype=bool), 1)
        # Only chunk-scale masks recur (batch insertion chunks, small
        # frontiers); caching arbitrary sizes would grow without bound over a
        # long run, so larger masks stay transient.
        if size <= 256:
            _TRIANGLE_MASKS[size] = mask
    return mask


def _any_earlier(matrix: np.ndarray) -> np.ndarray:
    """Per-column ``j``: does ``matrix[i, j]`` hold for some ``i < j``?"""
    n = matrix.shape[0]
    return (matrix & _upper_triangle_mask(n)).any(axis=0)


def _any_later(matrix: np.ndarray) -> np.ndarray:
    """Per-column ``j``: does ``matrix[k, j]`` hold for some ``k > j``?"""
    n = matrix.shape[0]
    return (matrix & _upper_triangle_mask(n).T).any(axis=0)


def pareto_kept_mask(matrix: np.ndarray) -> np.ndarray:
    """Mask of rows kept by sequential exact-frontier insertion.

    Equivalent to inserting the rows in order into an exact (α = 1)
    :class:`~repro.pareto.frontier.ParetoFrontier`: row ``j`` survives iff no
    earlier row dominates it and no later row strictly dominates it (the
    first occurrence of duplicated non-dominated values is kept).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    dom = dominates_matrix(matrix, matrix)
    strict = dom & ~dom.T
    return ~_any_earlier(dom) & ~_any_later(strict)


def batch_insert_masks(
    existing: np.ndarray, batch: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decision masks of a sequential exact-frontier batch insertion.

    Given the current mutually non-dominated frontier rows ``existing`` and a
    ``batch`` of candidate rows, returns ``(accepted, kept_batch,
    surviving_existing)`` such that inserting the batch rows one by one with
    α = 1 accepts exactly ``accepted``, ends with batch rows ``kept_batch``
    kept (accepted and never evicted), and existing rows
    ``surviving_existing`` still present.  The equivalence relies on
    transitivity of dominance: a row is rejected iff *any* earlier row (kept
    or not) dominates it, and evicted iff *any* later batch row strictly
    dominates it.
    """
    batch = np.asarray(batch, dtype=np.float64)
    existing = np.asarray(existing, dtype=np.float64)
    m = batch.shape[0]
    if m == 0:
        return (
            np.zeros(0, dtype=bool),
            np.zeros(0, dtype=bool),
            np.ones(existing.shape[0], dtype=bool),
        )
    # Rows dominated by the existing frontier are rejected outright, and — by
    # the same transitive-chain argument — a surviving row can only be
    # rejected by an earlier *surviving* row or evicted by a later *surviving*
    # row (any chain of dominators through rejected rows ends at a surviving
    # one, or at an existing row that would have rejected the target too).
    # The quadratic intra-batch pass therefore runs on the usually-small
    # candidate subset only.
    if existing.shape[0]:
        dom_eb = dominates_matrix(existing, batch)
        rejected_by_existing = dom_eb.any(axis=0)
    else:
        dom_eb = None
        rejected_by_existing = np.zeros(m, dtype=bool)
    candidate_indices = np.flatnonzero(~rejected_by_existing)
    candidates = batch[candidate_indices]
    dom_cc = dominates_matrix(candidates, candidates)
    strict_cc = dom_cc & ~dom_cc.T
    accepted_candidates = ~_any_earlier(dom_cc)
    kept_candidates = accepted_candidates & ~_any_later(strict_cc)
    accepted = np.zeros(m, dtype=bool)
    accepted[candidate_indices] = accepted_candidates
    kept_batch = np.zeros(m, dtype=bool)
    kept_batch[candidate_indices] = kept_candidates
    if dom_eb is not None:
        accepted_rows = candidates[accepted_candidates]
        # batch[j] ≺ existing[i] ⇔ batch[j] ⪯ existing[i] ∧ ¬(existing[i] ⪯ batch[j]);
        # the second factor reuses the rejection matrix columns.
        dom_ea = dom_eb[:, candidate_indices[accepted_candidates]]
        evictors = dominates_matrix(accepted_rows, existing) & ~dom_ea.T
        surviving_existing = ~evictors.any(axis=0)
    else:
        surviving_existing = np.ones(0, dtype=bool)
    return accepted, kept_batch, surviving_existing


def dominance_fold(matrix: np.ndarray) -> int:
    """Index selected by the sequential strict-dominance fold.

    Equivalent to ``incumbent = 0; for j in 1..n-1: if row_j ≺ incumbent:
    incumbent = j`` (the per-format pruning of ``ParetoStep``), but each scan
    for the next improving row is a single vectorized comparison against the
    remaining rows.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    if n == 0:
        raise ValueError("dominance fold needs at least one row")
    incumbent = 0
    position = 1
    while position < n:
        tail = matrix[position:]
        current = matrix[incumbent]
        improving = np.all(tail <= current, axis=1) & np.any(tail < current, axis=1)
        hits = np.flatnonzero(improving)
        if hits.size == 0:
            break
        incumbent = position + int(hits[0])
        position = incumbent + 1
    return incumbent


# ---------------------------------------------------------------------------
# Approximation error (multiplicative ε indicator)
# ---------------------------------------------------------------------------
def approximation_error_matrix(
    produced: np.ndarray, reference: np.ndarray, ratio_floor: float = 1e-9
) -> float:
    """Vectorized multiplicative ε indicator (Section 6.1).

    Identical to the scalar :func:`repro.pareto.epsilon.approximation_error`
    on the same inputs: for every reference row the best produced cover
    ``min_a max_i a_i / r_i`` is found (components floored at
    ``ratio_floor``), and the worst cover over the reference, floored at one,
    is returned.
    """
    produced = np.asarray(produced, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if reference.shape[0] == 0:
        raise ValueError("the reference frontier must not be empty")
    if produced.shape[0] == 0:
        return float("inf")
    if produced.shape[1] != reference.shape[1]:
        raise ValueError("cost vectors must have the same length")
    if produced.shape[1] == 0:
        # Zero-metric vectors: every pairwise max-ratio is an empty maximum,
        # which the scalar reference treats as 0, flooring the result at 1.
        return 1.0
    produced_floored = np.maximum(produced, ratio_floor)
    reference_floored = np.maximum(reference, ratio_floor)
    worst = 1.0
    # The temporaries here are float64, not booleans: shrink the cell budget
    # by the element size so chunks stay within the intended memory bound.
    cell_budget = max(1, _CHUNK_CELLS // 8)
    step = max(1, cell_budget // max(1, produced.shape[0] * produced.shape[1]))
    for start in range(0, reference.shape[0], step):
        stop = start + step
        with np.errstate(invalid="ignore"):
            componentwise = (
                produced_floored[:, None, :] / reference_floored[None, start:stop, :]
            )
        # inf/inf yields NaN; the scalar max_ratio skips such components
        # (``nan > worst`` is false with ``worst`` starting at 0), so map
        # them to 0 while keeping genuine infinities.
        np.nan_to_num(componentwise, copy=False, nan=0.0, posinf=np.inf)
        ratios = componentwise.max(axis=2)
        best_cover = ratios.min(axis=0)
        chunk_worst = float(best_cover.max())
        if chunk_worst > worst:
            worst = chunk_worst
    return worst


def alpha_coverage(
    produced: np.ndarray, reference: np.ndarray, alpha: float
) -> bool:
    """Whether every reference row is α-dominated by some produced row."""
    produced = np.asarray(produced, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if reference.shape[0] == 0:
        raise ValueError("the reference frontier must not be empty")
    if produced.shape[0] == 0:
        return False
    return bool(approx_dominates_matrix(produced, reference, alpha).any(axis=0).all())


# ---------------------------------------------------------------------------
# Hypervolume
# ---------------------------------------------------------------------------
def hypervolume_exact(points: np.ndarray, reference: Sequence[float]) -> float:
    """Exact hypervolume of a point set, monotone under union.

    The slicing sweep is accumulated in rational arithmetic, so the result is
    the mathematically exact hypervolume of the (binary64) input points; the
    only rounding is the final conversion to ``float``, which is a monotone
    map.  Adding a point therefore never decreases the returned value.
    Points are expected to lie strictly inside the reference box (callers
    clean first); dominated points are harmless but slow the sweep down.
    """
    matrix = np.asarray(points, dtype=np.float64)
    if matrix.shape[0] == 0:
        return 0.0
    bounds = tuple(float(bound) for bound in reference)
    # Non-finite bounds never reach the rational sweep (Fraction rejects
    # them): a NaN or -inf bound admits no strictly-dominating point, and a
    # +inf bound gives every interior point infinite extent — the same
    # values the scalar float recursion produces.
    if any(bound != bound or bound == float("-inf") for bound in bounds):
        return 0.0
    if any(bound == float("inf") for bound in bounds):
        return float("inf")
    if not np.isfinite(matrix).all():
        # Mirror the scalar cleaning rule for out-of-contract inputs: NaN and
        # +inf coordinates cannot lie strictly inside a finite box, while a
        # -inf coordinate gives its point infinite dominated extent.
        inside = ~(np.isnan(matrix) | np.isposinf(matrix)).any(axis=1)
        matrix = matrix[inside]
        if matrix.shape[0] == 0:
            return 0.0
        if np.isneginf(matrix).any():
            return float("inf")
    reference_exact = tuple(Fraction(bound) for bound in bounds)
    rows = [tuple(Fraction(value) for value in row) for row in matrix.tolist()]
    return float(_exact_sweep(rows, reference_exact))


def _exact_sweep(
    points: List[Tuple[Fraction, ...]], reference: Tuple[Fraction, ...]
) -> Fraction:
    """Recursive slicing sweep in exact rational arithmetic."""
    dimension = len(reference)
    if dimension == 1:
        best = min(point[0] for point in points)
        return reference[0] - best if best < reference[0] else Fraction(0)
    ordered = sorted(points, key=lambda point: point[-1])
    total = Fraction(0)
    previous_bound = reference[-1]
    for index in range(len(ordered) - 1, -1, -1):
        height = previous_bound - ordered[index][-1]
        if height > 0:
            slab_points = _exact_pareto_filter(
                [point[:-1] for point in ordered[: index + 1]]
            )
            total += _exact_sweep(slab_points, reference[:-1]) * height
            previous_bound = ordered[index][-1]
    return total


def _exact_pareto_filter(
    points: List[Tuple[Fraction, ...]]
) -> List[Tuple[Fraction, ...]]:
    """Non-dominated subset under exact comparisons (first occurrence kept)."""
    kept: List[Tuple[Fraction, ...]] = []
    for point in points:
        if any(all(a <= b for a, b in zip(other, point)) for other in kept):
            continue
        kept = [
            other
            for other in kept
            if not all(a <= b for a, b in zip(point, other))
        ]
        kept.append(point)
    return kept


def hypervolume_sweep(points: np.ndarray, reference: Sequence[float]) -> float:
    """Fast ``float64`` hypervolume sweep (1-D, 2-D and 3-D).

    Within floating-point rounding of :func:`hypervolume_exact`; use the
    exact variant when monotonicity under union matters.  Dimensions above
    three fall back to the exact sweep.  Points must lie strictly inside the
    reference box.
    """
    matrix = np.asarray(points, dtype=np.float64)
    if matrix.shape[0] == 0:
        return 0.0
    bounds = np.asarray(tuple(float(v) for v in reference), dtype=np.float64)
    dimension = bounds.shape[0]
    if matrix.shape[1] != dimension:
        raise ValueError(
            f"cost vector of length {matrix.shape[1]} does not match reference of "
            f"length {dimension}"
        )
    if dimension == 1:
        return float(max(0.0, bounds[0] - matrix[:, 0].min()))
    if dimension == 2:
        return _sweep_2d(matrix, bounds)
    if dimension == 3:
        order = np.argsort(matrix[:, 2], kind="stable")
        z = matrix[order, 2]
        xy = matrix[order, :2]
        total = 0.0
        previous_bound = float(bounds[2])
        for index in range(z.shape[0] - 1, -1, -1):
            height = previous_bound - float(z[index])
            if height > 0:
                area = _sweep_2d(xy[: index + 1], bounds[:2])
                total += area * height
                previous_bound = float(z[index])
        return total
    return hypervolume_exact(matrix, reference)


def _sweep_2d(points: np.ndarray, bounds: np.ndarray) -> float:
    """Union area of ``[x_i, bx] × [y_i, by]`` boxes via a running-min sweep."""
    order = np.lexsort((points[:, 1], points[:, 0]))
    x = points[order, 0]
    y_running_min = np.minimum.accumulate(points[order, 1])
    widths = np.append(x[1:], bounds[0]) - x
    heights = np.maximum(bounds[1] - y_running_min, 0.0)
    return float(np.dot(widths, heights))


# ---------------------------------------------------------------------------
# ParetoSet: growable frontier buffer with sequential semantics
# ---------------------------------------------------------------------------
class ParetoSet:
    """Mutable set of cost rows kept mutually non-(α-)dominated.

    This is the storage kernel behind :class:`repro.pareto.frontier
    .ParetoFrontier` and :class:`repro.core.plan_cache.PlanCache`: a
    contiguous ``float64`` buffer grown by doubling, with a parallel tuple
    list used for the small-set fast path.  Each row can carry an integer
    ``tag``; insertion only compares rows with equal tags (the plan cache
    tags rows with the plan's output data format, implementing the paper's
    ``SigBetter``).  All mutating operations report which rows were evicted
    so that callers can keep side-car data (items, plans) aligned.

    ``store`` selects the frontier store answering dominance queries (see
    :mod:`repro.pareto.store`): ``"flat"`` scans the whole buffer,
    ``"sorted"`` and ``"ndtree"`` maintain an index, and ``"auto"`` (the
    default, overridable with the ``REPRO_FRONTIER_STORE`` environment
    variable) stays flat below ``AUTO_ENGAGE_SIZE`` rows and then picks an
    indexed tier by metric count.  The store is a pure search accelerator:
    kept rows, their order, and every accept/evict decision are identical
    across stores (``tests/test_store.py`` pins this bit-for-bit).
    """

    __slots__ = (
        "_dim",
        "_size",
        "_buffer",
        "_tags_buffer",
        "_tuples",
        "_tags",
        "_synced",
        "_policy",
        "_index",
        "_ids",
        "_next_id",
        "_has_tags",
    )

    def __init__(self, store: str | None = None) -> None:
        self._dim: int | None = None
        self._size = 0
        self._buffer: np.ndarray | None = None
        self._tags_buffer: np.ndarray | None = None
        self._tuples: List[Tuple[float, ...]] = []
        self._tags: List[int] = []
        # Number of leading rows of the array buffer that mirror the tuple
        # list.  Appends leave the buffer stale (small-set inserts are pure
        # list operations); the vectorized paths re-sync lazily.
        self._synced = 0
        # Frontier-store policy and (once engaged) the search index with its
        # id bookkeeping: stable per-row ids parallel to the tuple list and
        # the id -> position map used to translate eviction answers.
        self._policy = resolve_store_policy(store)
        self._index: FrontierStore | None = None
        # Stable per-row ids parallel to the tuple list, maintained only
        # while an index is engaged.  Appends take fresh increasing ids and
        # compaction preserves order, so the list is always strictly
        # ascending — the position of an id is a binary search away.
        self._ids: List[int] = []
        self._next_id = 0
        self._has_tags = False

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return self._size

    @property
    def dim(self) -> int | None:
        """Number of metrics per row (``None`` while empty)."""
        return self._dim if self._size else None

    def costs(self) -> List[Tuple[float, ...]]:
        """The kept rows as float tuples, in insertion order."""
        return list(self._tuples)

    def array(self) -> np.ndarray:
        """Read-only ``(n, d)`` view of the kept rows (do not mutate)."""
        self._sync()
        if self._buffer is None:
            return np.empty((0, self._dim or 0), dtype=np.float64)
        return self._buffer[: self._size]

    @property
    def store_name(self) -> str:
        """Name of the store currently answering queries.

        ``"flat"`` until an indexed store engages; under the ``auto`` policy
        that happens once the frontier outgrows ``AUTO_ENGAGE_SIZE`` rows.
        """
        return self._index.name if self._index is not None else "flat"

    @property
    def store_policy(self) -> str:
        """The store policy this set was created with (after env resolution)."""
        return self._policy

    def clear(self) -> None:
        """Remove every row (the next insertion may use a new dimension)."""
        self._size = 0
        self._dim = None
        self._buffer = None
        self._tags_buffer = None
        self._tuples = []
        self._tags = []
        self._synced = 0
        self._index = None
        self._ids = []
        self._next_id = 0
        self._has_tags = False

    # ------------------------------------------------------------- internal
    def _prepare(self, cost: Sequence[float]) -> Tuple[float, ...]:
        row = tuple(float(value) for value in cost)
        if self._size and len(row) != self._dim:
            raise ValueError(
                f"cost vectors have different lengths: {self._dim} vs {len(row)}"
            )
        return row

    def _ensure_capacity(self, extra: int) -> None:
        assert self._dim is not None
        needed = self._size + extra
        if self._buffer is None:
            capacity = max(_INITIAL_CAPACITY, needed)
            self._buffer = np.empty((capacity, self._dim), dtype=np.float64)
            self._tags_buffer = np.empty(capacity, dtype=np.int64)
            self._synced = 0
        elif needed > self._buffer.shape[0]:
            capacity = max(self._buffer.shape[0] * 2, needed)
            buffer = np.empty((capacity, self._dim), dtype=np.float64)
            buffer[: self._synced] = self._buffer[: self._synced]
            tags = np.empty(capacity, dtype=np.int64)
            tags[: self._synced] = self._tags_buffer[: self._synced]
            self._buffer = buffer
            self._tags_buffer = tags
        assert self._tags_buffer is not None

    def _sync(self) -> None:
        """Bring the array buffer up to date with the tuple list."""
        if self._synced == self._size:
            return
        self._ensure_capacity(0)
        assert self._buffer is not None and self._tags_buffer is not None
        stale = slice(self._synced, self._size)
        self._buffer[stale] = np.asarray(
            self._tuples[stale], dtype=np.float64
        ).reshape(self._size - self._synced, self._dim or 0)
        self._tags_buffer[stale] = self._tags[stale]
        self._synced = self._size

    def _append(self, row: Tuple[float, ...], tag: int) -> None:
        if self._size == 0:
            self._dim = len(row)
            self._buffer = None
            self._tags_buffer = None
            self._synced = 0
        self._tuples.append(row)
        self._tags.append(tag)
        self._size += 1

    def _compact(self, evicted: List[int]) -> None:
        """Drop the rows at the given (ascending) positions.

        Small evictions delete in place (a C-level ``memmove`` per list);
        mass evictions rebuild the lists in one pass.  The buffer prefix
        before the first eviction still mirrors the rows, so only the
        suffix needs re-syncing.
        """
        track_ids = self._index is not None
        if len(evicted) <= 32:
            for position in reversed(evicted):
                del self._tuples[position]
                del self._tags[position]
                if track_ids:
                    del self._ids[position]
        else:
            keep = [True] * self._size
            for position in evicted:
                keep[position] = False
            self._tuples = [row for row, kept in zip(self._tuples, keep) if kept]
            self._tags = [tag for tag, kept in zip(self._tags, keep) if kept]
            if track_ids:
                self._ids = [
                    row_id for row_id, kept in zip(self._ids, keep) if kept
                ]
        self._size = len(self._tuples)
        self._synced = min(self._synced, evicted[0]) if evicted else self._synced

    # ------------------------------------------------------- indexed storage
    def _wants_index(self) -> bool:
        """Whether the policy asks for an indexed store at the current size."""
        if not self._dim:  # zero metrics: nothing for an index to prune on
            return False
        if self._policy in ("sorted", "ndtree"):
            return True
        return self._policy == "auto" and self._size > AUTO_ENGAGE_SIZE

    def _ensure_index(self, dim_hint: int | None = None) -> None:
        """Engage the indexed store, bulk-loading the current rows.

        Row ids are assigned equal to the current positions; later appends
        take fresh ids from ``_next_id``.
        """
        if self._index is not None:
            return
        dim = self._dim if self._size else dim_hint
        assert dim is not None
        self._index = make_store(self._policy, dim)
        self._ids = list(range(self._size))
        self._next_id = self._size
        if self._size:
            self._index.bulk_load(self._ids, self.array(), self._tags)

    def _insert_indexed(
        self, row: Tuple[float, ...], alpha: float, tag: int
    ) -> Tuple[bool, List[int]]:
        """Insert one prepared row through the engaged store index."""
        index = self._index
        assert index is not None
        row_array = np.asarray(row, dtype=np.float64)
        # With homogeneous (all-zero) tags the tag filter is a no-op; telling
        # the store so unlocks its bulk accept/collect corner tests.
        query_tag: int | None = tag if (self._has_tags or tag) else None
        if self._size:
            if index.any_covering(row_array, alpha, query_tag):
                return False, []
            evicted_ids = index.dominated_ids(row_array, query_tag)
        else:
            evicted_ids = []
        evicted: List[int] = []
        if evicted_ids:
            ids = self._ids
            evicted = [bisect_left(ids, row_id) for row_id in sorted(evicted_ids)]
            index.remove_ids(evicted_ids)
            self._compact(evicted)
        self._append(row, tag)
        row_id = self._next_id
        self._next_id += 1
        self._ids.append(row_id)
        index.add(row_id, row_array, tag)
        return True, evicted

    # -------------------------------------------------------------- updates
    def insert(
        self, cost: Sequence[float], alpha: float = 1.0, tag: int = 0
    ) -> Tuple[bool, List[int]]:
        """Insert one row under the paper's pruning rule.

        The row is rejected when an existing same-tag row α-dominates it;
        otherwise it is appended and existing same-tag rows it (exactly)
        dominates are evicted.  Returns ``(accepted, evicted_indices)`` with
        the evicted indices referring to pre-insertion positions, so callers
        can drop the matching side-car entries.
        """
        if alpha < 1.0:
            raise ValueError(f"approximation factor must be at least 1, got {alpha}")
        row = self._prepare(cost)
        if tag:
            self._has_tags = True
        if self._index is not None:
            return self._insert_indexed(row, alpha, tag)
        n = self._size
        if n == 0:
            self._append(row, tag)
            return True, []
        if self._wants_index():
            self._ensure_index()
            return self._insert_indexed(row, alpha, tag)
        if n <= SMALL_SET_SIZE:
            tuples, tags = self._tuples, self._tags
            for index in range(n):
                if tags[index] == tag and all(
                    a <= alpha * b for a, b in zip(tuples[index], row)
                ):
                    return False, []
            evicted = [
                index
                for index in range(n)
                if tags[index] == tag
                and all(a <= b for a, b in zip(row, tuples[index]))
            ]
        else:
            self._sync()
            assert self._buffer is not None and self._tags_buffer is not None
            active = self._buffer[:n]
            tag_match = self._tags_buffer[:n] == tag
            row_array = np.asarray(row, dtype=np.float64)
            covered = tag_match & np.all(active <= alpha * row_array, axis=1)
            if covered.any():
                return False, []
            evicted_mask = tag_match & np.all(row_array <= active, axis=1)
            evicted = np.flatnonzero(evicted_mask).tolist()
        if evicted:
            self._compact(evicted)
        self._append(row, tag)
        return True, evicted

    def insert_batch(
        self, costs: Sequence[Sequence[float]], chunk_size: int = 128
    ) -> Tuple[int, List[int], np.ndarray]:
        """Vectorized batch insertion with exact sequential semantics (α = 1).

        Equivalent to calling :meth:`insert` for every row in order with
        ``alpha=1`` and ``tag=0`` (tags are not supported on the batch path).
        Returns ``(accepted_count, kept_batch_indices,
        surviving_existing_mask)``: how many rows the sequential insertion
        would have accepted, which batch rows remain in the final set (in
        order), and which pre-existing rows survived.

        The batch is processed in chunks of ``chunk_size`` rows against the
        evolving frontier: each chunk needs one ``frontier × chunk`` and one
        triangular ``chunk × chunk`` dominance pass, so the total work is
        ``O(m·n + m·chunk_size)`` instead of the ``O(m²)`` of a single
        all-pairs pass — on typical workloads (large batches collapsing onto
        small frontiers) this is what makes the batch path beat sequential
        insertion by a wide margin.
        """
        if any(self._tags):
            raise ValueError("batch insertion does not support tagged rows")
        original_size = self._size
        num_rows = len(costs)
        if num_rows == 0:
            return 0, [], np.ones(original_size, dtype=bool)
        try:
            batch = np.asarray(costs, dtype=np.float64)
        except (ValueError, TypeError) as exc:
            raise ValueError("cost vectors must have the same length") from exc
        if batch.ndim == 1:  # list of empty tuples
            batch = batch.reshape(num_rows, 0)
        if batch.ndim != 2:
            raise ValueError("cost vectors must have the same length")
        width = batch.shape[1]
        if original_size and width != self._dim:
            raise ValueError(
                f"cost vectors have different lengths: {self._dim} vs {width}"
            )
        if width and (
            self._index is not None or self._policy in ("sorted", "ndtree")
        ):
            # Indexed stores replace the O(m·n)-per-chunk dominance pass with
            # per-row windowed queries against the index — the batch path is
            # *defined* as sequential insertion, so this is trivially
            # equivalent (and what the store tier is for on large frontiers).
            return self._insert_batch_indexed(batch)
        if original_size:
            frontier = self.array().copy()
        else:
            frontier = np.empty((0, width), dtype=np.float64)
        # Row provenance: negative = pre-existing row -(k+1), else batch index.
        origins: List[int] = [-(k + 1) for k in range(original_size)]
        accepted_total = 0
        for start in range(0, batch.shape[0], chunk_size):
            chunk = batch[start : start + chunk_size]
            accepted, kept_local, surviving = batch_insert_masks(frontier, chunk)
            accepted_total += int(accepted.sum())
            kept_rows = np.flatnonzero(kept_local)
            frontier = np.concatenate([frontier[surviving], chunk[kept_rows]])
            origins = [
                origin for origin, keep in zip(origins, surviving) if keep
            ] + [start + int(j) for j in kept_rows]
        surviving_existing = np.zeros(original_size, dtype=bool)
        kept_indices: List[int] = []
        for origin in origins:
            if origin < 0:
                surviving_existing[-origin - 1] = True
            else:
                kept_indices.append(origin)
        self._tuples = [
            self._tuples[k] for k in range(original_size) if surviving_existing[k]
        ] + [tuple(batch[j].tolist()) for j in kept_indices]
        self._tags = [0] * len(self._tuples)
        self._size = 0
        self._dim = width
        self._buffer = None
        self._tags_buffer = None
        self._ensure_capacity(frontier.shape[0])
        assert self._buffer is not None and self._tags_buffer is not None
        self._buffer[: frontier.shape[0]] = frontier
        self._tags_buffer[: frontier.shape[0]] = 0
        self._size = frontier.shape[0]
        self._synced = self._size
        return accepted_total, kept_indices, surviving_existing

    def _insert_batch_indexed(
        self, batch: np.ndarray
    ) -> Tuple[int, List[int], np.ndarray]:
        """Batch insertion through the store index (sequential semantics).

        Each row goes through :meth:`_insert_indexed`; stable row ids track
        which pre-existing rows survive and which batch rows are kept, so the
        return value matches the chunked flat kernel exactly.
        """
        original_size = self._size
        self._ensure_index(dim_hint=int(batch.shape[1]))
        ids_before = list(self._ids)
        new_id_to_batch: Dict[int, int] = {}
        accepted_total = 0
        for position in range(batch.shape[0]):
            row = tuple(batch[position].tolist())
            accepted, _ = self.insert(row, alpha=1.0, tag=0)
            if accepted:
                accepted_total += 1
                new_id_to_batch[self._ids[-1]] = position
        live = set(self._ids)
        surviving_existing = np.zeros(original_size, dtype=bool)
        for position, row_id in enumerate(ids_before):
            if row_id in live:
                surviving_existing[position] = True
        kept_indices = [
            new_id_to_batch[row_id]
            for row_id in self._ids
            if row_id in new_id_to_batch
        ]
        return accepted_total, kept_indices, surviving_existing

    # ------------------------------------------------------------- queries
    def covers(
        self, cost: Sequence[float], alpha: float, tag: int | None = None
    ) -> bool:
        """Whether some kept row (with matching tag, if given) α-dominates."""
        if alpha < 1.0:
            raise ValueError(f"approximation factor must be at least 1, got {alpha}")
        if self._size == 0:
            return False
        row = self._prepare(cost)
        n = self._size
        if self._index is not None:
            query_tag = tag if (self._has_tags or tag) else None
            return self._index.any_covering(
                np.asarray(row, dtype=np.float64), alpha, query_tag
            )
        if n <= SMALL_SET_SIZE:
            return any(
                (tag is None or self._tags[index] == tag)
                and all(a <= alpha * b for a, b in zip(self._tuples[index], row))
                for index in range(n)
            )
        self._sync()
        assert self._buffer is not None and self._tags_buffer is not None
        mask = np.all(
            self._buffer[:n] <= alpha * np.asarray(row, dtype=np.float64), axis=1
        )
        if tag is not None:
            mask &= self._tags_buffer[:n] == tag
        return bool(mask.any())

    def strictly_dominates_any(self, cost: Sequence[float]) -> bool:
        """Whether some kept row strictly dominates the given cost vector."""
        if self._size == 0:
            return False
        row = self._prepare(cost)
        n = self._size
        if self._index is not None:
            return self._index.any_strictly_dominating(
                np.asarray(row, dtype=np.float64)
            )
        if n <= SMALL_SET_SIZE:
            return any(
                all(a <= b for a, b in zip(kept, row))
                and any(a < b for a, b in zip(kept, row))
                for kept in self._tuples
            )
        self._sync()
        assert self._buffer is not None
        active = self._buffer[:n]
        row_array = np.asarray(row, dtype=np.float64)
        mask = np.all(active <= row_array, axis=1) & np.any(active < row_array, axis=1)
        return bool(mask.any())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParetoSet(size={self._size}, dim={self.dim})"
