"""Hypervolume indicator (extension).

The paper compares algorithms only with the multiplicative approximation
error, but the hypervolume indicator is the other standard multi-objective
quality measure and is useful as an independent sanity check in the benchmark
harness (a better frontier should both lower the α error and raise the
dominated hypervolume).

For minimization problems the hypervolume of a point set is the volume of the
region dominated by the set and bounded above by a reference point.  The live
implementation cleans and Pareto-filters the input with the vectorized kernel
(:mod:`repro.pareto.engine`) and then runs the slicing sweep with *exact*
rational accumulation, which makes the indicator numerically monotone under
union: adding a point can never decrease the reported volume (the exact value
is monotone, and the final rounding to ``float`` is a monotone map).  The
original floating-point recursion is kept as :func:`hypervolume_scalar`, the
reference the engine is property-tested against (equal up to floating-point
accumulation error).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.pareto import engine
from repro.pareto.reference import scalar_pareto_filter


def hypervolume(
    costs: Iterable[Sequence[float]], reference_point: Sequence[float]
) -> float:
    """Hypervolume dominated by ``costs`` with respect to ``reference_point``.

    Points that do not strictly dominate the reference point in every metric
    contribute nothing.  Returns zero for an empty set.  The result is
    numerically monotone under union (see the module docstring).
    """
    reference = tuple(float(v) for v in reference_point)
    rows: List[Tuple[float, ...]] = []
    for cost in costs:
        point = tuple(float(v) for v in cost)
        if len(point) != len(reference):
            raise ValueError(
                f"cost vector of length {len(point)} does not match reference of "
                f"length {len(reference)}"
            )
        rows.append(point)
    if not rows:
        return 0.0
    matrix = engine.as_cost_matrix(rows, num_metrics=len(reference))
    inside = np.all(matrix < np.asarray(reference, dtype=np.float64), axis=1)
    cleaned = matrix[inside]
    if cleaned.shape[0] == 0:
        return 0.0
    front = cleaned[engine.pareto_kept_mask(cleaned)]
    return engine.hypervolume_exact(front, reference)


def hypervolume_scalar(
    costs: Iterable[Sequence[float]], reference_point: Sequence[float]
) -> float:
    """Pure-Python reference implementation (floating-point accumulation).

    Kept as the executable specification the engine is property-tested
    against.  Unlike :func:`hypervolume`, this variant is subject to
    floating-point accumulation error and is *not* exactly monotone under
    union.
    """
    reference = tuple(float(v) for v in reference_point)
    cleaned: List[Tuple[float, ...]] = []
    for cost in costs:
        point = tuple(float(v) for v in cost)
        if len(point) != len(reference):
            raise ValueError(
                f"cost vector of length {len(point)} does not match reference of "
                f"length {len(reference)}"
            )
        if all(value < bound for value, bound in zip(point, reference)):
            cleaned.append(point)
    if not cleaned:
        return 0.0
    front = scalar_pareto_filter(cleaned)
    return _hypervolume_recursive(front, reference)


def _hypervolume_recursive(
    points: List[Tuple[float, ...]], reference: Tuple[float, ...]
) -> float:
    """Exact hypervolume by slicing along the last dimension."""
    dimension = len(reference)
    if dimension == 1:
        return max(0.0, reference[0] - min(point[0] for point in points))
    # Sort by the last coordinate and sweep slices from best to worst.
    ordered = sorted(points, key=lambda point: point[-1])
    total = 0.0
    previous_bound = reference[-1]
    for index in range(len(ordered) - 1, -1, -1):
        slab_top = previous_bound
        slab_bottom = ordered[index][-1]
        height = slab_top - slab_bottom
        if height > 0:
            slab_points = [point[:-1] for point in ordered[: index + 1]]
            slab_front = scalar_pareto_filter(slab_points)
            area = _hypervolume_recursive(slab_front, reference[:-1])
            total += area * height
            previous_bound = slab_bottom
    return total
