"""Hypervolume indicator (extension).

The paper compares algorithms only with the multiplicative approximation
error, but the hypervolume indicator is the other standard multi-objective
quality measure and is useful as an independent sanity check in the benchmark
harness (a better frontier should both lower the α error and raise the
dominated hypervolume).

For minimization problems the hypervolume of a point set is the volume of the
region dominated by the set and bounded above by a reference point.  The
implementation uses the classic recursive slicing approach, which is exact
and fast enough for the 2–3 dimensional frontiers this library produces.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.pareto.frontier import pareto_filter


def hypervolume(
    costs: Iterable[Sequence[float]], reference_point: Sequence[float]
) -> float:
    """Hypervolume dominated by ``costs`` with respect to ``reference_point``.

    Points that do not strictly dominate the reference point in every metric
    contribute nothing.  Returns zero for an empty set.
    """
    reference = tuple(float(v) for v in reference_point)
    cleaned: List[Tuple[float, ...]] = []
    for cost in costs:
        point = tuple(float(v) for v in cost)
        if len(point) != len(reference):
            raise ValueError(
                f"cost vector of length {len(point)} does not match reference of "
                f"length {len(reference)}"
            )
        if all(value < bound for value, bound in zip(point, reference)):
            cleaned.append(point)
    if not cleaned:
        return 0.0
    front = pareto_filter(cleaned)
    return _hypervolume_recursive(front, reference)


def _hypervolume_recursive(
    points: List[Tuple[float, ...]], reference: Tuple[float, ...]
) -> float:
    """Exact hypervolume by slicing along the last dimension."""
    dimension = len(reference)
    if dimension == 1:
        return max(0.0, reference[0] - min(point[0] for point in points))
    # Sort by the last coordinate and sweep slices from best to worst.
    ordered = sorted(points, key=lambda point: point[-1])
    total = 0.0
    previous_bound = reference[-1]
    for index in range(len(ordered) - 1, -1, -1):
        slab_top = previous_bound
        slab_bottom = ordered[index][-1]
        height = slab_top - slab_bottom
        if height > 0:
            slab_points = [point[:-1] for point in ordered[: index + 1]]
            slab_front = pareto_filter(slab_points)
            area = _hypervolume_recursive(slab_front, reference[:-1])
            total += area * height
            previous_bound = slab_bottom
    return total
