"""Pareto-dominance machinery.

Implements the dominance relations of Section 3 (dominance, strict dominance,
approximate dominance with factor alpha), Pareto frontier containers with the
two pruning policies used by Algorithms 2 and 3, the approximation-error
indicator used throughout the evaluation (Section 6.1), and a hypervolume
indicator as an additional quality measure.

The package is split into a hot numeric kernel and the algorithm-facing
containers built on top of it:

* :mod:`repro.pareto.engine` — NumPy-backed batched dominance, frontier
  storage (:class:`~repro.pareto.engine.ParetoSet`), the vectorized ε
  indicator, and hypervolume sweeps;
* :mod:`repro.pareto.store` — the tiered frontier stores behind
  :class:`~repro.pareto.engine.ParetoSet`: flat scan,
  :class:`~repro.pareto.store.SortedFrontier` (first-objective blocks with
  binary-search pruning windows) and
  :class:`~repro.pareto.store.NDTreeFrontier` (bounding-cost ND-tree),
  selected by an ``auto`` policy on frontier size and metric count;
* :mod:`repro.pareto.reference` — the original pure-Python implementations,
  kept as the executable specification the engine is property-tested
  against.
"""

from repro.pareto.dominance import (
    approx_dominates,
    dominates,
    strictly_dominates,
)
from repro.pareto.engine import ParetoSet, as_cost_matrix
from repro.pareto.frontier import ParetoFrontier, pareto_filter
from repro.pareto.store import (
    FlatFrontier,
    FrontierStore,
    NDTreeFrontier,
    SortedFrontier,
    make_store,
    resolve_store_policy,
)
from repro.pareto.epsilon import (
    approximation_error,
    approximation_error_of_plans,
    approximation_error_scalar,
    is_alpha_approximation,
)
from repro.pareto.hypervolume import hypervolume, hypervolume_scalar
from repro.pareto.selection import NoFeasiblePlanError, filter_by_bounds, select_plan

__all__ = [
    "select_plan",
    "filter_by_bounds",
    "NoFeasiblePlanError",
    "dominates",
    "strictly_dominates",
    "approx_dominates",
    "ParetoFrontier",
    "ParetoSet",
    "FrontierStore",
    "FlatFrontier",
    "SortedFrontier",
    "NDTreeFrontier",
    "make_store",
    "resolve_store_policy",
    "as_cost_matrix",
    "pareto_filter",
    "approximation_error",
    "approximation_error_scalar",
    "approximation_error_of_plans",
    "is_alpha_approximation",
    "hypervolume",
    "hypervolume_scalar",
]
