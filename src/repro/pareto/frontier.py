"""Pareto frontier containers and pruning.

Two pruning policies appear in the paper:

* Algorithm 2 (``Prune`` for hill climbing) keeps **one** non-dominated plan
  per output data representation — it only needs a single good plan.
* Algorithm 3 (``Prune`` for frontier approximation) keeps a set of plans
  such that no kept plan is *approximately* dominated (factor ``α``) by
  another kept plan — an α-approximate Pareto frontier whose size is bounded
  polynomially (Lemma 6).

:class:`ParetoFrontier` implements the second policy (with ``alpha = 1``
giving an exact frontier) over arbitrary items carrying a cost vector;
:func:`pareto_filter` is a convenience for one-shot filtering of cost-vector
collections.

Storage and comparisons are delegated to the NumPy kernel in
:mod:`repro.pareto.engine` (a :class:`~repro.pareto.engine.ParetoSet` keeps
the cost rows contiguous and answers dominance queries in batch); the
pure-Python implementation this replaces is preserved as
:class:`repro.pareto.reference.ScalarParetoFrontier` and property-tested to
agree.  ``insert_all`` with an exact frontier takes a fully vectorized batch
path whose result — kept items, order, and acceptance count — is identical
to sequential insertion.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, List, Sequence, Tuple, TypeVar

from repro.pareto.engine import ParetoSet

ItemT = TypeVar("ItemT")


def _identity(item):  # default cost extractor: items are the cost vectors
    return item


class ParetoFrontier(Generic[ItemT]):
    """A set of items kept mutually non-(α-)dominated by cost vector.

    Parameters
    ----------
    cost_of:
        Function extracting the cost vector from an item (identity for plain
        cost vectors, ``lambda plan: plan.cost`` for plans).
    alpha:
        Approximation factor used when deciding whether a *new* item is
        already covered by an existing one.  Existing items are only evicted
        by new items that dominate them exactly (factor one), mirroring
        Algorithm 3's pruning function.
    store:
        Frontier store policy (see :mod:`repro.pareto.store`): ``"flat"``,
        ``"sorted"``, ``"ndtree"``, or ``"auto"`` (the default: flat while
        small, indexed once the frontier grows).  Kept items and their order
        are identical whichever store is selected.
    """

    def __init__(
        self,
        cost_of: Callable[[ItemT], Sequence[float]] = _identity,  # type: ignore[assignment]
        alpha: float = 1.0,
        store: str | None = None,
    ) -> None:
        if alpha < 1.0:
            raise ValueError(f"approximation factor must be at least 1, got {alpha}")
        self._cost_of = cost_of
        self._alpha = alpha
        self._items: List[ItemT] = []
        self._set = ParetoSet(store=store)

    # ------------------------------------------------------------ accessors
    @property
    def alpha(self) -> float:
        """Approximation factor used for insertion."""
        return self._alpha

    @alpha.setter
    def alpha(self, value: float) -> None:
        if value < 1.0:
            raise ValueError(f"approximation factor must be at least 1, got {value}")
        self._alpha = value

    @property
    def store_name(self) -> str:
        """Name of the store currently backing the frontier (diagnostic)."""
        return self._set.store_name

    def items(self) -> List[ItemT]:
        """The currently kept items (copy)."""
        return list(self._items)

    def costs(self) -> List[Tuple[float, ...]]:
        """Cost vectors of the currently kept items."""
        return [tuple(self._cost_of(item)) for item in self._items]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[ItemT]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    # -------------------------------------------------------------- updates
    def insert(self, item: ItemT) -> bool:
        """Insert ``item`` unless an existing item α-dominates it.

        When the item is inserted, existing items it (exactly) dominates are
        removed.  Returns True if the item was inserted.
        """
        accepted, evicted = self._set.insert(self._cost_of(item), alpha=self._alpha)
        if not accepted:
            return False
        if evicted:
            removed = set(evicted)
            self._items = [
                existing
                for index, existing in enumerate(self._items)
                if index not in removed
            ]
        self._items.append(item)
        return True

    def insert_all(self, items: Iterable[ItemT]) -> int:
        """Insert several items; returns how many were accepted.

        With an exact frontier (``alpha == 1``) the whole batch is processed
        by one vectorized kernel call; the kept items, their order, and the
        returned count are identical to inserting one by one.
        """
        batch = list(items)
        if not batch:
            return 0
        if self._alpha == 1.0 and len(batch) > 1:
            if self._cost_of is _identity:
                costs: Sequence[Sequence[float]] = batch  # type: ignore[assignment]
            else:
                costs = [self._cost_of(item) for item in batch]
            try:
                accepted, kept_indices, surviving = self._set.insert_batch(costs)
            except ValueError:
                # Ragged or mismatched cost vectors: replay sequentially so
                # the error surfaces exactly where scalar insertion raises it
                # (insert_batch does not mutate state before raising).
                return sum(1 for item in batch if self.insert(item))
            self._items = [
                item for item, kept in zip(self._items, surviving) if kept
            ] + [batch[index] for index in kept_indices]
            return accepted
        return sum(1 for item in batch if self.insert(item))

    def clear(self) -> None:
        """Remove all items."""
        self._items.clear()
        self._set.clear()

    # ------------------------------------------------------------- queries
    def covers(self, cost: Sequence[float], alpha: float | None = None) -> bool:
        """Return whether some kept item α-dominates the given cost vector."""
        factor = self._alpha if alpha is None else alpha
        return self._set.covers(cost, factor)

    def dominated_by_any(self, cost: Sequence[float]) -> bool:
        """Return whether some kept item strictly dominates the cost vector."""
        return self._set.strictly_dominates_any(cost)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParetoFrontier(size={len(self._items)}, alpha={self._alpha})"


def pareto_filter(
    costs: Iterable[Sequence[float]], alpha: float = 1.0, store: str | None = None
) -> List[Tuple[float, ...]]:
    """Return a (α-approximate) Pareto-optimal subset of the given cost vectors.

    With ``alpha = 1`` the result contains one representative for every
    non-dominated cost value (duplicates are collapsed) and the whole input
    is filtered in one ``insert_all`` call — a single vectorized batch
    insertion on the flat store, per-row windowed index queries on the
    indexed stores (``store`` as in :class:`ParetoFrontier`; the result is
    identical either way).
    """
    frontier: ParetoFrontier[Tuple[float, ...]] = ParetoFrontier(
        alpha=alpha, store=store
    )
    frontier.insert_all([tuple(cost) for cost in costs])
    return frontier.items()
