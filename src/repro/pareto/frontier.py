"""Pareto frontier containers and pruning.

Two pruning policies appear in the paper:

* Algorithm 2 (``Prune`` for hill climbing) keeps **one** non-dominated plan
  per output data representation — it only needs a single good plan.
* Algorithm 3 (``Prune`` for frontier approximation) keeps a set of plans
  such that no kept plan is *approximately* dominated (factor ``α``) by
  another kept plan — an α-approximate Pareto frontier whose size is bounded
  polynomially (Lemma 6).

:class:`ParetoFrontier` implements the second policy (with ``alpha = 1``
giving an exact frontier) over arbitrary items carrying a cost vector;
:func:`pareto_filter` is a convenience for one-shot filtering of cost-vector
collections.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, List, Sequence, Tuple, TypeVar

from repro.pareto.dominance import approx_dominates, dominates, strictly_dominates

ItemT = TypeVar("ItemT")


class ParetoFrontier(Generic[ItemT]):
    """A set of items kept mutually non-(α-)dominated by cost vector.

    Parameters
    ----------
    cost_of:
        Function extracting the cost vector from an item (identity for plain
        cost vectors, ``lambda plan: plan.cost`` for plans).
    alpha:
        Approximation factor used when deciding whether a *new* item is
        already covered by an existing one.  Existing items are only evicted
        by new items that dominate them exactly (factor one), mirroring
        Algorithm 3's pruning function.
    """

    def __init__(
        self,
        cost_of: Callable[[ItemT], Sequence[float]] = lambda item: item,  # type: ignore[assignment,return-value]
        alpha: float = 1.0,
    ) -> None:
        if alpha < 1.0:
            raise ValueError(f"approximation factor must be at least 1, got {alpha}")
        self._cost_of = cost_of
        self._alpha = alpha
        self._items: List[ItemT] = []

    # ------------------------------------------------------------ accessors
    @property
    def alpha(self) -> float:
        """Approximation factor used for insertion."""
        return self._alpha

    @alpha.setter
    def alpha(self, value: float) -> None:
        if value < 1.0:
            raise ValueError(f"approximation factor must be at least 1, got {value}")
        self._alpha = value

    def items(self) -> List[ItemT]:
        """The currently kept items (copy)."""
        return list(self._items)

    def costs(self) -> List[Tuple[float, ...]]:
        """Cost vectors of the currently kept items."""
        return [tuple(self._cost_of(item)) for item in self._items]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[ItemT]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    # -------------------------------------------------------------- updates
    def insert(self, item: ItemT) -> bool:
        """Insert ``item`` unless an existing item α-dominates it.

        When the item is inserted, existing items it (exactly) dominates are
        removed.  Returns True if the item was inserted.
        """
        cost = tuple(self._cost_of(item))
        for existing in self._items:
            if approx_dominates(tuple(self._cost_of(existing)), cost, self._alpha):
                return False
        self._items = [
            existing
            for existing in self._items
            if not dominates(cost, tuple(self._cost_of(existing)))
        ]
        self._items.append(item)
        return True

    def insert_all(self, items: Iterable[ItemT]) -> int:
        """Insert several items; returns how many were kept."""
        return sum(1 for item in items if self.insert(item))

    def clear(self) -> None:
        """Remove all items."""
        self._items.clear()

    # ------------------------------------------------------------- queries
    def covers(self, cost: Sequence[float], alpha: float | None = None) -> bool:
        """Return whether some kept item α-dominates the given cost vector."""
        factor = self._alpha if alpha is None else alpha
        return any(
            approx_dominates(tuple(self._cost_of(item)), cost, factor)
            for item in self._items
        )

    def dominated_by_any(self, cost: Sequence[float]) -> bool:
        """Return whether some kept item strictly dominates the cost vector."""
        return any(
            strictly_dominates(tuple(self._cost_of(item)), cost)
            for item in self._items
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParetoFrontier(size={len(self._items)}, alpha={self._alpha})"


def pareto_filter(
    costs: Iterable[Sequence[float]], alpha: float = 1.0
) -> List[Tuple[float, ...]]:
    """Return a (α-approximate) Pareto-optimal subset of the given cost vectors.

    With ``alpha = 1`` the result contains one representative for every
    non-dominated cost value (duplicates are collapsed).
    """
    frontier: ParetoFrontier[Tuple[float, ...]] = ParetoFrontier(alpha=alpha)
    for cost in costs:
        frontier.insert(tuple(cost))
    return frontier.items()
