"""NSGA-II for multi-objective query optimization.

The paper uses the Non-dominated Sorting Genetic Algorithm II (Deb et al.)
with "an ordinal plan encoding and a corresponding single-point crossover"
as proposed for (single-objective) query optimization by Steinbrunn et al.,
and a population of 200 individuals (Section 6.1).

Chromosome layout (all genes are small integers):

* ``n`` ordinal join-order genes — gene ``i`` selects one of the tables that
  have not been placed yet (its valid range shrinks with ``i``), which makes
  single-point crossover always produce valid orders;
* ``n - 1`` commute bits — whether the newly added table becomes the outer or
  the inner operand of its join;
* ``n`` scan-operator genes and ``n - 1`` join-operator genes — interpreted
  modulo the number of applicable operators at decode time.

Chromosomes decode into left-deep-style plans (the composite built so far is
joined with the next table), the plan space the ordinal encoding was designed
for.  One :meth:`step` runs one NSGA-II generation: binary tournament
selection, single-point crossover, per-gene mutation, and elitist
environmental selection by non-dominated rank and crowding distance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.interface import AnytimeOptimizer
from repro.cost.batch import BatchCostModel
from repro.cost.model import MultiObjectiveCostModel
from repro.pareto.dominance import strictly_dominates
from repro.pareto.engine import strictly_dominates_matrix
from repro.pareto.frontier import ParetoFrontier
from repro.plans.arena import resolve_plan_engine
from repro.plans.plan import Plan

Genome = Tuple[int, ...]

#: Population size from which the non-dominated sort switches to the
#: sorted-order (ENS-style) algorithm.  The all-pairs dominance matrix is a
#: single fast kernel call but materializes O(n²) boolean temporaries, which
#: is the memory and time bottleneck for very large populations; the indexed
#: sort processes individuals in lexicographic order and only compares
#: against already-placed front members.  Results are bit-identical
#: (``tests/test_store.py`` pins fronts, ranks, and within-front order).
INDEXED_SORT_MIN_POPULATION = 1024


@dataclass
class Individual:
    """A genome together with its decoded plan and cost vector."""

    genome: Genome
    plan: Plan
    rank: int = 0
    crowding: float = 0.0

    @property
    def cost(self) -> Tuple[float, ...]:
        """Cost vector of the decoded plan."""
        return self.plan.cost


@dataclass
class ArenaIndividual:
    """An individual of the columnar engine: an arena handle plus its cost.

    Duck-compatible with :class:`Individual` everywhere the algorithm reads
    it (``cost``, ``rank``, ``crowding``, ``genome``); ``plan`` holds the
    arena handle instead of a ``Plan`` object.
    """

    genome: Genome
    plan: int
    cost: Tuple[float, ...]
    rank: int = 0
    crowding: float = 0.0


class NSGA2Optimizer(AnytimeOptimizer):
    """NSGA-II over the ordinal plan encoding.

    Parameters
    ----------
    cost_model:
        Cost model / plan factory for the query.
    rng:
        Source of randomness.
    population_size:
        Number of individuals (the paper uses 200; tests use smaller values).
    crossover_probability:
        Probability of applying single-point crossover to a selected pair.
    mutation_probability:
        Per-gene mutation probability; defaults to ``1 / genome length``.
    """

    name = "NSGA-II"

    def __init__(
        self,
        cost_model: MultiObjectiveCostModel,
        rng: random.Random | None = None,
        population_size: int = 200,
        crossover_probability: float = 0.9,
        mutation_probability: float | None = None,
        engine: str | None = None,
    ) -> None:
        super().__init__(cost_model)
        if population_size < 2:
            raise ValueError("population size must be at least 2")
        if not 0 <= crossover_probability <= 1:
            raise ValueError("crossover probability must be in [0, 1]")
        self._rng = rng if rng is not None else random.Random()
        self._engine = resolve_plan_engine(engine)
        self._batch_model = (
            BatchCostModel(cost_model) if self._engine == "arena" else None
        )
        self._population_size = population_size
        self._crossover_probability = crossover_probability
        num_tables = cost_model.query.num_tables
        # Layout: n ordinal order genes, n-1 commute bits, n scan-operator
        # genes, n-1 join-operator genes.
        self._genome_length = 2 * num_tables + 2 * max(0, num_tables - 1)
        self._mutation_probability = (
            mutation_probability
            if mutation_probability is not None
            else 1.0 / max(1, self._genome_length)
        )
        self._population: List[Individual] = []

    # ------------------------------------------------------------ accessors
    @property
    def engine(self) -> str:
        """The plan engine in use (``"arena"`` or ``"object"``)."""
        return self._engine

    @property
    def population(self) -> List[Individual]:
        """The current population (empty before the first step).

        Under the arena engine the entries are :class:`ArenaIndividual`
        (``plan`` is an arena handle; ``cost``/``rank``/``crowding`` behave
        identically).
        """
        return list(self._population)

    @property
    def population_size(self) -> int:
        """Configured population size."""
        return self._population_size

    # ------------------------------------------------------------- protocol
    def step(self) -> None:
        """Run one NSGA-II generation (the first step initializes the population)."""
        if not self._population:
            self._population = [
                self._make_individual(self._random_genome())
                for _ in range(self._population_size)
            ]
            self._assign_ranks_and_crowding(self._population)
        else:
            offspring = self._make_offspring()
            combined = self._population + offspring
            self._population = self._environmental_selection(combined)
        self.statistics.steps += 1

    def frontier(self) -> List[Plan]:
        """Plans of the first non-dominated front of the current population."""
        if not self._population:
            return []
        front = [ind for ind in self._population if ind.rank == 0]
        if self._batch_model is not None:
            arena = self._batch_model.arena
            unique_handles: ParetoFrontier[int] = ParetoFrontier(cost_of=arena.cost)
            unique_handles.insert_all(ind.plan for ind in front)
            return arena.to_plans(unique_handles.items())
        unique: ParetoFrontier[Plan] = ParetoFrontier(cost_of=lambda plan: plan.cost)
        unique.insert_all(ind.plan for ind in front)
        return unique.items()

    # -------------------------------------------------------------- encoding
    def _random_genome(self) -> Genome:
        num_tables = self.query.num_tables
        genes: List[int] = []
        for i in range(num_tables):
            genes.append(self._rng.randrange(num_tables - i))
        for _ in range(max(0, num_tables - 1)):
            genes.append(self._rng.randrange(2))
        for _ in range(num_tables):
            genes.append(self._rng.randrange(1024))
        for _ in range(max(0, num_tables - 1)):
            genes.append(self._rng.randrange(1024))
        return tuple(genes)

    def _gene_range(self, position: int) -> int:
        """Exclusive upper bound of the gene value at ``position``."""
        num_tables = self.query.num_tables
        if position < num_tables:
            return num_tables - position
        if position < num_tables + max(0, num_tables - 1):
            return 2
        return 1024

    def _genome_layout(
        self, genome: Genome
    ) -> Tuple[List[int], Genome, Genome, Genome]:
        """Split a genome into (table order, commute, scan, join genes).

        The one place the chromosome layout is interpreted — both plan
        engines decode through it, so the encodings cannot drift apart.
        """
        num_tables = self.query.num_tables
        order_genes = genome[:num_tables]
        commute_genes = genome[num_tables : num_tables + max(0, num_tables - 1)]
        scan_genes = genome[
            num_tables + max(0, num_tables - 1) : 2 * num_tables + max(0, num_tables - 1)
        ]
        join_genes = genome[2 * num_tables + max(0, num_tables - 1) :]
        remaining = list(range(num_tables))
        order: List[int] = []
        for gene in order_genes:
            order.append(remaining.pop(gene % len(remaining)))
        return order, commute_genes, scan_genes, join_genes

    def decode(self, genome: Genome) -> Plan:
        """Decode a genome into a plan (public for tests and analysis)."""
        if self._batch_model is not None:
            return self._batch_model.arena.to_plan(self._decode_handle(genome))
        order, commute_genes, scan_genes, join_genes = self._genome_layout(genome)
        factory = self.cost_model
        scan_ops = factory.scan_operators(order[0])
        plan: Plan = factory.make_scan(order[0], scan_ops[scan_genes[0] % len(scan_ops)])
        for position, table_index in enumerate(order[1:], start=1):
            scan_ops = factory.scan_operators(table_index)
            scan = factory.make_scan(
                table_index, scan_ops[scan_genes[position] % len(scan_ops)]
            )
            if commute_genes[position - 1] % 2 == 0:
                outer, inner = plan, scan
            else:
                outer, inner = scan, plan
            join_ops = factory.join_operators(outer, inner)
            operator = join_ops[join_genes[position - 1] % len(join_ops)]
            plan = factory.make_join(outer, inner, operator)
        return plan

    def _decode_handle(self, genome: Genome) -> int:
        """Decode a genome on the columnar engine (same plan, a handle)."""
        order, commute_genes, scan_genes, join_genes = self._genome_layout(genome)
        model = self._batch_model
        assert model is not None
        scan_codes = model.scan_codes(order[0])
        plan = model.make_scan(order[0], scan_codes[scan_genes[0] % len(scan_codes)])
        for position, table_index in enumerate(order[1:], start=1):
            scan_codes = model.scan_codes(table_index)
            scan = model.make_scan(
                table_index, scan_codes[scan_genes[position] % len(scan_codes)]
            )
            if commute_genes[position - 1] % 2 == 0:
                outer, inner = plan, scan
            else:
                outer, inner = scan, plan
            join_codes = model.join_codes_for(inner)
            plan = model.make_join(
                outer, inner, join_codes[join_genes[position - 1] % len(join_codes)]
            )
        return plan

    def _make_individual(self, genome: Genome) -> Individual:
        if self._batch_model is not None:
            handle = self._decode_handle(genome)
            arena = self._batch_model.arena
            self.statistics.plans_built += arena.num_nodes(handle)
            return ArenaIndividual(
                genome=genome, plan=handle, cost=arena.cost(handle)
            )
        plan = self.decode(genome)
        self.statistics.plans_built += plan.num_nodes
        return Individual(genome=genome, plan=plan)

    # ------------------------------------------------------------ variation
    def _make_offspring(self) -> List[Individual]:
        offspring: List[Individual] = []
        while len(offspring) < self._population_size:
            parent_a = self._tournament()
            parent_b = self._tournament()
            child_a, child_b = self._crossover(parent_a.genome, parent_b.genome)
            offspring.append(self._make_individual(self._mutate(child_a)))
            if len(offspring) < self._population_size:
                offspring.append(self._make_individual(self._mutate(child_b)))
        return offspring

    def _tournament(self) -> Individual:
        first = self._rng.choice(self._population)
        second = self._rng.choice(self._population)
        return first if self._crowded_better(first, second) else second

    @staticmethod
    def _crowded_better(first: Individual, second: Individual) -> bool:
        if first.rank != second.rank:
            return first.rank < second.rank
        return first.crowding > second.crowding

    def _crossover(self, first: Genome, second: Genome) -> Tuple[Genome, Genome]:
        if self._rng.random() > self._crossover_probability or len(first) < 2:
            return first, second
        point = self._rng.randrange(1, len(first))
        child_a = first[:point] + second[point:]
        child_b = second[:point] + first[point:]
        return child_a, child_b

    def _mutate(self, genome: Genome) -> Genome:
        genes = list(genome)
        for position in range(len(genes)):
            if self._rng.random() < self._mutation_probability:
                genes[position] = self._rng.randrange(self._gene_range(position))
        return tuple(genes)

    # ------------------------------------------------- environmental selection
    def _environmental_selection(self, combined: List[Individual]) -> List[Individual]:
        fronts = self._fast_non_dominated_sort(combined)
        next_population: List[Individual] = []
        for front in fronts:
            self._assign_crowding(front)
            if len(next_population) + len(front) <= self._population_size:
                next_population.extend(front)
            else:
                remaining = self._population_size - len(next_population)
                front.sort(key=lambda ind: ind.crowding, reverse=True)
                next_population.extend(front[:remaining])
                break
        return next_population

    def _assign_ranks_and_crowding(self, population: List[Individual]) -> None:
        for front in self._fast_non_dominated_sort(population):
            self._assign_crowding(front)

    @staticmethod
    def _fast_non_dominated_sort(
        population: List[Individual],
    ) -> List[List[Individual]]:
        """Non-dominated sort on the vectorized dominance kernel.

        One ``strictly_dominates_matrix`` call replaces the O(n²) per-pair
        Python loop; fronts are then peeled by subtracting the dominator
        counts of each front from the remainder.  Front membership, ranks,
        and — critically for downstream tie-breaking — the order of
        individuals *within* each front are identical to
        :meth:`_fast_non_dominated_sort_scalar`, the pure-Python
        specification this is property-tested against: the scalar algorithm
        appends an individual to the next front the moment its last
        remaining dominator is processed, so the vectorized peel orders each
        front by (position of the last dominator in the previous front,
        population index).
        """
        if not population:
            return []
        if len(population) >= INDEXED_SORT_MIN_POPULATION:
            return NSGA2Optimizer._fast_non_dominated_sort_indexed(population)
        costs = np.asarray([ind.cost for ind in population], dtype=np.float64)
        dominates = strictly_dominates_matrix(costs, costs)  # [i, j] = i ≺ j
        remaining = dominates.sum(axis=0).astype(np.int64)  # dominators of j
        fronts: List[List[Individual]] = []
        current = np.flatnonzero(remaining == 0)  # ascending, like the scalar path
        rank = 0
        while current.size:
            for index in current:
                population[index].rank = rank
            fronts.append([population[index] for index in current])
            dominated = dominates[current]  # (front size, n)
            remaining[current] = -1  # assigned sentinels can never reach zero again
            remaining = remaining - dominated.sum(axis=0)
            candidates = np.flatnonzero(remaining == 0)
            if candidates.size:
                in_front = dominated[:, candidates]
                last_dominator = (
                    dominated.shape[0] - 1 - np.argmax(in_front[::-1, :], axis=0)
                )
                current = candidates[np.lexsort((candidates, last_dominator))]
            else:
                current = candidates
            rank += 1
        return fronts

    @staticmethod
    def _fast_non_dominated_sort_indexed(
        population: List[Individual],
    ) -> List[List[Individual]]:
        """Sorted-order non-dominated sort for very large populations.

        An ENS-style sweep in the spirit of the sorted frontier store:
        individuals are processed in lexicographic cost order (dominators
        always precede what they dominate), and each one is placed into the
        first existing front containing no dominator — which is exactly its
        non-domination rank.  This avoids the O(n²) all-pairs dominance
        matrix; only (candidate, placed-front-member) pairs are compared.

        Front membership and ranks equal the matrix-peel algorithm's by
        construction.  The within-front *order* — which downstream stable
        sorts tie-break on — is then reconstructed to match the scalar
        specification: front 0 ascends by population index, and front ``k``
        orders by (position in front ``k-1`` of the member's last dominator
        there, population index), the order in which the scalar peel appends.
        """
        size = len(population)
        costs = np.asarray([ind.cost for ind in population], dtype=np.float64)
        num_metrics = costs.shape[1]
        order = np.lexsort(
            tuple(costs[:, metric] for metric in reversed(range(num_metrics)))
        ) if num_metrics else np.arange(size)
        front_members: List[List[int]] = []
        front_costs: List[np.ndarray] = []
        front_counts: List[int] = []
        for index in order.tolist():
            cost = costs[index]
            placed = False
            for front in range(len(front_members)):
                rows = front_costs[front][: front_counts[front]]
                dominated = bool(
                    (
                        np.all(rows <= cost, axis=1) & np.any(rows < cost, axis=1)
                    ).any()
                )
                if not dominated:
                    placed = True
                    break
            if not placed:
                front = len(front_members)
                front_members.append([])
                front_costs.append(np.empty((8, num_metrics), dtype=np.float64))
                front_counts.append(0)
            members, count = front_members[front], front_counts[front]
            buffer = front_costs[front]
            if count == buffer.shape[0]:
                grown = np.empty((2 * count, num_metrics), dtype=np.float64)
                grown[:count] = buffer
                front_costs[front] = buffer = grown
            buffer[count] = cost
            front_counts[front] = count + 1
            members.append(index)
        # Reconstruct the scalar peel's within-front order front by front.
        fronts: List[List[Individual]] = []
        previous: np.ndarray | None = None
        for rank, members in enumerate(front_members):
            candidates = np.asarray(sorted(members), dtype=np.int64)
            if previous is None:
                current = candidates
            else:
                dominated_by = strictly_dominates_matrix(
                    costs[previous], costs[candidates]
                )
                last_dominator = (
                    dominated_by.shape[0]
                    - 1
                    - np.argmax(dominated_by[::-1, :], axis=0)
                )
                current = candidates[np.lexsort((candidates, last_dominator))]
            for index in current.tolist():
                population[index].rank = rank
            fronts.append([population[index] for index in current.tolist()])
            previous = current
        return fronts

    @staticmethod
    def _fast_non_dominated_sort_scalar(
        population: List[Individual],
    ) -> List[List[Individual]]:
        """Pure-Python reference (the specification of the vectorized sort)."""
        dominated_by: Dict[int, List[int]] = {i: [] for i in range(len(population))}
        domination_count = [0] * len(population)
        fronts: List[List[int]] = [[]]
        for i, first in enumerate(population):
            for j, second in enumerate(population):
                if i == j:
                    continue
                if strictly_dominates(first.cost, second.cost):
                    dominated_by[i].append(j)
                elif strictly_dominates(second.cost, first.cost):
                    domination_count[i] += 1
            if domination_count[i] == 0:
                population[i].rank = 0
                fronts[0].append(i)
        current = 0
        while fronts[current]:
            next_front: List[int] = []
            for i in fronts[current]:
                for j in dominated_by[i]:
                    domination_count[j] -= 1
                    if domination_count[j] == 0:
                        population[j].rank = current + 1
                        next_front.append(j)
            current += 1
            fronts.append(next_front)
        return [[population[i] for i in front] for front in fronts if front]

    @staticmethod
    def _assign_crowding(front: List[Individual]) -> None:
        """Crowding distances via stable argsort instead of per-metric list sorts.

        Reproduces :meth:`_assign_crowding_scalar` exactly, including its
        side effect on the caller's list: the scalar code re-sorts ``front``
        in place per metric (stable, so ties keep the order left by the
        previous metric), and environmental selection later relies on that
        final order for truncation tie-breaking.  The vectorized version
        chains stable argsorts over the same keys and reorders ``front`` to
        the order after the last metric.
        """
        if not front:
            return
        costs = np.asarray([ind.cost for ind in front], dtype=np.float64)
        size, num_metrics = costs.shape
        crowding = np.zeros(size, dtype=np.float64)
        order = np.arange(size)
        for metric in range(num_metrics):
            order = order[np.argsort(costs[order, metric], kind="stable")]
            column = costs[order, metric]
            crowding[order[0]] = np.inf
            crowding[order[-1]] = np.inf
            span = column[-1] - column[0]
            if span <= 0:
                continue
            if size > 2:
                crowding[order[1:-1]] += (column[2:] - column[:-2]) / span
        originals = list(front)
        for index, individual in enumerate(originals):
            individual.crowding = float(crowding[index])
        front[:] = [originals[index] for index in order]

    @staticmethod
    def _assign_crowding_scalar(front: List[Individual]) -> None:
        """Pure-Python reference (the specification of the vectorized crowding)."""
        if not front:
            return
        for individual in front:
            individual.crowding = 0.0
        num_metrics = len(front[0].cost)
        for metric in range(num_metrics):
            front.sort(key=lambda ind: ind.cost[metric])
            front[0].crowding = float("inf")
            front[-1].crowding = float("inf")
            span = front[-1].cost[metric] - front[0].cost[metric]
            if span <= 0:
                continue
            for position in range(1, len(front) - 1):
                gap = front[position + 1].cost[metric] - front[position - 1].cost[metric]
                front[position].crowding += gap / span
