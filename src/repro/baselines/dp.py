"""DP(α) — dynamic-programming approximation schemes.

The paper compares against the approximation schemes of its predecessor
(Trummer & Koch, SIGMOD 2014): bottom-up dynamic programming over table
subsets where, for every subset, an α-approximate Pareto set of partial plans
is kept instead of the full Pareto set.  Choosing a large α makes the scheme
fast but imprecise (``DP(Infinity)`` keeps a single plan per subset and
output format); α close to one approaches the exhaustive multi-objective DP.

To honour the *overall* approximation guarantee, the per-subset pruning
factor is ``α^(1/(n-1))`` (errors compound once per join level, and a plan
for ``n`` tables has ``n - 1`` joins), following the approach of the
original approximation scheme.

The optimizer is anytime in the weak sense of the paper's evaluation: it
exposes ``step()`` processing a bounded batch of subset-combination tasks,
but its :meth:`frontier` stays empty until the full table set has been
processed — exactly how the DP baselines behave in Figures 1–7, where they
produce no result for larger queries within the time budget.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterator, List, Tuple

from repro.core.interface import AnytimeOptimizer
from repro.core.plan_cache import PlanCache
from repro.cost.model import MultiObjectiveCostModel
from repro.plans.plan import Plan

#: Cap used in place of an infinite approximation factor so that arithmetic
#: with zero-valued cost components stays well defined.
_ALPHA_CAP = 1e12


class DPOptimizer(AnytimeOptimizer):
    """Multi-objective dynamic programming with α-approximate pruning.

    Parameters
    ----------
    cost_model:
        Cost model / plan factory for the query.
    alpha:
        Overall approximation-factor target (≥ 1); ``float('inf')`` keeps a
        single plan per subset and output format.
    tasks_per_step:
        Number of subset-combination tasks processed per :meth:`step` call;
        bounds the work done between anytime checkpoints.
    """

    def __init__(
        self,
        cost_model: MultiObjectiveCostModel,
        alpha: float = 2.0,
        tasks_per_step: int = 50,
    ) -> None:
        super().__init__(cost_model)
        if alpha < 1.0:
            raise ValueError(f"approximation factor must be at least 1, got {alpha}")
        if tasks_per_step < 1:
            raise ValueError("tasks_per_step must be positive")
        self.name = f"DP({self._format_alpha(alpha)})"
        self._alpha = min(alpha, _ALPHA_CAP)
        self._tasks_per_step = tasks_per_step
        self._cache = PlanCache()
        self._tasks = self._task_generator()
        self._finished = False
        num_joins = max(1, cost_model.query.num_tables - 1)
        if self._alpha >= _ALPHA_CAP:
            self._level_alpha = _ALPHA_CAP
        else:
            self._level_alpha = self._alpha ** (1.0 / num_joins)

    # ------------------------------------------------------------ accessors
    @property
    def alpha(self) -> float:
        """Overall approximation-factor target."""
        return self._alpha

    @property
    def level_alpha(self) -> float:
        """Per-join pruning factor derived from the overall target."""
        return self._level_alpha

    @property
    def plan_cache(self) -> PlanCache:
        """The DP table: partial plans per table subset."""
        return self._cache

    @property
    def finished(self) -> bool:
        """Whether every subset has been processed."""
        return self._finished

    # ------------------------------------------------------------- protocol
    def step(self) -> None:
        """Process a bounded batch of subset-combination tasks."""
        if self._finished:
            return
        for _ in range(self._tasks_per_step):
            try:
                left, right = next(self._tasks)
            except StopIteration:
                self._finished = True
                break
            self._combine(left, right)
        self.statistics.steps += 1

    def frontier(self) -> List[Plan]:
        """Plans for the full query table set (empty until DP completes it)."""
        return self._cache.plans(self.query.relations)

    # ------------------------------------------------------------ internals
    def _task_generator(self) -> Iterator[Tuple[FrozenSet[int], FrozenSet[int]]]:
        """Lazily yield (outer set, inner set) combination tasks, bottom-up.

        Single-table subsets are seeded with scan plans before any join task
        of the corresponding size is emitted.  Subsets are enumerated by
        increasing size so that all sub-results exist when a task runs.
        """
        tables = sorted(self.query.relations)
        for table_index in tables:
            self._seed_scans(table_index)
        for size in range(2, len(tables) + 1):
            for subset in combinations(tables, size):
                subset_set = frozenset(subset)
                # Enumerate every ordered split into two non-empty parts.
                for left_size in range(1, size):
                    for left in combinations(subset, left_size):
                        left_set = frozenset(left)
                        right_set = subset_set - left_set
                        yield left_set, right_set

    def _seed_scans(self, table_index: int) -> None:
        for operator in self.cost_model.scan_operators(table_index):
            plan = self.cost_model.make_scan(table_index, operator)
            self.statistics.plans_built += 1
            self._cache.insert(plan, self._level_alpha)

    def _combine(self, left: FrozenSet[int], right: FrozenSet[int]) -> None:
        outer_plans = self._cache.plans(left)
        inner_plans = self._cache.plans(right)
        for outer in outer_plans:
            for inner in inner_plans:
                for operator in self.cost_model.join_operators(outer, inner):
                    candidate = self.cost_model.make_join(outer, inner, operator)
                    self.statistics.plans_built += 1
                    self._cache.insert(candidate, self._level_alpha)

    @staticmethod
    def _format_alpha(alpha: float) -> str:
        if alpha == float("inf"):
            return "Infinity"
        if alpha == int(alpha):
            return str(int(alpha))
        return f"{alpha:g}"
