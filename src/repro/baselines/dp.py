"""DP(α) — dynamic-programming approximation schemes.

The paper compares against the approximation schemes of its predecessor
(Trummer & Koch, SIGMOD 2014): bottom-up dynamic programming over table
subsets where, for every subset, an α-approximate Pareto set of partial plans
is kept instead of the full Pareto set.  Choosing a large α makes the scheme
fast but imprecise (``DP(Infinity)`` keeps a single plan per subset and
output format); α close to one approaches the exhaustive multi-objective DP.

To honour the *overall* approximation guarantee, the per-subset pruning
factor is ``α^(1/(n-1))`` (errors compound once per join level, and a plan
for ``n`` tables has ``n - 1`` joins), following the approach of the
original approximation scheme.

Two engines implement the scheme:

* :class:`DPOptimizer` — the original ``Plan``-object implementation, kept
  as the property-tested scalar reference;
* :class:`ArenaDPOptimizer` — the columnar engine: subsets are int bitsets,
  the (left, right) splits of a subset are enumerated as NumPy index
  arrays, and each split's candidate joins (cross product of the two cached
  sub-frontiers × applicable operators) are costed and pruned through
  :meth:`~repro.cost.batch.BatchCostModel.join_candidates_multi` /
  :meth:`~repro.core.plan_cache.ArenaPlanCache.insert_candidates` in whole
  array passes.  Frontiers, statistics, and step boundaries are
  bit-identical to the object engine (``tests/test_dp_arena.py``).  A
  ``backend="coordinator"`` path additionally shards each subset level
  across lease-based workers (see :mod:`repro.dist.dp`), still bit-identical
  — including under injected worker death and warm/cold task caches.

:func:`make_dp_optimizer` picks the engine through the library-wide
``engine=`` / ``REPRO_PLAN_ENGINE`` convention (arena by default).

Both optimizers are anytime in the weak sense of the paper's evaluation:
``step()`` processes a bounded batch of subset-combination tasks, but
:meth:`frontier` stays empty until the full table set has been processed —
exactly how the DP baselines behave in Figures 1–7, where they produce no
result for larger queries within the time budget.
"""

from __future__ import annotations

import weakref
from itertools import combinations
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.interface import AnytimeOptimizer
from repro.core.plan_cache import ArenaPlanCache, PlanCache
from repro.cost.batch import BatchCostModel
from repro.cost.model import MultiObjectiveCostModel
from repro.obs import get_tracer, global_metrics
from repro.plans.arena import resolve_plan_engine
from repro.plans.operators import JoinOperator
from repro.plans.plan import Plan

if TYPE_CHECKING:  # pragma: no cover - imports for type checking only
    from repro.dist.cache import TaskCache
    from repro.dist.dp import DPLease

#: Cap used in place of an infinite approximation factor so that arithmetic
#: with zero-valued cost components stays well defined.
_ALPHA_CAP = 1e12

#: Execution backends of the arena DP engine.
DP_BACKENDS = ("sequential", "coordinator")

#: Beyond this many tables the NumPy int64 split enumeration would overflow
#: (bit 63 is the sign bit); larger queries fall back to Python-int bitsets.
_MAX_NUMPY_BITS = 62


def _format_alpha(alpha: float) -> str:
    if alpha == float("inf"):
        return "Infinity"
    if alpha == int(alpha):
        return str(int(alpha))
    return f"{alpha:g}"


def _level_alpha_for(alpha: float, num_tables: int) -> float:
    """Per-join pruning factor whose compounding meets the overall target."""
    if alpha >= _ALPHA_CAP:
        return _ALPHA_CAP
    num_joins = max(1, num_tables - 1)
    return alpha ** (1.0 / num_joins)


def _validate_parameters(alpha: float, tasks_per_step: int) -> None:
    if alpha < 1.0:
        raise ValueError(f"approximation factor must be at least 1, got {alpha}")
    if tasks_per_step < 1:
        raise ValueError("tasks_per_step must be positive")


class DPOptimizer(AnytimeOptimizer):
    """Multi-objective dynamic programming with α-approximate pruning.

    This is the object-engine reference implementation; see
    :class:`ArenaDPOptimizer` for the vectorized twin and
    :func:`make_dp_optimizer` for engine selection.

    Parameters
    ----------
    cost_model:
        Cost model / plan factory for the query.
    alpha:
        Overall approximation-factor target (≥ 1); ``float('inf')`` keeps a
        single plan per subset and output format.
    tasks_per_step:
        Number of subset-combination tasks processed per :meth:`step` call;
        bounds the work done between anytime checkpoints.
    """

    def __init__(
        self,
        cost_model: MultiObjectiveCostModel,
        alpha: float = 2.0,
        tasks_per_step: int = 50,
    ) -> None:
        super().__init__(cost_model)
        _validate_parameters(alpha, tasks_per_step)
        self.name = f"DP({_format_alpha(alpha)})"
        self._alpha = min(alpha, _ALPHA_CAP)
        self._tasks_per_step = tasks_per_step
        self._cache = PlanCache()
        self._finished = False
        self._level_alpha = _level_alpha_for(self._alpha, cost_model.query.num_tables)
        # Operator applicability depends only on the two input formats, so
        # level sweeps memoize the library lookup per format pair instead of
        # re-deriving it for every candidate plan pair.
        self._join_operators_memo: Dict[object, Tuple[JoinOperator, ...]] = {}
        # Scan plans are seeded at construction — identically ordered in
        # both engines — so their ``plans_built`` are charged here, not to
        # whichever step() happens to pull the first generator item.
        for table_index in sorted(self.query.relations):
            self._seed_scans(table_index)
        self._tasks = self._task_generator()

    # ------------------------------------------------------------ accessors
    @property
    def alpha(self) -> float:
        """Overall approximation-factor target."""
        return self._alpha

    @property
    def level_alpha(self) -> float:
        """Per-join pruning factor derived from the overall target."""
        return self._level_alpha

    @property
    def plan_cache(self) -> PlanCache:
        """The DP table: partial plans per table subset."""
        return self._cache

    @property
    def finished(self) -> bool:
        """Whether every subset has been processed."""
        return self._finished

    # ------------------------------------------------------------- protocol
    def step(self) -> None:
        """Process a bounded batch of subset-combination tasks."""
        if self._finished:
            return
        for _ in range(self._tasks_per_step):
            try:
                left, right = next(self._tasks)
            except StopIteration:
                self._finished = True
                break
            self._combine(left, right)
        self.statistics.steps += 1

    def frontier(self) -> List[Plan]:
        """Plans for the full query table set (empty until DP completes it)."""
        return self._cache.plans(self.query.relations)

    # ------------------------------------------------------------ internals
    def _task_generator(self) -> Iterator[Tuple[FrozenSet[int], FrozenSet[int]]]:
        """Lazily yield (outer set, inner set) combination tasks, bottom-up.

        Subsets are enumerated by increasing size so that all sub-results
        exist when a task runs (single-table subsets were seeded with scan
        plans at construction).
        """
        tables = sorted(self.query.relations)
        for size in range(2, len(tables) + 1):
            for subset in combinations(tables, size):
                subset_set = frozenset(subset)
                # Enumerate every ordered split into two non-empty parts.
                for left_size in range(1, size):
                    for left in combinations(subset, left_size):
                        left_set = frozenset(left)
                        right_set = subset_set - left_set
                        yield left_set, right_set

    def _seed_scans(self, table_index: int) -> None:
        for operator in self.cost_model.scan_operators(table_index):
            plan = self.cost_model.make_scan(table_index, operator)
            self.statistics.plans_built += 1
            self._cache.insert(plan, self._level_alpha)

    def _join_operators(self, outer: Plan, inner: Plan) -> Tuple[JoinOperator, ...]:
        key = (outer.output_format, inner.output_format)
        operators = self._join_operators_memo.get(key)
        if operators is None:
            operators = tuple(self.cost_model.join_operators(outer, inner))
            self._join_operators_memo[key] = operators
        return operators

    def _combine(self, left: FrozenSet[int], right: FrozenSet[int]) -> None:
        outer_plans = self._cache.plans(left)
        inner_plans = self._cache.plans(right)
        for outer in outer_plans:
            for inner in inner_plans:
                for operator in self._join_operators(outer, inner):
                    candidate = self.cost_model.make_join(outer, inner, operator)
                    self.statistics.plans_built += 1
                    self._cache.insert(candidate, self._level_alpha)

    @staticmethod
    def _format_alpha(alpha: float) -> str:
        return _format_alpha(alpha)


class _SubsetCursor:
    """Enumeration state of one partially processed subset."""

    __slots__ = ("bits", "rel", "lefts", "index")

    def __init__(self, bits: int, rel: FrozenSet[int], lefts: List[int]) -> None:
        self.bits = bits
        self.rel = rel
        self.lefts = lefts
        self.index = 0


class ArenaDPOptimizer(AnytimeOptimizer):
    """The vectorized subset-lattice DP over the columnar plan arena.

    Subsets are int bitsets (bit ``t`` ⇔ table ``t``); within a subset, the
    left sides of all ordered splits are computed as one NumPy gather over
    cached combination-position matrices, and each split's candidate joins
    are costed through the whole-level batch kernels of
    :class:`~repro.cost.batch.BatchCostModel` and pruned through
    :class:`~repro.core.plan_cache.ArenaPlanCache` at ``level_alpha`` —
    decision-identical to the object engine's per-candidate loop, at a
    fraction of the per-candidate cost.

    Parameters
    ----------
    cost_model / alpha / tasks_per_step:
        As for :class:`DPOptimizer`; ``step()`` boundaries, statistics, and
        frontiers are bit-identical between the two.
    backend:
        ``"sequential"`` (default) computes each level in process;
        ``"coordinator"`` shards the subsets of each level as pure leaf
        tasks across lease-based workers (:mod:`repro.dist.dp`) and replays
        the recorded per-split decisions in canonical order, so results do
        not depend on the worker count or on worker failures.
    workers:
        Worker threads of the coordinator backend.
    task_cache:
        Optional :class:`~repro.dist.cache.TaskCache` holding per-subset DP
        results keyed by provenance hash (coordinator backend only); a warm
        cache replays a level without computing anything.
    lease_timeout:
        Seconds before the coordinator reclaims an uncompleted lease.
    on_lease:
        Optional hook called with every granted lease before execution —
        the fault-injection seam used by the tests.
    """

    def __init__(
        self,
        cost_model: MultiObjectiveCostModel,
        alpha: float = 2.0,
        tasks_per_step: int = 50,
        backend: str = "sequential",
        workers: int = 1,
        task_cache: "Optional[TaskCache]" = None,
        lease_timeout: float = 300.0,
        on_lease: "Optional[Callable[[DPLease], None]]" = None,
    ) -> None:
        super().__init__(cost_model)
        _validate_parameters(alpha, tasks_per_step)
        if backend not in DP_BACKENDS:
            raise ValueError(
                f"unknown DP backend {backend!r}; expected one of {DP_BACKENDS}"
            )
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.name = f"DP({_format_alpha(alpha)})"
        self._alpha = min(alpha, _ALPHA_CAP)
        self._tasks_per_step = tasks_per_step
        self._level_alpha = _level_alpha_for(self._alpha, cost_model.query.num_tables)
        self._backend = backend
        self._workers = workers
        self._task_cache = task_cache
        self._lease_timeout = lease_timeout
        self._on_lease = on_lease
        self._batch_model = BatchCostModel(cost_model)
        self._cache = ArenaPlanCache(self._batch_model)
        self._finished = False
        self._tables: List[int] = sorted(self.query.relations)
        self._num_tables = len(self._tables)
        # bits -> frozenset memo; every subset registers itself when its
        # level loads it, so split lookups are dictionary reads.
        self._sets: Dict[int, FrozenSet[int]] = {}
        # (subset size, left size) -> combination-position matrix.
        self._split_positions_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self._seed_scans()
        self._level = 1
        self._level_iter: Iterator[Tuple[int, ...]] = iter(())
        self._current: Optional[_SubsetCursor] = None
        # Coordinator state: current level's packed per-subset decisions
        # (bits -> SubsetEffects) and split lists.
        self._level_effects: Optional[Dict[int, object]] = None
        self._level_splits: Optional[Dict[int, List[int]]] = None
        # The shared-memory task fabric (coordinator backend only): a
        # persistent worker-process pool plus published arena/frontier
        # segments.  ``create`` declines (None) on unsupported setups —
        # forced ``REPRO_DP_FABRIC=threads``, > 62 tables, no fork — and
        # the level computation then runs on in-process threads instead,
        # bit-identically.  Created before any worker thread exists so the
        # pool never forks a threaded process.
        self._fabric = None
        self._fabric_finalizer = None
        if backend == "coordinator":
            from repro.dist.shm import ShmTaskFabric

            self._fabric = ShmTaskFabric.create(self._batch_model, workers)
            if self._fabric is not None:
                self._fabric_finalizer = weakref.finalize(
                    self, ShmTaskFabric.close, self._fabric
                )

    # ------------------------------------------------------------ accessors
    @property
    def alpha(self) -> float:
        """Overall approximation-factor target."""
        return self._alpha

    @property
    def level_alpha(self) -> float:
        """Per-join pruning factor derived from the overall target."""
        return self._level_alpha

    @property
    def backend(self) -> str:
        """Execution backend (``"sequential"`` or ``"coordinator"``)."""
        return self._backend

    @property
    def plan_cache(self) -> ArenaPlanCache:
        """The DP table: partial-plan handles per table subset."""
        return self._cache

    @property
    def batch_model(self) -> BatchCostModel:
        """The arena-backed cost model the DP builds plans with."""
        return self._batch_model

    @property
    def finished(self) -> bool:
        """Whether every subset has been processed."""
        return self._finished

    # ------------------------------------------------------------- protocol
    def step(self) -> None:
        """Process a bounded batch of subset-combination tasks."""
        if self._finished:
            return
        remaining = self._tasks_per_step
        while remaining > 0:
            chunk = self._next_chunk(remaining)
            if chunk is None:
                self._finished = True
                self.close()
                break
            self._process_chunk(chunk)
            remaining -= sum(len(lefts) for _, _, lefts, _ in chunk)
        self.statistics.steps += 1

    def close(self) -> None:
        """Release the shared-memory fabric (pool + segments).  Idempotent.

        Runs automatically when the DP finishes and again from a finalizer
        when the optimizer is garbage collected, so segments never outlive
        their run even on error paths.
        """
        if self._fabric is not None:
            self._fabric.close()
            self._fabric = None
        if self._fabric_finalizer is not None:
            self._fabric_finalizer.detach()
            self._fabric_finalizer = None

    def frontier(self) -> List[Plan]:
        """Plans for the full query table set (empty until DP completes it)."""
        return self._cache.plans(self.query.relations)

    # ----------------------------------------------------------- enumeration
    def _seed_scans(self) -> None:
        """Seed single-table frontiers, identically ordered to the object engine."""
        batch_model = self._batch_model
        cache = self._cache
        level_alpha = self._level_alpha
        for table_index in self._tables:
            self._sets[1 << table_index] = frozenset((table_index,))
            for op_code in batch_model.scan_codes(table_index):
                handle = batch_model.make_scan(table_index, op_code)
                self.statistics.plans_built += 1
                cache.insert(handle, level_alpha)

    def _split_positions(self, size: int, left_size: int) -> np.ndarray:
        key = (size, left_size)
        positions = self._split_positions_cache.get(key)
        if positions is None:
            positions = np.fromiter(
                (
                    position
                    for combination in combinations(range(size), left_size)
                    for position in combination
                ),
                dtype=np.int64,
            ).reshape(-1, left_size)
            self._split_positions_cache[key] = positions
        return positions

    def _left_bits_of(self, subset: Tuple[int, ...]) -> List[int]:
        """Left-side bitsets of all ordered splits, in scalar-loop order.

        The object engine enumerates ``for left_size: for left in
        combinations(subset, left_size)``; gathering the subset's member
        bits through the cached position matrix of ``(size, left_size)``
        reproduces exactly that order (the subset tuple is ascending, and
        each row's bits are distinct, so the row sum equals the bit OR).
        """
        size = len(subset)
        if self._num_tables <= _MAX_NUMPY_BITS:
            member_bits = np.array([1 << t for t in subset], dtype=np.int64)
            parts = [
                member_bits[self._split_positions(size, left_size)].sum(axis=1)
                for left_size in range(1, size)
            ]
            return np.concatenate(parts).tolist()
        lefts: List[int] = []
        for left_size in range(1, size):
            for left in combinations(subset, left_size):
                bits = 0
                for t in left:
                    bits |= 1 << t
                lefts.append(bits)
        return lefts

    def _subset_bits(self, subset: Tuple[int, ...]) -> int:
        bits = 0
        for t in subset:
            bits |= 1 << t
        return bits

    def _next_chunk(
        self, budget: int
    ) -> Optional[List[Tuple[int, FrozenSet[int], List[int], int]]]:
        """Up to ``budget`` split tasks as ``(bits, rel, lefts, offset)`` runs.

        Returns ``None`` when the lattice is exhausted.  A chunk never
        crosses a level boundary: level L+1 candidates are costed against
        level-≤L frontiers, which must be final — and the coordinator
        backend computes a whole level the moment it is entered, which
        requires every level-L insertion to have been replayed already.
        """
        chunk: List[Tuple[int, FrozenSet[int], List[int], int]] = []
        while budget > 0:
            cursor = self._current
            if cursor is None:
                subset = next(self._level_iter, None)
                if subset is None:
                    if chunk:
                        return chunk
                    if self._level >= self._num_tables:
                        return None
                    self._level += 1
                    self._level_iter = combinations(self._tables, self._level)
                    if self._backend == "coordinator":
                        self._compute_level(self._level)
                    continue
                bits = self._subset_bits(subset)
                rel = frozenset(subset)
                self._sets[bits] = rel
                if self._level_splits is not None:
                    lefts = self._level_splits[bits]
                else:
                    lefts = self._left_bits_of(subset)
                cursor = _SubsetCursor(bits, rel, lefts)
                self._current = cursor
            take = min(budget, len(cursor.lefts) - cursor.index)
            chunk.append(
                (
                    cursor.bits,
                    cursor.rel,
                    cursor.lefts[cursor.index : cursor.index + take],
                    cursor.index,
                )
            )
            cursor.index += take
            if cursor.index >= len(cursor.lefts):
                self._current = None
            budget -= take
        return chunk

    # ------------------------------------------------------------ processing
    def _process_chunk(
        self, chunk: List[Tuple[int, FrozenSet[int], List[int], int]]
    ) -> None:
        if self._level_effects is not None:
            self._replay_chunk(chunk)
            return
        cache = self._cache
        sets = self._sets
        pairs: List[Tuple[List[int], List[int]]] = []
        rows: List[Tuple[FrozenSet[int], List[int], List[int]]] = []
        for bits, rel, lefts, _offset in chunk:
            for left_bits in lefts:
                outer_handles = cache.handles(sets[left_bits])
                inner_handles = cache.handles(sets[bits ^ left_bits])
                pairs.append((outer_handles, inner_handles))
                rows.append((rel, outer_handles, inner_handles))
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("dp.kernel", splits=len(pairs)):
                batches = self._batch_model.join_candidates_multi(pairs)
        else:
            batches = self._batch_model.join_candidates_multi(pairs)
        level_alpha = self._level_alpha
        statistics = self.statistics
        candidates = 0
        for (rel, outer_handles, inner_handles), batch in zip(rows, batches):
            statistics.plans_built += batch.size
            candidates += batch.size
            cache.insert_candidates(
                rel, batch, outer_handles, inner_handles, level_alpha
            )
        global_metrics().add("dp.candidates", candidates)

    def _replay_chunk(
        self, chunk: List[Tuple[int, FrozenSet[int], List[int], int]]
    ) -> None:
        """Apply a level's recorded per-split decisions in canonical order.

        Replaying the accepted candidate subsequence through ``insert()``
        reproduces the sequential engine's cache state exactly: rejected
        candidates have no side effects, and each accept/evict decision
        recomputes identically on identical frontier state.
        """
        assert self._level_effects is not None
        cache = self._cache
        sets = self._sets
        arena = self._batch_model.arena
        statistics = self.statistics
        replayed = 0
        for bits, rel, lefts, offset in chunk:
            subset_effects = self._level_effects[bits]
            runs: List[Tuple[np.ndarray, List[int], List[int]]] = []
            for position, left_bits in enumerate(lefts):
                candidate_count, records = subset_effects.split(offset + position)
                statistics.plans_built += candidate_count
                replayed += candidate_count
                if records.shape[0]:
                    runs.append((
                        records,
                        cache.handles(sets[left_bits]),
                        cache.handles(sets[bits ^ left_bits]),
                    ))
            if not runs:
                continue
            handles: List[int] = []
            for records, outer_handles, inner_handles in runs:
                outers = records["outer"].tolist()
                inners = records["inner"].tolist()
                op_codes = records["op"].tolist()
                cardinalities = records["card"].tolist()
                cost_rows = records["cost"]
                for index, op_code in enumerate(op_codes):
                    handles.append(arena.add_join(
                        op_code,
                        outer_handles[outers[index]],
                        inner_handles[inners[index]],
                        cardinalities[index],
                        cost_rows[index],
                    ))
            # The worker already took the (always-true) accept decisions on
            # identical frontier state; replay only needs insert()'s
            # eviction side, batched over this chunk's run of the subset.
            if len(runs) == 1:
                all_records = runs[0][0]
            else:
                all_records = np.concatenate([run[0] for run in runs])
            cache.replay_accept_batch(
                rel,
                handles,
                arena.format_codes_of_ops(all_records["op"]),
                all_records["cost"],
            )
        global_metrics().add("dp.candidates", replayed)

    def _compute_level(self, level: int) -> None:
        """Compute a whole level's split decisions through the coordinator."""
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "dp.level", tables=level, backend=self._backend
            ):
                self._compute_level_inner(level)
        else:
            self._compute_level_inner(level)
        # Cached frontier size when the level's decisions came back (its
        # replay still pending): one gauge write per level.
        global_metrics().gauge("frontier.rows", self._cache.total_plans)

    def _compute_level_inner(self, level: int) -> None:
        from repro.dist.dp import compute_dp_level  # local: avoids an import cycle

        subsets = list(combinations(self._tables, level))
        if self._num_tables <= _MAX_NUMPY_BITS:
            # Warm the position cache before worker threads share it.
            for left_size in range(1, level):
                self._split_positions(level, left_size)
        splits: Dict[int, List[int]] = {}
        for subset in subsets:
            splits[self._subset_bits(subset)] = self._left_bits_of(subset)
        self._level_splits = splits
        if self._fabric is not None:
            # The previous level's frontiers are final the moment its last
            # insertion replayed; queue them for publication (the flush —
            # arena delta plus these handle runs — happens inside
            # compute_dp_level, and only if the level has cache misses).
            for subset in combinations(self._tables, level - 1):
                self._fabric.queue_frontier(
                    self._subset_bits(subset),
                    self._cache.handles_array(frozenset(subset)),
                )
        self._level_effects = compute_dp_level(
            batch_model=self._batch_model,
            cache=self._cache,
            sets=self._sets,
            splits=splits,
            level_alpha=self._level_alpha,
            workers=self._workers,
            task_cache=self._task_cache,
            lease_timeout=self._lease_timeout,
            on_lease=self._on_lease,
            fabric=self._fabric,
        )


def make_dp_optimizer(
    cost_model: MultiObjectiveCostModel,
    alpha: float = 2.0,
    tasks_per_step: int = 50,
    engine: str | None = None,
    backend: str = "sequential",
    workers: int = 1,
    task_cache: "Optional[TaskCache]" = None,
    lease_timeout: float = 300.0,
    on_lease: "Optional[Callable[[DPLease], None]]" = None,
) -> AnytimeOptimizer:
    """Build a DP(α) optimizer on the resolved plan engine.

    ``engine`` follows the library-wide convention: ``None`` falls back to
    the ``REPRO_PLAN_ENGINE`` environment variable and then to ``"arena"``
    (:func:`repro.plans.arena.resolve_plan_engine`).  The coordinator
    backend exists only on the arena engine.
    """
    engine = resolve_plan_engine(engine)
    if engine == "object":
        if backend != "sequential":
            raise ValueError(
                "backend='coordinator' requires the arena engine; "
                "the object engine is the sequential reference"
            )
        return DPOptimizer(cost_model, alpha=alpha, tasks_per_step=tasks_per_step)
    return ArenaDPOptimizer(
        cost_model,
        alpha=alpha,
        tasks_per_step=tasks_per_step,
        backend=backend,
        workers=workers,
        task_cache=task_cache,
        lease_timeout=lease_timeout,
        on_lease=on_lease,
    )
