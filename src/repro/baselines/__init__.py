"""Baseline multi-objective query optimization algorithms.

These are the competitors of the paper's evaluation (Section 6.1):

* ``DP(α)`` — dynamic-programming approximation schemes (Trummer & Koch
  2014), including the exhaustive variant for small α,
* ``II`` — multi-objective generalization of iterative improvement, using the
  same efficient climbing function as RMQ,
* ``SA`` — multi-objective generalization of the SAIO simulated-annealing
  variant of Steinbrunn et al.,
* ``2P`` — two-phase optimization (II followed by SA),
* ``NSGA-II`` — the non-dominated sorting genetic algorithm with the ordinal
  plan encoding and single-point crossover proposed for query optimization.

Two additional sanity baselines are provided (not part of the paper's
figures): a weighted-sum scalarization sweep and pure random plan sampling.

:func:`make_optimizer` builds any algorithm (including RMQ) from its report
name, which is what the benchmark harness uses.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Tuple

from repro.baselines.dp import ArenaDPOptimizer, DPOptimizer, make_dp_optimizer
from repro.baselines.iterative_improvement import IterativeImprovementOptimizer
from repro.baselines.nsga2 import NSGA2Optimizer
from repro.baselines.random_sampling import RandomSamplingOptimizer
from repro.baselines.simulated_annealing import SimulatedAnnealingOptimizer
from repro.baselines.two_phase import TwoPhaseOptimizer
from repro.baselines.weighted_sum import WeightedSumOptimizer
from repro.core.interface import AnytimeOptimizer
from repro.core.rmq import RMQOptimizer
from repro.cost.model import MultiObjectiveCostModel

__all__ = [
    "ArenaDPOptimizer",
    "DPOptimizer",
    "make_dp_optimizer",
    "IterativeImprovementOptimizer",
    "SimulatedAnnealingOptimizer",
    "TwoPhaseOptimizer",
    "NSGA2Optimizer",
    "WeightedSumOptimizer",
    "RandomSamplingOptimizer",
    "make_optimizer",
    "available_algorithms",
    "PAPER_ALGORITHMS",
]

_OptimizerBuilder = Callable[[MultiObjectiveCostModel, random.Random], AnytimeOptimizer]

#: The algorithm names appearing in the paper's figures, in legend order.
PAPER_ALGORITHMS: Tuple[str, ...] = (
    "DP(Infinity)",
    "DP(1000)",
    "DP(2)",
    "SA",
    "2P",
    "NSGA-II",
    "II",
    "RMQ",
)

_REGISTRY: Dict[str, _OptimizerBuilder] = {
    "RMQ": lambda model, rng: RMQOptimizer(model, rng=rng),
    "II": lambda model, rng: IterativeImprovementOptimizer(model, rng=rng),
    "SA": lambda model, rng: SimulatedAnnealingOptimizer(model, rng=rng),
    "2P": lambda model, rng: TwoPhaseOptimizer(model, rng=rng),
    "NSGA-II": lambda model, rng: NSGA2Optimizer(model, rng=rng),
    # DP entries resolve their engine through the engine="arena" /
    # REPRO_PLAN_ENGINE convention, like every arena-backed algorithm.
    "DP(Infinity)": lambda model, rng: make_dp_optimizer(model, alpha=float("inf")),
    "DP(1000)": lambda model, rng: make_dp_optimizer(model, alpha=1000.0),
    "DP(2)": lambda model, rng: make_dp_optimizer(model, alpha=2.0),
    "DP(1.01)": lambda model, rng: make_dp_optimizer(model, alpha=1.01),
    "WeightedSum": lambda model, rng: WeightedSumOptimizer(model, rng=rng),
    "RandomSampling": lambda model, rng: RandomSamplingOptimizer(model, rng=rng),
    # RMQ ablation variants (used by the ablation benchmarks).
    "RMQ-NoCache": lambda model, rng: RMQOptimizer(model, rng=rng, use_plan_cache=False),
    "RMQ-NoClimb": lambda model, rng: RMQOptimizer(model, rng=rng, use_climbing=False),
    "RMQ-LeftDeep": lambda model, rng: RMQOptimizer(model, rng=rng, left_deep_only=True),
    "RMQ-AlphaFixed1": lambda model, rng: RMQOptimizer(
        model, rng=rng, schedule=_constant_schedule(1.0)
    ),
    "RMQ-AlphaFixed25": lambda model, rng: RMQOptimizer(
        model, rng=rng, schedule=_constant_schedule(25.0)
    ),
}


def _constant_schedule(alpha: float):
    """Constant α schedule helper for the ablation registry entries."""
    from repro.core.frontier import AlphaSchedule

    return AlphaSchedule.constant(alpha)


def available_algorithms() -> Tuple[str, ...]:
    """Names accepted by :func:`make_optimizer`."""
    return tuple(sorted(_REGISTRY))


def make_optimizer(
    name: str,
    cost_model: MultiObjectiveCostModel,
    rng: random.Random | None = None,
) -> AnytimeOptimizer:
    """Instantiate an optimizer by its report name (e.g. ``"RMQ"``, ``"DP(2)"``)."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_algorithms())
        raise KeyError(f"unknown algorithm {name!r}; known algorithms: {known}") from None
    return builder(cost_model, rng if rng is not None else random.Random())
