"""II — multi-objective iterative improvement.

The generalization of iterative improvement used as a baseline in the paper
(Section 6.1): each iteration starts from a fresh random plan and walks to a
local Pareto optimum.  It uses the same efficient climbing function as RMQ
(Algorithm 2), as the paper's implementation does.  All local optima are
collected in a non-dominated archive, which is the algorithm's frontier
approximation.

The difference to RMQ is exactly what the paper isolates: II neither varies
operator configurations systematically around the local optimum nor shares
partial plans across iterations through a plan cache.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.interface import AnytimeOptimizer
from repro.core.pareto_climb import ArenaParetoClimber, ParetoClimber
from repro.core.random_plans import ArenaRandomPlanGenerator, RandomPlanGenerator
from repro.cost.batch import BatchCostModel
from repro.cost.model import MultiObjectiveCostModel
from repro.pareto.frontier import ParetoFrontier
from repro.plans.arena import resolve_plan_engine
from repro.plans.plan import Plan
from repro.plans.transformations import TransformationRules


class IterativeImprovementOptimizer(AnytimeOptimizer):
    """Iterative improvement with the fast multi-objective climbing function.

    ``engine`` selects the plan engine (see :mod:`repro.plans.arena`);
    results are identical, only plan representation and speed differ.
    """

    name = "II"

    def __init__(
        self,
        cost_model: MultiObjectiveCostModel,
        rng: random.Random | None = None,
        rules: TransformationRules | None = None,
        engine: str | None = None,
        batch_model: BatchCostModel | None = None,
    ) -> None:
        super().__init__(cost_model)
        self._rng = rng if rng is not None else random.Random()
        self._rules = rules if rules is not None else TransformationRules()
        self._engine = resolve_plan_engine(engine)
        if self._engine == "arena":
            self._batch_model = (
                batch_model if batch_model is not None else BatchCostModel(cost_model)
            )
            arena = self._batch_model.arena
            self._generator = ArenaRandomPlanGenerator(self._batch_model, self._rng)
            self._climber = ArenaParetoClimber(self._batch_model, self._rules)
            self._archive = ParetoFrontier(cost_of=arena.cost)
            self._num_nodes = arena.num_nodes
            self._materialize = arena.to_plans
        else:
            self._batch_model = None
            self._generator = RandomPlanGenerator(cost_model, self._rng)
            self._climber = ParetoClimber(cost_model, self._rules)
            self._archive = ParetoFrontier(cost_of=lambda plan: plan.cost)
            self._num_nodes = lambda plan: plan.num_nodes
            self._materialize = list
        self._path_lengths: List[int] = []

    @property
    def engine(self) -> str:
        """The plan engine in use (``"arena"`` or ``"object"``)."""
        return self._engine

    @property
    def batch_model(self) -> BatchCostModel | None:
        """The shared batch cost model (``None`` under the object engine)."""
        return self._batch_model

    @property
    def climb_path_lengths(self) -> List[int]:
        """Hill-climbing path lengths of all iterations."""
        return list(self._path_lengths)

    def step(self) -> None:
        """One iteration: random plan, climb to a local optimum, archive it."""
        start = self._generator.random_bushy_plan()
        result = self._climber.climb(start)
        self._archive.insert(result.plan)
        self._path_lengths.append(result.path_length)
        self.statistics.steps += 1
        self.statistics.plans_built += result.plans_built + self._num_nodes(start)

    def frontier(self) -> List[Plan]:
        """Non-dominated set of all local optima found so far."""
        return self._materialize(self._archive.items())

    def frontier_refs(self) -> list:
        """The frontier as engine-native items (handles under the arena
        engine, ``Plan`` objects under the object engine) — no
        materialization.  Used by :class:`~repro.baselines.two_phase
        .TwoPhaseOptimizer` to merge archives without building objects."""
        return self._archive.items()
