"""2P — two-phase optimization.

Two-phase optimization (Steinbrunn et al., used as a baseline in Section 6.1)
first runs a limited number of iterative-improvement iterations and then
continues with simulated annealing from the best plan found, with a reduced
initial temperature.  The multi-objective generalization below runs the
multi-objective II for ten iterations (the setting used in the paper) and
seeds the multi-objective SA with a plan chosen from II's archive.
"""

from __future__ import annotations

import random
from typing import List

from repro.baselines.iterative_improvement import IterativeImprovementOptimizer
from repro.baselines.simulated_annealing import SimulatedAnnealingOptimizer
from repro.core.interface import AnytimeOptimizer
from repro.cost.model import MultiObjectiveCostModel
from repro.pareto.frontier import ParetoFrontier
from repro.plans.plan import Plan
from repro.plans.transformations import TransformationRules


class TwoPhaseOptimizer(AnytimeOptimizer):
    """Two-phase optimization: II first, then SA from the best plan found.

    Parameters
    ----------
    cost_model:
        Cost model / plan factory for the query.
    rng:
        Source of randomness.
    improvement_iterations:
        Number of II iterations before switching to SA (the paper follows
        Steinbrunn et al. and uses ten).
    sa_temperature_factor:
        Initial temperature factor of the SA phase; two-phase optimization
        starts with a much lower temperature than plain SA because it starts
        from an already good plan.
    engine:
        Plan engine shared by both phases (see :mod:`repro.plans.arena`);
        results are identical, only plan representation and speed differ.
    """

    name = "2P"

    def __init__(
        self,
        cost_model: MultiObjectiveCostModel,
        rng: random.Random | None = None,
        rules: TransformationRules | None = None,
        improvement_iterations: int = 10,
        sa_temperature_factor: float = 0.1,
        engine: str | None = None,
    ) -> None:
        super().__init__(cost_model)
        if improvement_iterations < 1:
            raise ValueError("need at least one improvement iteration")
        self._rng = rng if rng is not None else random.Random()
        self._rules = rules if rules is not None else TransformationRules()
        self._improvement_iterations = improvement_iterations
        self._sa_temperature_factor = sa_temperature_factor
        self._improvement = IterativeImprovementOptimizer(
            cost_model, rng=self._rng, rules=self._rules, engine=engine
        )
        # The archive holds engine-native items (arena handles under the
        # default engine), merged straight from the phases' archives; Plan
        # objects are materialized once, in :meth:`frontier`.
        batch_model = self._improvement.batch_model
        if batch_model is not None:
            self._archive = ParetoFrontier(cost_of=batch_model.arena.cost)
            self._materialize = batch_model.arena.to_plans
            self._cost_of = batch_model.arena.cost
        else:
            self._archive = ParetoFrontier(cost_of=lambda plan: plan.cost)
            self._materialize = list
            self._cost_of = lambda plan: plan.cost
        self._annealer: SimulatedAnnealingOptimizer | None = None

    # ------------------------------------------------------------ accessors
    @property
    def engine(self) -> str:
        """The plan engine in use (``"arena"`` or ``"object"``)."""
        return self._improvement.engine

    @property
    def in_second_phase(self) -> bool:
        """Whether the optimizer has switched to the simulated-annealing phase."""
        return self._annealer is not None

    # ------------------------------------------------------------- protocol
    def step(self) -> None:
        """Run one II iteration (phase one) or one SA stage (phase two)."""
        if self._improvement.statistics.steps < self._improvement_iterations:
            self._improvement.step()
            self._archive.insert_all(self._improvement.frontier_refs())
        else:
            if self._annealer is None:
                self._annealer = self._build_annealer()
            self._annealer.step()
            self._archive.insert_all(self._annealer.frontier_refs())
        self.statistics.steps += 1
        self.statistics.plans_built = (
            self._improvement.statistics.plans_built
            + (self._annealer.statistics.plans_built if self._annealer else 0)
        )

    def frontier(self) -> List[Plan]:
        """Union of the non-dominated plans found in both phases."""
        return self._materialize(self._archive.items())

    # ------------------------------------------------------------ internals
    def _build_annealer(self) -> SimulatedAnnealingOptimizer:
        start_plan = self._select_start_plan()
        # The annealer shares the improvement phase's batch model (when on
        # the arena engine), so the start plan is passed as a handle of the
        # shared arena.
        return SimulatedAnnealingOptimizer(
            self.cost_model,
            rng=self._rng,
            rules=self._rules,
            initial_temperature_factor=self._sa_temperature_factor,
            start_plan=start_plan,
            engine=self._improvement.engine,
            batch_model=self._improvement.batch_model,
        )

    def _select_start_plan(self):
        """Pick the II plan with the lowest normalized total cost as SA's start.

        Works on engine-native references; under the arena engine the
        result is an arena handle of the shared batch model.
        """
        candidates = self._improvement.frontier_refs()
        if not candidates:
            return None
        cost_of = self._cost_of
        maxima = [
            max(cost_of(plan)[i] for plan in candidates) or 1.0
            for i in range(self.cost_model.num_metrics)
        ]

        def normalized_total(plan) -> float:
            return sum(
                value / maximum for value, maximum in zip(cost_of(plan), maxima)
            )

        return min(candidates, key=normalized_total)
