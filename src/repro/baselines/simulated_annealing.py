"""SA — multi-objective generalization of SAIO simulated annealing.

The paper (Section 6.1) generalizes the SAIO variant of simulated annealing
described by Steinbrunn et al.: the algorithm walks from the current plan to
a randomly selected neighbor and accepts the move when the neighbor is
cheaper, or otherwise with a probability that decreases with the cost
difference and the current temperature.  The multi-objective generalization
uses the *average relative cost difference over all metrics* as the scalar
cost difference.

All visited complete plans feed a non-dominated archive, which serves as the
algorithm's frontier approximation — the paper observes that SA nevertheless
approximates the frontier poorly because it spends its whole budget refining
a single plan trajectory.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.baselines.local_search import random_neighbor
from repro.core.interface import AnytimeOptimizer
from repro.core.random_plans import RandomPlanGenerator
from repro.cost.model import MultiObjectiveCostModel
from repro.cost.vector import mean_relative_difference
from repro.pareto.frontier import ParetoFrontier
from repro.plans.plan import Plan
from repro.plans.transformations import TransformationRules


class SimulatedAnnealingOptimizer(AnytimeOptimizer):
    """Multi-objective SAIO simulated annealing.

    Parameters
    ----------
    cost_model:
        Cost model / plan factory for the query.
    rng:
        Source of randomness.
    initial_temperature_factor:
        The initial temperature is this factor times the (scalar) magnitude
        of the start plan's relative cost (SAIO uses ``2 ×`` the start cost;
        with relative cost differences the natural scale is O(1)).
    cooling_rate:
        Multiplicative temperature decay applied after every stage.
    moves_per_stage:
        Number of neighbor moves attempted per temperature stage; one call to
        :meth:`step` executes one stage.
    frozen_temperature:
        Temperature below which the system is frozen and restarts from a new
        random plan (keeping the archive).
    start_plan:
        Optional start plan (used by two-phase optimization); a random bushy
        plan is drawn when omitted.
    """

    name = "SA"

    def __init__(
        self,
        cost_model: MultiObjectiveCostModel,
        rng: random.Random | None = None,
        rules: TransformationRules | None = None,
        initial_temperature_factor: float = 2.0,
        cooling_rate: float = 0.95,
        moves_per_stage: int | None = None,
        frozen_temperature: float = 1e-3,
        start_plan: Plan | None = None,
    ) -> None:
        super().__init__(cost_model)
        if initial_temperature_factor <= 0:
            raise ValueError("initial temperature factor must be positive")
        if not 0 < cooling_rate < 1:
            raise ValueError("cooling rate must be in (0, 1)")
        self._rng = rng if rng is not None else random.Random()
        self._rules = rules if rules is not None else TransformationRules()
        self._generator = RandomPlanGenerator(cost_model, self._rng)
        self._initial_temperature = initial_temperature_factor
        self._cooling_rate = cooling_rate
        self._moves_per_stage = (
            moves_per_stage
            if moves_per_stage is not None
            else max(4, 2 * cost_model.query.num_tables)
        )
        self._frozen_temperature = frozen_temperature
        self._archive: ParetoFrontier[Plan] = ParetoFrontier(cost_of=lambda plan: plan.cost)
        self._current = start_plan
        self._temperature = self._initial_temperature
        if self._current is not None:
            self._archive.insert(self._current)

    # ------------------------------------------------------------ accessors
    @property
    def temperature(self) -> float:
        """Current annealing temperature."""
        return self._temperature

    @property
    def current_plan(self) -> Plan | None:
        """The plan the annealer is currently at (None before the first step)."""
        return self._current

    # ------------------------------------------------------------- protocol
    def step(self) -> None:
        """Execute one temperature stage (a batch of neighbor moves)."""
        if self._current is None or self._temperature < self._frozen_temperature:
            self._restart()
        for _ in range(self._moves_per_stage):
            self._one_move()
        self._temperature *= self._cooling_rate
        self.statistics.steps += 1

    def frontier(self) -> List[Plan]:
        """Non-dominated set of all complete plans visited so far."""
        return self._archive.items()

    # ------------------------------------------------------------ internals
    def _restart(self) -> None:
        self._current = self._generator.random_bushy_plan()
        self._archive.insert(self._current)
        self._temperature = self._initial_temperature
        self.statistics.plans_built += self._current.num_nodes

    def _one_move(self) -> None:
        assert self._current is not None
        neighbor = random_neighbor(self._current, self._rules, self.cost_model, self._rng)
        if neighbor is None:
            return
        self.statistics.plans_built += 1
        delta = mean_relative_difference(neighbor.cost, self._current.cost)
        if delta <= 0 or self._accept_uphill(delta):
            self._current = neighbor
            self._archive.insert(neighbor)

    def _accept_uphill(self, delta: float) -> bool:
        if self._temperature <= 0:
            return False
        probability = math.exp(-delta / self._temperature)
        return self._rng.random() < probability
