"""SA — multi-objective generalization of SAIO simulated annealing.

The paper (Section 6.1) generalizes the SAIO variant of simulated annealing
described by Steinbrunn et al.: the algorithm walks from the current plan to
a randomly selected neighbor and accepts the move when the neighbor is
cheaper, or otherwise with a probability that decreases with the cost
difference and the current temperature.  The multi-objective generalization
uses the *average relative cost difference over all metrics* as the scalar
cost difference.

All visited complete plans feed a non-dominated archive, which serves as the
algorithm's frontier approximation — the paper observes that SA nevertheless
approximates the frontier poorly because it spends its whole budget refining
a single plan trajectory.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.baselines.local_search import arena_random_neighbor, random_neighbor
from repro.core.interface import AnytimeOptimizer
from repro.core.random_plans import ArenaRandomPlanGenerator, RandomPlanGenerator
from repro.cost.batch import BatchCostModel
from repro.cost.model import MultiObjectiveCostModel
from repro.cost.vector import mean_relative_difference
from repro.pareto.frontier import ParetoFrontier
from repro.plans.arena import resolve_plan_engine
from repro.plans.plan import Plan
from repro.plans.transformations import ArenaTransformationRules, TransformationRules


class SimulatedAnnealingOptimizer(AnytimeOptimizer):
    """Multi-objective SAIO simulated annealing.

    Parameters
    ----------
    cost_model:
        Cost model / plan factory for the query.
    rng:
        Source of randomness.
    initial_temperature_factor:
        The initial temperature is this factor times the (scalar) magnitude
        of the start plan's relative cost (SAIO uses ``2 ×`` the start cost;
        with relative cost differences the natural scale is O(1)).
    cooling_rate:
        Multiplicative temperature decay applied after every stage.
    moves_per_stage:
        Number of neighbor moves attempted per temperature stage; one call to
        :meth:`step` executes one stage.
    frozen_temperature:
        Temperature below which the system is frozen and restarts from a new
        random plan (keeping the archive).
    start_plan:
        Optional start plan (used by two-phase optimization); a random bushy
        plan is drawn when omitted.
    engine:
        Plan engine (see :mod:`repro.plans.arena`); results are identical,
        only plan representation and speed differ.  A ``start_plan`` given
        as a ``Plan`` object is interned into the arena under the arena
        engine; an ``int`` start plan is taken as an arena handle of the
        shared ``batch_model``.
    """

    name = "SA"

    def __init__(
        self,
        cost_model: MultiObjectiveCostModel,
        rng: random.Random | None = None,
        rules: TransformationRules | None = None,
        initial_temperature_factor: float = 2.0,
        cooling_rate: float = 0.95,
        moves_per_stage: int | None = None,
        frozen_temperature: float = 1e-3,
        start_plan: "Plan | int | None" = None,
        engine: str | None = None,
        batch_model: BatchCostModel | None = None,
    ) -> None:
        super().__init__(cost_model)
        if initial_temperature_factor <= 0:
            raise ValueError("initial temperature factor must be positive")
        if not 0 < cooling_rate < 1:
            raise ValueError("cooling rate must be in (0, 1)")
        self._rng = rng if rng is not None else random.Random()
        self._rules = rules if rules is not None else TransformationRules()
        self._engine = resolve_plan_engine(engine)
        if self._engine == "arena":
            self._batch_model = (
                batch_model if batch_model is not None else BatchCostModel(cost_model)
            )
            arena = self._batch_model.arena
            self._arena_rules = ArenaTransformationRules(
                self._batch_model, self._rules
            )
            self._generator = ArenaRandomPlanGenerator(self._batch_model, self._rng)
            self._archive = ParetoFrontier(cost_of=arena.cost)
            self._num_nodes = arena.num_nodes
        else:
            self._batch_model = None
            self._arena_rules = None
            self._generator = RandomPlanGenerator(cost_model, self._rng)
            self._archive = ParetoFrontier(cost_of=lambda plan: plan.cost)
            self._num_nodes = lambda plan: plan.num_nodes
        self._initial_temperature = initial_temperature_factor
        self._cooling_rate = cooling_rate
        self._moves_per_stage = (
            moves_per_stage
            if moves_per_stage is not None
            else max(4, 2 * cost_model.query.num_tables)
        )
        self._frozen_temperature = frozen_temperature
        # ``_current_object`` caches the Plan-object view of the current
        # handle so that :attr:`current_plan` is stable between calls (and
        # returns the exact object a caller seeded the annealer with).
        self._current_object: Plan | None = None
        if start_plan is not None and self._engine == "arena":
            if isinstance(start_plan, int):
                # Already an arena handle (a caller sharing ``batch_model``,
                # e.g. two-phase optimization).
                self._current = start_plan
            else:
                self._current = self._batch_model.intern_plan(start_plan)
                self._current_object = start_plan
        else:
            self._current = start_plan
            self._current_object = start_plan
        self._temperature = self._initial_temperature
        if self._current is not None:
            self._archive.insert(self._current)

    # ------------------------------------------------------------ accessors
    @property
    def engine(self) -> str:
        """The plan engine in use (``"arena"`` or ``"object"``)."""
        return self._engine

    @property
    def temperature(self) -> float:
        """Current annealing temperature."""
        return self._temperature

    @property
    def current_plan(self) -> Plan | None:
        """The plan the annealer is currently at (None before the first step)."""
        if self._engine != "arena":
            return self._current
        if self._current is None:
            return None
        if self._current_object is None:
            self._current_object = self._batch_model.arena.to_plan(self._current)
        return self._current_object

    # ------------------------------------------------------------- protocol
    def step(self) -> None:
        """Execute one temperature stage (a batch of neighbor moves)."""
        if self._current is None or self._temperature < self._frozen_temperature:
            self._restart()
        for _ in range(self._moves_per_stage):
            self._one_move()
        self._temperature *= self._cooling_rate
        self.statistics.steps += 1

    def frontier(self) -> List[Plan]:
        """Non-dominated set of all complete plans visited so far."""
        if self._engine == "arena":
            return self._batch_model.arena.to_plans(self._archive.items())
        return self._archive.items()

    def frontier_refs(self) -> list:
        """The frontier as engine-native items (see ``II.frontier_refs``)."""
        return self._archive.items()

    # ------------------------------------------------------------ internals
    def _restart(self) -> None:
        self._current = self._generator.random_bushy_plan()
        self._current_object = None
        self._archive.insert(self._current)
        self._temperature = self._initial_temperature
        self.statistics.plans_built += self._num_nodes(self._current)

    def _cost_of(self, plan):
        if self._engine == "arena":
            return self._batch_model.arena.cost(plan)
        return plan.cost

    def _one_move(self) -> None:
        assert self._current is not None
        if self._engine == "arena":
            neighbor = arena_random_neighbor(
                self._batch_model, self._current, self._arena_rules, self._rng
            )
        else:
            neighbor = random_neighbor(
                self._current, self._rules, self.cost_model, self._rng
            )
        if neighbor is None:
            return
        self.statistics.plans_built += 1
        delta = mean_relative_difference(
            self._cost_of(neighbor), self._cost_of(self._current)
        )
        if delta <= 0 or self._accept_uphill(delta):
            self._current = neighbor
            self._current_object = None
            self._archive.insert(neighbor)

    def _accept_uphill(self, delta: float) -> bool:
        if self._temperature <= 0:
            return False
        probability = math.exp(-delta / self._temperature)
        return self._rng.random() < probability
