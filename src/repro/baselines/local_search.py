"""Shared local-search utilities for the randomized baselines.

The SA and 2P baselines move between *neighbor* plans: plans reachable via a
single local transformation at a single node of the plan tree (Steinbrunn et
al.).  Because plans are immutable, applying a mutation at an inner node
requires rebuilding the spine from that node up to the root; this module
implements that rebuild and random-neighbor sampling on top of the
transformation rules shared with RMQ.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.cost.model import PlanFactory
from repro.plans.plan import JoinPlan, Plan
from repro.plans.transformations import ArenaTransformationRules, TransformationRules

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.cost.batch import BatchCostModel

#: A path from the root to a node: a sequence of 'o' (outer) / 'i' (inner) steps.
NodePath = Tuple[str, ...]


def enumerate_node_paths(plan: Plan) -> List[NodePath]:
    """Paths to every node of the plan tree (the root has the empty path)."""
    paths: List[NodePath] = []

    def visit(node: Plan, path: NodePath) -> None:
        paths.append(path)
        if isinstance(node, JoinPlan):
            visit(node.outer, path + ("o",))
            visit(node.inner, path + ("i",))

    visit(plan, ())
    return paths


def node_at(plan: Plan, path: NodePath) -> Plan:
    """The node reached by following ``path`` from the root."""
    node = plan
    for step in path:
        if not isinstance(node, JoinPlan):
            raise ValueError(f"path {path} descends below a scan node")
        node = node.outer if step == "o" else node.inner
    return node


def replace_at(
    plan: Plan,
    path: NodePath,
    replacement: Plan,
    rules: TransformationRules,
    factory: PlanFactory,
) -> Plan:
    """Return a copy of ``plan`` with the node at ``path`` replaced.

    The spine from the replaced node to the root is rebuilt (re-costed);
    operators on the spine are kept when still applicable and otherwise
    replaced by the library's first applicable operator.
    """
    if not path:
        return replacement
    if not isinstance(plan, JoinPlan):
        raise ValueError(f"path {path} descends below a scan node")
    step, rest = path[0], path[1:]
    if step == "o":
        new_outer = replace_at(plan.outer, rest, replacement, rules, factory)
        return rules.rebuild_join(new_outer, plan.inner, plan.operator, factory)
    new_inner = replace_at(plan.inner, rest, replacement, rules, factory)
    return rules.rebuild_join(plan.outer, new_inner, plan.operator, factory)


def random_neighbor(
    plan: Plan,
    rules: TransformationRules,
    factory: PlanFactory,
    rng: random.Random,
    max_attempts: int = 10,
) -> Optional[Plan]:
    """A random neighbor of ``plan`` (one mutation at one random node).

    Returns ``None`` when no non-identity mutation exists anywhere in the
    plan (only possible with a single-operator library and a single table).
    """
    paths = enumerate_node_paths(plan)
    for _ in range(max_attempts):
        path = rng.choice(paths)
        node = node_at(plan, path)
        mutations = [
            mutated
            for mutated in rules.mutations(node, factory)
            if mutated is not node
        ]
        if not mutations:
            continue
        mutated = rng.choice(mutations)
        return replace_at(plan, path, mutated, rules, factory)
    return None


def all_neighbors(
    plan: Plan,
    rules: TransformationRules,
    factory: PlanFactory,
) -> List[Plan]:
    """All neighbors of ``plan``: every mutation applied at every node."""
    neighbors: List[Plan] = []
    for path in enumerate_node_paths(plan):
        node = node_at(plan, path)
        for mutated in rules.mutations(node, factory):
            if mutated is node:
                continue
            neighbors.append(replace_at(plan, path, mutated, rules, factory))
    return neighbors


# ---------------------------------------------------------------------------
# Columnar-engine twins (arena handles instead of Plan objects)
# ---------------------------------------------------------------------------
def arena_node_paths(model: "BatchCostModel", handle: int) -> List[NodePath]:
    """Paths to every node of a handle's plan tree (same order as objects)."""
    arena = model.arena
    paths: List[NodePath] = []

    def visit(node: int, path: NodePath) -> None:
        paths.append(path)
        if arena.is_join(node):
            visit(arena.outer(node), path + ("o",))
            visit(arena.inner(node), path + ("i",))

    visit(handle, ())
    return paths


def arena_node_at(model: "BatchCostModel", handle: int, path: NodePath) -> int:
    """The handle reached by following ``path`` from the root."""
    arena = model.arena
    node = handle
    for step in path:
        if not arena.is_join(node):
            raise ValueError(f"path {path} descends below a scan node")
        node = arena.outer(node) if step == "o" else arena.inner(node)
    return node


def arena_replace_at(
    model: "BatchCostModel",
    handle: int,
    path: NodePath,
    replacement: int,
    rules: ArenaTransformationRules,
) -> int:
    """Rebuild the spine from the replaced node to the root (handle twin)."""
    if not path:
        return replacement
    arena = model.arena
    if not arena.is_join(handle):
        raise ValueError(f"path {path} descends below a scan node")
    step, rest = path[0], path[1:]
    if step == "o":
        new_outer = arena_replace_at(model, arena.outer(handle), rest, replacement, rules)
        return rules.rebuild_join(new_outer, arena.inner(handle), arena.op_code(handle))
    new_inner = arena_replace_at(model, arena.inner(handle), rest, replacement, rules)
    return rules.rebuild_join(arena.outer(handle), new_inner, arena.op_code(handle))


def arena_random_neighbor(
    model: "BatchCostModel",
    handle: int,
    rules: ArenaTransformationRules,
    rng: random.Random,
    max_attempts: int = 10,
) -> Optional[int]:
    """Handle twin of :func:`random_neighbor` with identical RNG consumption.

    Only the chosen mutation is costed and realized; the other candidates of
    the sampled node stay uncosted descriptions.
    """
    from repro.cost.batch import JoinSpec

    paths = arena_node_paths(model, handle)
    for _ in range(max_attempts):
        path = rng.choice(paths)
        node = arena_node_at(model, handle, path)
        # mutations() always lists the node itself first; every other entry
        # is structurally distinct, so dropping the head mirrors the object
        # path's ``mutated is not node`` filter.
        pending: List[JoinSpec] = []
        mutations = rules.mutations(node, pending)[1:]
        if not mutations:
            continue
        mutated = rng.choice(mutations)
        if isinstance(mutated, JoinSpec):
            model.cost_specs([mutated])
            mutated = model.realize(mutated)
        return arena_replace_at(model, handle, path, mutated, rules)
    return None
