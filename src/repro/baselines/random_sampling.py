"""Pure random plan sampling (sanity baseline, not in the paper's plots).

Sampling random plans and keeping the non-dominated ones is the weakest
conceivable randomized baseline; it lower-bounds what any local-search based
algorithm should achieve and is useful in tests (every other algorithm should
beat it given the same plan budget).
"""

from __future__ import annotations

import random
from typing import List

from repro.core.interface import AnytimeOptimizer
from repro.core.random_plans import ArenaRandomPlanGenerator, RandomPlanGenerator
from repro.cost.batch import BatchCostModel
from repro.cost.model import MultiObjectiveCostModel
from repro.pareto.frontier import ParetoFrontier
from repro.plans.arena import resolve_plan_engine
from repro.plans.plan import Plan


class RandomSamplingOptimizer(AnytimeOptimizer):
    """Keeps the non-dominated subset of independently sampled random plans.

    ``engine`` selects the plan engine (see :mod:`repro.plans.arena`); under
    the default ``"arena"`` engine sampled plans are columnar handles and
    only the surviving frontier is materialized on :meth:`frontier`.
    """

    name = "RandomSampling"

    def __init__(
        self,
        cost_model: MultiObjectiveCostModel,
        rng: random.Random | None = None,
        plans_per_step: int = 10,
        engine: str | None = None,
    ) -> None:
        super().__init__(cost_model)
        if plans_per_step < 1:
            raise ValueError("plans_per_step must be positive")
        rng = rng if rng is not None else random.Random()
        self._engine = resolve_plan_engine(engine)
        if self._engine == "arena":
            self._batch_model = BatchCostModel(cost_model)
            arena = self._batch_model.arena
            self._generator = ArenaRandomPlanGenerator(self._batch_model, rng)
            self._archive = ParetoFrontier(cost_of=arena.cost)
            self._num_nodes = arena.num_nodes
            self._materialize = arena.to_plans
        else:
            self._batch_model = None
            self._generator = RandomPlanGenerator(cost_model, rng)
            self._archive = ParetoFrontier(cost_of=lambda plan: plan.cost)
            self._num_nodes = lambda plan: plan.num_nodes
            self._materialize = list
        self._plans_per_step = plans_per_step

    @property
    def engine(self) -> str:
        """The plan engine in use (``"arena"`` or ``"object"``)."""
        return self._engine

    def step(self) -> None:
        """Sample a batch of random plans and archive the non-dominated ones.

        The whole batch goes through one vectorized frontier insertion
        (identical result to inserting one by one).
        """
        batch = []
        for _ in range(self._plans_per_step):
            plan = self._generator.random_bushy_plan()
            self.statistics.plans_built += self._num_nodes(plan)
            batch.append(plan)
        self._archive.insert_all(batch)
        self.statistics.steps += 1

    def frontier(self) -> List[Plan]:
        """Non-dominated set of all sampled plans."""
        return self._materialize(self._archive.items())
