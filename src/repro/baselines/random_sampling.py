"""Pure random plan sampling (sanity baseline, not in the paper's plots).

Sampling random plans and keeping the non-dominated ones is the weakest
conceivable randomized baseline; it lower-bounds what any local-search based
algorithm should achieve and is useful in tests (every other algorithm should
beat it given the same plan budget).
"""

from __future__ import annotations

import random
from typing import List

from repro.core.interface import AnytimeOptimizer
from repro.core.random_plans import RandomPlanGenerator
from repro.cost.model import MultiObjectiveCostModel
from repro.pareto.frontier import ParetoFrontier
from repro.plans.plan import Plan


class RandomSamplingOptimizer(AnytimeOptimizer):
    """Keeps the non-dominated subset of independently sampled random plans."""

    name = "RandomSampling"

    def __init__(
        self,
        cost_model: MultiObjectiveCostModel,
        rng: random.Random | None = None,
        plans_per_step: int = 10,
    ) -> None:
        super().__init__(cost_model)
        if plans_per_step < 1:
            raise ValueError("plans_per_step must be positive")
        self._generator = RandomPlanGenerator(
            cost_model, rng if rng is not None else random.Random()
        )
        self._plans_per_step = plans_per_step
        self._archive: ParetoFrontier[Plan] = ParetoFrontier(cost_of=lambda plan: plan.cost)

    def step(self) -> None:
        """Sample a batch of random plans and archive the non-dominated ones.

        The whole batch goes through one vectorized frontier insertion
        (identical result to inserting one by one).
        """
        batch = []
        for _ in range(self._plans_per_step):
            plan = self._generator.random_bushy_plan()
            self.statistics.plans_built += plan.num_nodes
            batch.append(plan)
        self._archive.insert_all(batch)
        self.statistics.steps += 1

    def frontier(self) -> List[Plan]:
        """Non-dominated set of all sampled plans."""
        return self._archive.items()
