"""Weighted-sum scalarization baseline (sanity check, not in the paper's plots).

Section 2 of the paper points out that mapping multi-objective optimization
to single-objective optimization with a weighted sum over cost metrics "will
not yield the Pareto frontier but at most a subset of it (the convex hull)".
This baseline makes that observation testable: each step draws a random
weight vector, scalarizes the cost metrics, and hill-climbs a random plan
under the scalar cost.  The archive of all plans found approximates (at
best) the convex hull of the Pareto frontier.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.baselines.local_search import all_neighbors
from repro.core.interface import AnytimeOptimizer
from repro.core.random_plans import RandomPlanGenerator
from repro.cost.model import MultiObjectiveCostModel
from repro.pareto.frontier import ParetoFrontier
from repro.plans.plan import Plan
from repro.plans.transformations import TransformationRules


class WeightedSumOptimizer(AnytimeOptimizer):
    """Single-objective hill climbing over randomly drawn metric weights."""

    name = "WeightedSum"

    def __init__(
        self,
        cost_model: MultiObjectiveCostModel,
        rng: random.Random | None = None,
        rules: TransformationRules | None = None,
        max_climb_steps: int = 200,
    ) -> None:
        super().__init__(cost_model)
        self._rng = rng if rng is not None else random.Random()
        self._rules = rules if rules is not None else TransformationRules()
        self._generator = RandomPlanGenerator(cost_model, self._rng)
        self._max_climb_steps = max_climb_steps
        self._archive: ParetoFrontier[Plan] = ParetoFrontier(cost_of=lambda plan: plan.cost)

    def step(self) -> None:
        """Draw a weight vector, climb a random plan under the scalarized cost."""
        weights = self._random_weights()
        plan = self._generator.random_bushy_plan()
        self.statistics.plans_built += plan.num_nodes
        for _ in range(self._max_climb_steps):
            neighbors = all_neighbors(plan, self._rules, self.cost_model)
            self.statistics.plans_built += len(neighbors)
            best = min(
                neighbors,
                key=lambda candidate: self._scalar(candidate.cost, weights),
                default=None,
            )
            if best is None or self._scalar(best.cost, weights) >= self._scalar(
                plan.cost, weights
            ):
                break
            plan = best
        self._archive.insert(plan)
        self.statistics.steps += 1

    def frontier(self) -> List[Plan]:
        """Non-dominated set over all scalarized climbs so far."""
        return self._archive.items()

    # ------------------------------------------------------------ internals
    def _random_weights(self) -> Tuple[float, ...]:
        raw = [self._rng.random() + 1e-9 for _ in range(self.cost_model.num_metrics)]
        total = sum(raw)
        return tuple(value / total for value in raw)

    @staticmethod
    def _scalar(cost: Tuple[float, ...], weights: Tuple[float, ...]) -> float:
        return sum(value * weight for value, weight in zip(cost, weights))
