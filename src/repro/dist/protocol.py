"""File-based coordinator protocol over a shared directory.

The in-memory :class:`~repro.dist.coordinator.Coordinator` serves workers
in its own process.  This module speaks the *same lease lifecycle* through
a shared directory (NFS mount, synced folder, shared volume), so workers on
other machines can pull work with nothing but filesystem access:

```
workdir/
├── spec.json            scenario spec + provenance hash + batch count
├── queue/batch-0000.json    one file per lease-sized task batch (immutable)
├── claims/batch-0000.json   lease: created atomically (O_EXCL) by a worker
└── results/batch-0000.json  completed batch results (atomic replace)
```

* **Claiming** a batch creates ``claims/<batch>.json`` with
  ``O_CREAT | O_EXCL`` — atomic on POSIX filesystems, so exactly one
  worker wins a race.  The claim records the worker id and claim time.
* **Expiry**: a claim older than the lease timeout whose batch has no
  result is deleted (by any worker or the collector) and the batch becomes
  claimable again — a dead worker delays its batch by at most the timeout.
* **Completion** writes ``results/<batch>.json`` via temp file +
  ``os.replace``; readers only ever see complete files.  Because leaves
  are pure, a late writer racing a reclaimer produces the same payload.
* **Validation**: every file carries the spec's provenance hash
  (:func:`repro.bench.tasks.spec_provenance_hash`); result files must
  cover their batch's tasks exactly.  Invalid results are purged (and the
  batch re-executed) by whoever discovers them — a corrupted worker cannot
  poison the merged result.

:func:`init_workdir` populates the directory (consulting an optional
:class:`~repro.dist.cache.TaskCache` so cache hits never enter the queue),
:func:`run_worker` is the worker loop (the ``work`` CLI subcommand), and
:func:`collect_results` waits for full coverage and returns results in
schedule order (the ``coordinate`` subcommand).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from concurrent.futures import Executor
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bench.scenario import ScenarioSpec
from repro.bench.tasks import (
    TaskResult,
    TaskSpec,
    _execute_task_group,
    _group_by_cell,
    resolve_granularity,
    schedule_tasks,
    spec_provenance_hash,
    task_is_deterministic,
)
from repro.dist.cache import TaskCache, write_json_atomic
from repro.dist.coordinator import DEFAULT_LEASE_TIMEOUT, LeaseValidationError
from repro.dist.transport import (
    ExponentialBackoff,
    Lease,
    LeaseRenewer,
    LeaseTransport,
)
from repro.obs import global_metrics

#: Version tag of the work-directory format.
WORKDIR_FORMAT = "repro-workdir-v1"

SPEC_FILE = "spec.json"
QUEUE_DIR = "queue"
CLAIM_DIR = "claims"
RESULT_DIR = "results"

#: Results file of cache-prefilled tasks (not a queue batch).
CACHED_BATCH = "cached"


def _batch_name(index: int) -> str:
    return f"batch-{index:04d}"


# ---------------------------------------------------------------------------
# Setup
# ---------------------------------------------------------------------------
def init_workdir(
    path: str,
    spec: ScenarioSpec,
    workers_hint: int = 1,
    granularity: Optional[str] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    cache: Optional[TaskCache] = None,
) -> dict:
    """Populate (or resume) a coordinator work directory; returns its metadata.

    A directory that already holds the same scenario (equal provenance
    hash) is resumed as-is — existing results are kept, which is what makes
    re-runs cheap.  A directory holding a *different* scenario is refused.
    Cache hits are written straight to ``results/cached.json`` and never
    become queue batches.
    """
    path = os.fspath(path)
    spec_hash = spec_provenance_hash(spec)
    spec_path = os.path.join(path, SPEC_FILE)
    if os.path.exists(spec_path):
        with open(spec_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("format") != WORKDIR_FORMAT:
            raise ValueError(f"{path}: not a {WORKDIR_FORMAT} work directory")
        if meta.get("spec_hash") != spec_hash:
            raise ValueError(
                f"{path}: work directory belongs to a different scenario "
                "(spec provenance hash mismatch)"
            )
        return meta
    for sub in (QUEUE_DIR, CLAIM_DIR, RESULT_DIR):
        os.makedirs(os.path.join(path, sub), exist_ok=True)

    tasks = schedule_tasks(spec)
    if cache is not None:
        hits, pending = cache.partition(spec, tasks)
    else:
        hits, pending = {}, list(tasks)
    cached_results = [hits[task] for task in tasks if task in hits]
    if cached_results:
        write_json_atomic(
            os.path.join(path, RESULT_DIR, f"{CACHED_BATCH}.json"),
            {
                "format": WORKDIR_FORMAT,
                "spec_hash": spec_hash,
                "batch": CACHED_BATCH,
                "results": [result.to_json_dict() for result in cached_results],
            },
        )

    resolved = resolve_granularity(
        granularity if granularity is not None else spec.granularity,
        pending,
        max(1, workers_hint),
    )
    if resolved == "cell":
        grouped = _group_by_cell(pending)
    else:
        grouped = [[task] for task in pending]
    for index, group in enumerate(grouped):
        write_json_atomic(
            os.path.join(path, QUEUE_DIR, f"{_batch_name(index)}.json"),
            {
                "format": WORKDIR_FORMAT,
                "spec_hash": spec_hash,
                "batch": _batch_name(index),
                "tasks": [task.to_json_dict() for task in group],
            },
        )
    meta = {
        "format": WORKDIR_FORMAT,
        "spec": spec.to_json_dict(),
        "spec_hash": spec_hash,
        "lease_timeout": lease_timeout,
        "granularity": resolved,
        "batches": len(grouped),
        "cached_tasks": len(cached_results),
    }
    write_json_atomic(spec_path, meta)
    return meta


def load_workdir(path: str) -> Tuple[ScenarioSpec, dict]:
    """Load a work directory's scenario spec and metadata (validated)."""
    path = os.fspath(path)
    with open(os.path.join(path, SPEC_FILE), "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("format") != WORKDIR_FORMAT:
        raise ValueError(f"{path}: not a {WORKDIR_FORMAT} work directory")
    spec = ScenarioSpec.from_json_dict(meta["spec"])
    if meta.get("spec_hash") != spec_provenance_hash(spec):
        raise ValueError(f"{path}: spec provenance hash mismatch")
    return spec, meta


def _load_batch_tasks(path: str, batch: str, spec_hash: str) -> List[TaskSpec]:
    with open(
        os.path.join(path, QUEUE_DIR, f"{batch}.json"), "r", encoding="utf-8"
    ) as handle:
        payload = json.load(handle)
    if payload.get("spec_hash") != spec_hash or payload.get("batch") != batch:
        raise ValueError(f"{path}: queue batch {batch} is corrupt")
    return [TaskSpec.from_json_dict(task) for task in payload["tasks"]]


# ---------------------------------------------------------------------------
# Claims and results
# ---------------------------------------------------------------------------
def _claim_path(path: str, batch: str) -> str:
    return os.path.join(path, CLAIM_DIR, f"{batch}.json")


def _result_path(path: str, batch: str) -> str:
    return os.path.join(path, RESULT_DIR, f"{batch}.json")


def _try_claim(
    path: str, batch: str, worker_id: str, lease_timeout: float, now: float
) -> bool:
    """Atomically claim a batch; steals claims past the lease timeout."""
    claim_path = _claim_path(path, batch)
    for _ in range(2):  # second pass after deleting an expired claim
        try:
            fd = os.open(claim_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            claimed_at = _claimed_at(claim_path)
            if claimed_at is None:
                continue  # claim vanished between the create and the read
            if claimed_at + lease_timeout > now:
                return False
            try:  # expired: delete and retry the exclusive create
                os.unlink(claim_path)
            except OSError:
                return False
            continue
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump({"worker": worker_id, "claimed_at": now}, handle)
            handle.write("\n")
        return True
    return False


def _claimed_at(claim_path: str) -> Optional[float]:
    """When was this claim taken?  ``None`` when the claim no longer exists.

    Falls back to the file's mtime when the claim content is unreadable —
    a worker killed between creating and writing the claim must not leave
    its batch permanently unclaimable.
    """
    try:
        with open(claim_path, "r", encoding="utf-8") as handle:
            return float(json.load(handle)["claimed_at"])
    except (ValueError, KeyError, TypeError):
        pass
    except OSError:
        return None
    try:
        return os.stat(claim_path).st_mtime
    except OSError:
        return None


def _release_claim(path: str, batch: str) -> None:
    try:
        os.unlink(_claim_path(path, batch))
    except OSError:
        pass


def _load_valid_result(
    path: str,
    batch: str,
    spec_hash: str,
    expected_tasks: Optional[Sequence[TaskSpec]],
) -> Optional[List[TaskResult]]:
    """Load a result file, purging it (and its claim) when invalid.

    ``expected_tasks`` is the batch's task list (``None`` for the cache
    prefill file, which has no queue counterpart).  Returns ``None`` when
    the result is missing or was invalid and purged.
    """
    result_path = _result_path(path, batch)
    try:
        with open(result_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("spec_hash") != spec_hash or payload.get("batch") != batch:
            raise ValueError("foreign result file")
        results = [TaskResult.from_json_dict(entry) for entry in payload["results"]]
        if expected_tasks is not None:
            produced = {result.task for result in results}
            if len(produced) != len(results) or produced != set(expected_tasks):
                raise ValueError("results do not cover the batch")
    except OSError:
        return None
    except (ValueError, KeyError, TypeError):
        try:
            os.unlink(result_path)
        except OSError:
            pass
        _release_claim(path, batch)
        return None
    return results


def _write_result(
    path: str, batch: str, spec_hash: str, results: Sequence[TaskResult]
) -> None:
    write_json_atomic(
        _result_path(path, batch),
        {
            "format": WORKDIR_FORMAT,
            "spec_hash": spec_hash,
            "batch": batch,
            "results": [result.to_json_dict() for result in results],
        },
    )


# ---------------------------------------------------------------------------
# The file transport
# ---------------------------------------------------------------------------
class FileLeaseTransport(LeaseTransport):
    """The shared-directory wire as an explicit :class:`LeaseTransport`.

    A lease is one queue batch: claiming creates the ``O_EXCL`` claim
    file, completion writes the result file atomically, renewal rewrites
    the claim with a fresh ``claimed_at`` stamp (so a heartbeating
    worker's claim is never stolen), and failing simply deletes the
    claim.  Lease ids are ``<batch>.<attempt>`` where the attempt counts
    *this* transport's claims of the batch — other workers' attempts are
    invisible, which is fine: reconciliation happens through the
    filesystem (first valid result file wins).

    One instance serves one worker process/thread; it is cheap (spec and
    batch files are parsed once) and thread-safe for the renewer-thread
    pattern (renewal only touches the claim file).

    Lifecycle counts are mirrored into ``metrics`` (default: the global
    registry) under per-transport names — ``coordinator.completed.file``,
    ``coordinator.lease_seconds.file`` — so file runs stay
    distinguishable from in-memory and TCP runs in ``top``.
    """

    TRANSPORT_LABEL = "file"

    def __init__(
        self,
        path: str,
        worker_id: Optional[str] = None,
        clock=time.time,
        metrics=None,
    ) -> None:
        self._path = os.fspath(path)
        self.worker_id = (
            worker_id
            if worker_id is not None
            else f"{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )
        self._clock = clock
        self._metrics = metrics if metrics is not None else global_metrics()
        self._spec, meta = load_workdir(self._path)
        self._spec_hash = meta["spec_hash"]
        self._lease_timeout = float(meta["lease_timeout"])
        self._batches = [_batch_name(index) for index in range(meta["batches"])]
        # Queue batch files are immutable: parse each exactly once.
        self._batch_tasks = {
            batch: _load_batch_tasks(self._path, batch, self._spec_hash)
            for batch in self._batches
        }
        self._known_done: Set[str] = set()
        self._attempts: Dict[str, int] = {}
        #: lease_id -> (batch, grant instant) for leases this worker holds.
        self._held: Dict[str, Tuple[str, float]] = {}

    def _count(self, key: str, value: int = 1) -> None:
        self._metrics.add(f"coordinator.{key}.{self.TRANSPORT_LABEL}", value)

    @property
    def spec(self) -> ScenarioSpec:
        return self._spec

    @property
    def lease_timeout(self) -> float:
        return self._lease_timeout

    def spec_for_lease(self, lease: Lease) -> ScenarioSpec:
        return self._spec

    def _batch_of(self, lease_id: str) -> str:
        held = self._held.get(lease_id)
        if held is None:
            raise LeaseValidationError(f"unknown lease id {lease_id!r}")
        return held[0]

    def request_lease(self, worker_id: str) -> Optional[Lease]:
        """Claim the first available batch (scans in batch order)."""
        now = self._clock()
        for batch in self._batches:
            if batch in self._known_done:
                continue
            tasks = self._batch_tasks[batch]
            if (
                _load_valid_result(self._path, batch, self._spec_hash, tasks)
                is not None
            ):
                self._known_done.add(batch)
                continue
            if not _try_claim(
                self._path, batch, worker_id, self._lease_timeout, now
            ):
                continue
            attempt = self._attempts.get(batch, 0) + 1
            self._attempts[batch] = attempt
            lease_id = f"{batch}.{attempt}"
            self._held[lease_id] = (batch, now)
            return Lease(
                lease_id=lease_id,
                worker_id=worker_id,
                tasks=tuple(tasks),
                deadline=now + self._lease_timeout,
                attempt=attempt,
            )
        return None

    def complete_lease(
        self, lease_id: str, results: Sequence[TaskResult]
    ) -> bool:
        """Write the batch's result file and release the claim."""
        batch, granted = self._held.pop(lease_id)  # KeyError → programmer bug
        tasks = self._batch_tasks[batch]
        by_task = {result.task: result for result in results}
        if len(by_task) != len(results) or set(by_task) != set(tasks):
            self._count("rejected")
            raise LeaseValidationError(
                f"lease {lease_id!r}: results do not cover the leased tasks"
            )
        fresh = (
            _load_valid_result(self._path, batch, self._spec_hash, tasks) is None
        )
        if fresh:
            _write_result(self._path, batch, self._spec_hash, results)
            self._count("completed", len(results))
            self._metrics.observe(
                f"coordinator.lease_seconds.{self.TRANSPORT_LABEL}",
                self._clock() - granted,
            )
        else:
            # Another worker (a claim-stealer) beat us to the result; ours
            # is bit-identical (leaves are pure), so drop it.
            self._count("duplicates")
        _release_claim(self._path, batch)
        self._known_done.add(batch)
        return fresh

    def renew_lease(self, lease_id: str) -> bool:
        """Refresh the claim's ``claimed_at`` stamp (heartbeat).

        Returns ``False`` when the claim no longer exists or now belongs
        to another worker (it expired and was stolen).
        """
        held = self._held.get(lease_id)
        if held is None:
            return False
        batch = held[0]
        claim_path = _claim_path(self._path, batch)
        try:
            with open(claim_path, "r", encoding="utf-8") as handle:
                claim = json.load(handle)
            if claim.get("worker") != self.worker_id:
                return False
        except (OSError, ValueError, KeyError, TypeError):
            return False
        write_json_atomic(
            claim_path, {"worker": self.worker_id, "claimed_at": self._clock()}
        )
        self._count("renewals")
        return True

    def fail_lease(self, lease_id: str) -> None:
        """Release the claim so any worker can re-claim immediately."""
        batch, _ = self._held.pop(lease_id, (None, None))
        if batch is None:
            raise LeaseValidationError(f"unknown lease id {lease_id!r}")
        _release_claim(self._path, batch)
        self._count("failed_leases")

    def wait_for_work(self, timeout: float) -> bool:
        """Sleep — a shared directory has no condition variable to wait on."""
        if timeout > 0:
            time.sleep(timeout)
        return self.done

    @property
    def done(self) -> bool:
        """Does every batch have a valid result?"""
        for batch in self._batches:
            if batch in self._known_done:
                continue
            tasks = self._batch_tasks[batch]
            if (
                _load_valid_result(self._path, batch, self._spec_hash, tasks)
                is None
            ):
                return False
            self._known_done.add(batch)
        return True


# ---------------------------------------------------------------------------
# Worker loop
# ---------------------------------------------------------------------------
def run_worker(
    path: str,
    worker_id: Optional[str] = None,
    poll: float = 0.1,
    max_batches: Optional[int] = None,
    clock=time.time,
    stop: Optional["threading.Event"] = None,
    executor: Optional["Executor"] = None,
    poll_cap: Optional[float] = None,
    renew_interval: Optional[float] = None,
) -> int:
    """Pull and execute batches from a work directory until it is drained.

    Returns the number of batches this worker executed.  The loop ends when
    every batch has a *valid* result — invalid results discovered along the
    way are purged and re-executed, and claims past the lease timeout are
    stolen, so a single surviving worker always finishes the run.

    Idle passes back off exponentially with jitter: the sleep starts at
    ``poll`` and doubles up to ``poll_cap`` (default ``32 * poll``),
    resetting whenever a batch is executed — so a fleet of idle workers
    stops hammering a shared filesystem without delaying a busy one.

    ``stop`` (optional) ends the loop early at the next batch boundary —
    the coordinator sets it when it gives up on the directory.  ``executor``
    (optional) runs each batch on an executor instead of this thread, so
    several in-process worker threads can execute truly in parallel on a
    shared process pool (the ``coordinate`` CLI does exactly that).
    ``renew_interval`` (optional) heartbeats the claim of the executing
    batch every that-many seconds, so lease timeouts can be tightened for
    fast failover without stealing from healthy stragglers.
    """
    transport = FileLeaseTransport(path, worker_id=worker_id, clock=clock)
    backoff = ExponentialBackoff(
        poll, poll_cap if poll_cap is not None else poll * 32
    )
    executed = 0
    while True:
        if max_batches is not None and executed >= max_batches:
            return executed
        if stop is not None and stop.is_set():
            return executed
        lease = transport.request_lease(transport.worker_id)
        if lease is None:
            if transport.done:
                return executed
            delay = backoff.next()
            if stop is not None:
                if stop.wait(delay):
                    return executed
            else:
                time.sleep(delay)
            continue
        backoff.reset()
        spec = transport.spec_for_lease(lease)
        tasks = list(lease.tasks)
        renewer = (
            LeaseRenewer(
                lambda: transport.renew_lease(lease.lease_id), renew_interval
            )
            if renew_interval is not None
            else None
        )
        try:
            if renewer is not None:
                renewer.start()
            if executor is not None:
                results = executor.submit(_execute_task_group, spec, tasks).result()
            else:
                results = _execute_task_group(spec, tasks)
        finally:
            if renewer is not None:
                renewer.stop()
        transport.complete_lease(lease.lease_id, results)
        executed += 1


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------
def _rebuild_cached_results(
    path: str,
    spec: ScenarioSpec,
    spec_hash: str,
    batch_tasks: Dict[str, List[TaskSpec]],
    cache: Optional[TaskCache],
) -> List[TaskResult]:
    """Recreate a lost ``results/cached.json`` prefill file.

    The prefill tasks are exactly the schedule minus every queue batch;
    their results must come from the task cache (or be re-executed when no
    cache is attached — they are deterministic by construction, so this is
    always safe).  Writes the rebuilt file so the next scan finds it.
    """
    queued = {task for tasks in batch_tasks.values() for task in tasks}
    prefilled = [task for task in schedule_tasks(spec) if task not in queued]
    results: List[TaskResult] = []
    for task in prefilled:
        hit = cache.get(spec, task) if cache is not None else None
        if hit is None:
            hit = _execute_task_group(spec, [task])[0]
        results.append(hit)
    write_json_atomic(
        _result_path(path, CACHED_BATCH),
        {
            "format": WORKDIR_FORMAT,
            "spec_hash": spec_hash,
            "batch": CACHED_BATCH,
            "results": [result.to_json_dict() for result in results],
        },
    )
    return results


def collect_results(
    path: str,
    timeout: Optional[float] = None,
    poll: float = 0.1,
    cache: Optional[TaskCache] = None,
    clock=time.time,
    poll_cap: Optional[float] = None,
) -> Tuple[ScenarioSpec, List[TaskResult]]:
    """Wait for full, valid coverage of the schedule and return the results.

    Validates every result file (provenance hash, exact batch coverage),
    purging invalid ones so workers re-execute them, and steals expired
    claims on behalf of dead workers.  Verifies at the end that the union
    of all results covers the scenario's schedule exactly — the same
    guarantee as a shard ``merge``.  Newly computed deterministic results
    are written to ``cache`` when one is given.  Raises ``TimeoutError``
    when ``timeout`` seconds pass without full coverage.

    Polling backs off exponentially with jitter from ``poll`` up to
    ``poll_cap`` (default ``32 * poll``), resetting whenever a new batch
    result lands, so an idle collector stops hammering the shared
    filesystem while a busy one stays responsive.
    """
    path = os.fspath(path)
    spec, meta = load_workdir(path)
    spec_hash = meta["spec_hash"]
    lease_timeout = float(meta["lease_timeout"])
    backoff = ExponentialBackoff(
        poll, poll_cap if poll_cap is not None else poll * 32
    )
    batches = [_batch_name(index) for index in range(meta["batches"])]
    # Queue batch files are immutable: parse each exactly once.  Validated
    # results are cached across poll iterations too — result writes are
    # atomic and never rewritten with different content, so a batch that
    # validated once stays valid, and only missing batches are re-read.
    batch_tasks = {
        batch: _load_batch_tasks(path, batch, spec_hash) for batch in batches
    }
    collected: Dict[str, List[TaskResult]] = {}
    deadline = None if timeout is None else clock() + timeout
    while True:
        missing: List[str] = []
        progressed = False
        for batch in batches:
            if batch in collected:
                continue
            results = _load_valid_result(path, batch, spec_hash, batch_tasks[batch])
            if results is None:
                missing.append(batch)
            else:
                collected[batch] = results
                progressed = True
        if meta.get("cached_tasks", 0) and CACHED_BATCH not in collected:
            cached = _load_valid_result(path, CACHED_BATCH, spec_hash, None)
            if cached is None:
                # The cache-prefill file was corrupted or deleted; its tasks
                # exist in no queue batch, so rebuild it (from the attached
                # cache when possible) instead of leaving the directory
                # permanently short of coverage.
                cached = _rebuild_cached_results(
                    path, spec, spec_hash, batch_tasks, cache
                )
            collected[CACHED_BATCH] = cached
        if not missing:
            by_task: Dict[TaskSpec, TaskResult] = {}
            flat = [result for results in collected.values() for result in results]
            for result in flat:
                by_task[result.task] = result
            schedule = schedule_tasks(spec)
            if len(by_task) != len(flat) or set(by_task) != set(schedule):
                raise ValueError(
                    f"{path}: results do not cover the scenario schedule exactly"
                )
            if cache is not None:
                for batch, results in collected.items():
                    if batch == CACHED_BATCH:
                        continue
                    for result in results:
                        if task_is_deterministic(spec, result.task):
                            cache.put(spec, result)
            return spec, [by_task[task] for task in schedule]
        # Steal expired claims so batches of dead workers free up even
        # when no worker is currently scanning.
        now = clock()
        for batch in missing:
            claim_path = _claim_path(path, batch)
            claimed_at = _claimed_at(claim_path)
            if claimed_at is not None and claimed_at + lease_timeout <= now:
                try:
                    os.unlink(claim_path)
                except OSError:
                    pass
        if deadline is not None and clock() >= deadline:
            raise TimeoutError(
                f"{path}: timed out waiting for {len(missing)} batch(es): "
                f"{missing[:5]}"
            )
        if progressed:
            backoff.reset()
        time.sleep(backoff.next())
