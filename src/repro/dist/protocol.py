"""File-based coordinator protocol over a shared directory.

The in-memory :class:`~repro.dist.coordinator.Coordinator` serves workers
in its own process.  This module speaks the *same lease lifecycle* through
a shared directory (NFS mount, synced folder, shared volume), so workers on
other machines can pull work with nothing but filesystem access:

```
workdir/
├── spec.json            scenario spec + provenance hash + batch count
├── queue/batch-0000.json    one file per lease-sized task batch (immutable)
├── claims/batch-0000.json   lease: created atomically (O_EXCL) by a worker
└── results/batch-0000.json  completed batch results (atomic replace)
```

* **Claiming** a batch creates ``claims/<batch>.json`` with
  ``O_CREAT | O_EXCL`` — atomic on POSIX filesystems, so exactly one
  worker wins a race.  The claim records the worker id and claim time.
* **Expiry**: a claim older than the lease timeout whose batch has no
  result is deleted (by any worker or the collector) and the batch becomes
  claimable again — a dead worker delays its batch by at most the timeout.
* **Completion** writes ``results/<batch>.json`` via temp file +
  ``os.replace``; readers only ever see complete files.  Because leaves
  are pure, a late writer racing a reclaimer produces the same payload.
* **Validation**: every file carries the spec's provenance hash
  (:func:`repro.bench.tasks.spec_provenance_hash`); result files must
  cover their batch's tasks exactly.  Invalid results are purged (and the
  batch re-executed) by whoever discovers them — a corrupted worker cannot
  poison the merged result.

:func:`init_workdir` populates the directory (consulting an optional
:class:`~repro.dist.cache.TaskCache` so cache hits never enter the queue),
:func:`run_worker` is the worker loop (the ``work`` CLI subcommand), and
:func:`collect_results` waits for full coverage and returns results in
schedule order (the ``coordinate`` subcommand).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from concurrent.futures import Executor
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bench.scenario import ScenarioSpec
from repro.bench.tasks import (
    TaskResult,
    TaskSpec,
    _execute_task_group,
    _group_by_cell,
    resolve_granularity,
    schedule_tasks,
    spec_provenance_hash,
    task_is_deterministic,
)
from repro.dist.cache import TaskCache, write_json_atomic
from repro.dist.coordinator import DEFAULT_LEASE_TIMEOUT

#: Version tag of the work-directory format.
WORKDIR_FORMAT = "repro-workdir-v1"

SPEC_FILE = "spec.json"
QUEUE_DIR = "queue"
CLAIM_DIR = "claims"
RESULT_DIR = "results"

#: Results file of cache-prefilled tasks (not a queue batch).
CACHED_BATCH = "cached"


def _batch_name(index: int) -> str:
    return f"batch-{index:04d}"


# ---------------------------------------------------------------------------
# Setup
# ---------------------------------------------------------------------------
def init_workdir(
    path: str,
    spec: ScenarioSpec,
    workers_hint: int = 1,
    granularity: Optional[str] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    cache: Optional[TaskCache] = None,
) -> dict:
    """Populate (or resume) a coordinator work directory; returns its metadata.

    A directory that already holds the same scenario (equal provenance
    hash) is resumed as-is — existing results are kept, which is what makes
    re-runs cheap.  A directory holding a *different* scenario is refused.
    Cache hits are written straight to ``results/cached.json`` and never
    become queue batches.
    """
    path = os.fspath(path)
    spec_hash = spec_provenance_hash(spec)
    spec_path = os.path.join(path, SPEC_FILE)
    if os.path.exists(spec_path):
        with open(spec_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("format") != WORKDIR_FORMAT:
            raise ValueError(f"{path}: not a {WORKDIR_FORMAT} work directory")
        if meta.get("spec_hash") != spec_hash:
            raise ValueError(
                f"{path}: work directory belongs to a different scenario "
                "(spec provenance hash mismatch)"
            )
        return meta
    for sub in (QUEUE_DIR, CLAIM_DIR, RESULT_DIR):
        os.makedirs(os.path.join(path, sub), exist_ok=True)

    tasks = schedule_tasks(spec)
    if cache is not None:
        hits, pending = cache.partition(spec, tasks)
    else:
        hits, pending = {}, list(tasks)
    cached_results = [hits[task] for task in tasks if task in hits]
    if cached_results:
        write_json_atomic(
            os.path.join(path, RESULT_DIR, f"{CACHED_BATCH}.json"),
            {
                "format": WORKDIR_FORMAT,
                "spec_hash": spec_hash,
                "batch": CACHED_BATCH,
                "results": [result.to_json_dict() for result in cached_results],
            },
        )

    resolved = resolve_granularity(
        granularity if granularity is not None else spec.granularity,
        pending,
        max(1, workers_hint),
    )
    if resolved == "cell":
        grouped = _group_by_cell(pending)
    else:
        grouped = [[task] for task in pending]
    for index, group in enumerate(grouped):
        write_json_atomic(
            os.path.join(path, QUEUE_DIR, f"{_batch_name(index)}.json"),
            {
                "format": WORKDIR_FORMAT,
                "spec_hash": spec_hash,
                "batch": _batch_name(index),
                "tasks": [task.to_json_dict() for task in group],
            },
        )
    meta = {
        "format": WORKDIR_FORMAT,
        "spec": spec.to_json_dict(),
        "spec_hash": spec_hash,
        "lease_timeout": lease_timeout,
        "granularity": resolved,
        "batches": len(grouped),
        "cached_tasks": len(cached_results),
    }
    write_json_atomic(spec_path, meta)
    return meta


def load_workdir(path: str) -> Tuple[ScenarioSpec, dict]:
    """Load a work directory's scenario spec and metadata (validated)."""
    path = os.fspath(path)
    with open(os.path.join(path, SPEC_FILE), "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("format") != WORKDIR_FORMAT:
        raise ValueError(f"{path}: not a {WORKDIR_FORMAT} work directory")
    spec = ScenarioSpec.from_json_dict(meta["spec"])
    if meta.get("spec_hash") != spec_provenance_hash(spec):
        raise ValueError(f"{path}: spec provenance hash mismatch")
    return spec, meta


def _load_batch_tasks(path: str, batch: str, spec_hash: str) -> List[TaskSpec]:
    with open(
        os.path.join(path, QUEUE_DIR, f"{batch}.json"), "r", encoding="utf-8"
    ) as handle:
        payload = json.load(handle)
    if payload.get("spec_hash") != spec_hash or payload.get("batch") != batch:
        raise ValueError(f"{path}: queue batch {batch} is corrupt")
    return [TaskSpec.from_json_dict(task) for task in payload["tasks"]]


# ---------------------------------------------------------------------------
# Claims and results
# ---------------------------------------------------------------------------
def _claim_path(path: str, batch: str) -> str:
    return os.path.join(path, CLAIM_DIR, f"{batch}.json")


def _result_path(path: str, batch: str) -> str:
    return os.path.join(path, RESULT_DIR, f"{batch}.json")


def _try_claim(
    path: str, batch: str, worker_id: str, lease_timeout: float, now: float
) -> bool:
    """Atomically claim a batch; steals claims past the lease timeout."""
    claim_path = _claim_path(path, batch)
    for _ in range(2):  # second pass after deleting an expired claim
        try:
            fd = os.open(claim_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            claimed_at = _claimed_at(claim_path)
            if claimed_at is None:
                continue  # claim vanished between the create and the read
            if claimed_at + lease_timeout > now:
                return False
            try:  # expired: delete and retry the exclusive create
                os.unlink(claim_path)
            except OSError:
                return False
            continue
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump({"worker": worker_id, "claimed_at": now}, handle)
            handle.write("\n")
        return True
    return False


def _claimed_at(claim_path: str) -> Optional[float]:
    """When was this claim taken?  ``None`` when the claim no longer exists.

    Falls back to the file's mtime when the claim content is unreadable —
    a worker killed between creating and writing the claim must not leave
    its batch permanently unclaimable.
    """
    try:
        with open(claim_path, "r", encoding="utf-8") as handle:
            return float(json.load(handle)["claimed_at"])
    except (ValueError, KeyError, TypeError):
        pass
    except OSError:
        return None
    try:
        return os.stat(claim_path).st_mtime
    except OSError:
        return None


def _release_claim(path: str, batch: str) -> None:
    try:
        os.unlink(_claim_path(path, batch))
    except OSError:
        pass


def _load_valid_result(
    path: str,
    batch: str,
    spec_hash: str,
    expected_tasks: Optional[Sequence[TaskSpec]],
) -> Optional[List[TaskResult]]:
    """Load a result file, purging it (and its claim) when invalid.

    ``expected_tasks`` is the batch's task list (``None`` for the cache
    prefill file, which has no queue counterpart).  Returns ``None`` when
    the result is missing or was invalid and purged.
    """
    result_path = _result_path(path, batch)
    try:
        with open(result_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("spec_hash") != spec_hash or payload.get("batch") != batch:
            raise ValueError("foreign result file")
        results = [TaskResult.from_json_dict(entry) for entry in payload["results"]]
        if expected_tasks is not None:
            produced = {result.task for result in results}
            if len(produced) != len(results) or produced != set(expected_tasks):
                raise ValueError("results do not cover the batch")
    except OSError:
        return None
    except (ValueError, KeyError, TypeError):
        try:
            os.unlink(result_path)
        except OSError:
            pass
        _release_claim(path, batch)
        return None
    return results


def _write_result(
    path: str, batch: str, spec_hash: str, results: Sequence[TaskResult]
) -> None:
    write_json_atomic(
        _result_path(path, batch),
        {
            "format": WORKDIR_FORMAT,
            "spec_hash": spec_hash,
            "batch": batch,
            "results": [result.to_json_dict() for result in results],
        },
    )


# ---------------------------------------------------------------------------
# Worker loop
# ---------------------------------------------------------------------------
def run_worker(
    path: str,
    worker_id: Optional[str] = None,
    poll: float = 0.1,
    max_batches: Optional[int] = None,
    clock=time.time,
    stop: Optional["threading.Event"] = None,
    executor: Optional["Executor"] = None,
) -> int:
    """Pull and execute batches from a work directory until it is drained.

    Returns the number of batches this worker executed.  The loop ends when
    every batch has a *valid* result — invalid results discovered along the
    way are purged and re-executed, and claims past the lease timeout are
    stolen, so a single surviving worker always finishes the run.

    ``stop`` (optional) ends the loop early at the next batch boundary —
    the coordinator sets it when it gives up on the directory.  ``executor``
    (optional) runs each batch on an executor instead of this thread, so
    several in-process worker threads can execute truly in parallel on a
    shared process pool (the ``coordinate`` CLI does exactly that).
    """
    path = os.fspath(path)
    if worker_id is None:
        worker_id = f"{os.getpid()}-{uuid.uuid4().hex[:6]}"
    spec, meta = load_workdir(path)
    spec_hash = meta["spec_hash"]
    lease_timeout = float(meta["lease_timeout"])
    batches = [_batch_name(index) for index in range(meta["batches"])]
    # Queue batch files are immutable: parse each exactly once.
    batch_tasks = {
        batch: _load_batch_tasks(path, batch, spec_hash) for batch in batches
    }
    known_done: Set[str] = set()
    executed = 0
    while True:
        if max_batches is not None and executed >= max_batches:
            return executed
        if stop is not None and stop.is_set():
            return executed
        progressed = False
        for batch in batches:
            if batch in known_done:
                continue
            if stop is not None and stop.is_set():
                return executed
            tasks = batch_tasks[batch]
            if _load_valid_result(path, batch, spec_hash, tasks) is not None:
                known_done.add(batch)
                continue
            if not _try_claim(path, batch, worker_id, lease_timeout, clock()):
                continue
            if executor is not None:
                results = executor.submit(_execute_task_group, spec, tasks).result()
            else:
                results = _execute_task_group(spec, tasks)
            _write_result(path, batch, spec_hash, results)
            _release_claim(path, batch)
            known_done.add(batch)
            executed += 1
            progressed = True
            if max_batches is not None and executed >= max_batches:
                return executed
        if len(known_done) == len(batches):
            return executed
        if not progressed:
            time.sleep(poll)


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------
def _rebuild_cached_results(
    path: str,
    spec: ScenarioSpec,
    spec_hash: str,
    batch_tasks: Dict[str, List[TaskSpec]],
    cache: Optional[TaskCache],
) -> List[TaskResult]:
    """Recreate a lost ``results/cached.json`` prefill file.

    The prefill tasks are exactly the schedule minus every queue batch;
    their results must come from the task cache (or be re-executed when no
    cache is attached — they are deterministic by construction, so this is
    always safe).  Writes the rebuilt file so the next scan finds it.
    """
    queued = {task for tasks in batch_tasks.values() for task in tasks}
    prefilled = [task for task in schedule_tasks(spec) if task not in queued]
    results: List[TaskResult] = []
    for task in prefilled:
        hit = cache.get(spec, task) if cache is not None else None
        if hit is None:
            hit = _execute_task_group(spec, [task])[0]
        results.append(hit)
    write_json_atomic(
        _result_path(path, CACHED_BATCH),
        {
            "format": WORKDIR_FORMAT,
            "spec_hash": spec_hash,
            "batch": CACHED_BATCH,
            "results": [result.to_json_dict() for result in results],
        },
    )
    return results


def collect_results(
    path: str,
    timeout: Optional[float] = None,
    poll: float = 0.1,
    cache: Optional[TaskCache] = None,
    clock=time.time,
) -> Tuple[ScenarioSpec, List[TaskResult]]:
    """Wait for full, valid coverage of the schedule and return the results.

    Validates every result file (provenance hash, exact batch coverage),
    purging invalid ones so workers re-execute them, and steals expired
    claims on behalf of dead workers.  Verifies at the end that the union
    of all results covers the scenario's schedule exactly — the same
    guarantee as a shard ``merge``.  Newly computed deterministic results
    are written to ``cache`` when one is given.  Raises ``TimeoutError``
    when ``timeout`` seconds pass without full coverage.
    """
    path = os.fspath(path)
    spec, meta = load_workdir(path)
    spec_hash = meta["spec_hash"]
    lease_timeout = float(meta["lease_timeout"])
    batches = [_batch_name(index) for index in range(meta["batches"])]
    # Queue batch files are immutable: parse each exactly once.  Validated
    # results are cached across poll iterations too — result writes are
    # atomic and never rewritten with different content, so a batch that
    # validated once stays valid, and only missing batches are re-read.
    batch_tasks = {
        batch: _load_batch_tasks(path, batch, spec_hash) for batch in batches
    }
    collected: Dict[str, List[TaskResult]] = {}
    deadline = None if timeout is None else clock() + timeout
    while True:
        missing: List[str] = []
        for batch in batches:
            if batch in collected:
                continue
            results = _load_valid_result(path, batch, spec_hash, batch_tasks[batch])
            if results is None:
                missing.append(batch)
            else:
                collected[batch] = results
        if meta.get("cached_tasks", 0) and CACHED_BATCH not in collected:
            cached = _load_valid_result(path, CACHED_BATCH, spec_hash, None)
            if cached is None:
                # The cache-prefill file was corrupted or deleted; its tasks
                # exist in no queue batch, so rebuild it (from the attached
                # cache when possible) instead of leaving the directory
                # permanently short of coverage.
                cached = _rebuild_cached_results(
                    path, spec, spec_hash, batch_tasks, cache
                )
            collected[CACHED_BATCH] = cached
        if not missing:
            by_task: Dict[TaskSpec, TaskResult] = {}
            flat = [result for results in collected.values() for result in results]
            for result in flat:
                by_task[result.task] = result
            schedule = schedule_tasks(spec)
            if len(by_task) != len(flat) or set(by_task) != set(schedule):
                raise ValueError(
                    f"{path}: results do not cover the scenario schedule exactly"
                )
            if cache is not None:
                for batch, results in collected.items():
                    if batch == CACHED_BATCH:
                        continue
                    for result in results:
                        if task_is_deterministic(spec, result.task):
                            cache.put(spec, result)
            return spec, [by_task[task] for task in schedule]
        # Steal expired claims so batches of dead workers free up even
        # when no worker is currently scanning.
        now = clock()
        for batch in missing:
            claim_path = _claim_path(path, batch)
            claimed_at = _claimed_at(claim_path)
            if claimed_at is not None and claimed_at + lease_timeout <= now:
                try:
                    os.unlink(claim_path)
                except OSError:
                    pass
        if deadline is not None and clock() >= deadline:
            raise TimeoutError(
                f"{path}: timed out waiting for {len(missing)} batch(es): "
                f"{missing[:5]}"
            )
        time.sleep(poll)
