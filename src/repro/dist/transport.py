"""The lease transport interface: one lifecycle, many wires.

Every execution backend in :mod:`repro.dist` moves the *same* lease
lifecycle (``pending → leased → done`` with expiry, late completions,
duplicates, validation, and straggler splits — see
:mod:`repro.dist.coordinator`) over a different wire:

* :class:`~repro.dist.coordinator.Coordinator` — in-memory, same-process
  threads;
* :class:`~repro.dist.protocol.FileLeaseTransport` — ``O_EXCL`` claim
  files on a shared filesystem;
* :class:`~repro.dist.service.RemoteLeaseTransport` — length-prefixed
  JSON frames over a TCP connection to a :class:`~repro.dist.service.
  LeaseService`.

:class:`LeaseTransport` is the explicit contract they all implement, so
the generic worker loop (:class:`repro.dist.worker.Worker`) can drain any
of them.  The messages are deliberately tiny:

====================  ====================================================
``request_lease``     claim the next group of tasks (or ``None``)
``complete_lease``    deliver results; ``False`` for a full duplicate
``renew_lease``       heartbeat: extend the deadline of a live lease
``fail_lease``        give a lease back immediately (worker giving up)
``wait_for_work``     block until work may be available
``done``              has every scheduled task completed?
``spec_for_lease``    the :class:`ScenarioSpec` a lease's tasks belong to
====================  ====================================================

Because execution is at-least-once over pure leaves with per-task
reconciliation, *any* implementation that delivers these messages — no
matter how lossy, slow, or duplicated the wire — yields results
bit-identical to a sequential run on step-driven specs.

The module also hosts the shared idle-loop helpers: the jittered
exponential backoff used by every polling/reconnect loop, and the
heartbeat thread that renews a lease while a long task executes.
"""

from __future__ import annotations

import abc
import random
import threading
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.bench.scenario import ScenarioSpec
from repro.bench.tasks import TaskResult, TaskSpec


@dataclass(frozen=True)
class Lease:
    """One granted lease: a task group, its holder, and its deadline."""

    lease_id: str
    worker_id: str
    tasks: Tuple[TaskSpec, ...]
    deadline: float
    attempt: int


class LeaseTransport(abc.ABC):
    """Abstract lease lifecycle endpoint a worker loop drains.

    Implementations must be safe to call from multiple threads: the
    heartbeat renewer (:class:`LeaseRenewer`) calls :meth:`renew_lease`
    concurrently with the executing thread.
    """

    @abc.abstractmethod
    def request_lease(self, worker_id: str) -> Optional[Lease]:
        """Claim the next pending task group, or ``None`` when idle."""

    @abc.abstractmethod
    def complete_lease(
        self, lease_id: str, results: Sequence[TaskResult]
    ) -> bool:
        """Deliver a lease's results.

        Returns ``True`` when at least one new task result was recorded,
        ``False`` for a full duplicate.  May raise
        :class:`~repro.dist.coordinator.LeaseValidationError` when the
        results do not cover the leased tasks.
        """

    @abc.abstractmethod
    def renew_lease(self, lease_id: str) -> bool:
        """Extend a live lease's deadline (heartbeat).

        Returns ``True`` when the lease was still current and its
        deadline was pushed out; ``False`` when it was already
        reclaimed, completed, or unknown (the worker should finish the
        work anyway — a late completion is still accepted if nobody
        else delivered first).
        """

    @abc.abstractmethod
    def fail_lease(self, lease_id: str) -> None:
        """Return a lease to the queue immediately (worker giving up)."""

    @abc.abstractmethod
    def wait_for_work(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds until work may be available.

        Returns :attr:`done` at the time of waking.
        """

    @property
    @abc.abstractmethod
    def done(self) -> bool:
        """Have all currently scheduled tasks been completed?"""

    @abc.abstractmethod
    def spec_for_lease(self, lease: Lease) -> ScenarioSpec:
        """The scenario spec that ``lease``'s tasks belong to."""


class ExponentialBackoff:
    """Jittered exponential backoff for idle-poll and reconnect loops.

    Successive :meth:`next` calls return ``initial``, ``2*initial``,
    ``4*initial``, ... capped at ``cap``, each multiplied by a uniform
    jitter in ``[1-jitter, 1+jitter]`` so a fleet of idle workers does
    not hammer a shared filesystem (or server) in lockstep.  Call
    :meth:`reset` whenever progress is made.

    Jitter only perturbs *sleep scheduling*; task results are unaffected
    (leaves are pure and the reduce is order-insensitive), so using a
    non-seeded RNG here cannot break bit-identity.
    """

    def __init__(
        self,
        initial: float,
        cap: float,
        factor: float = 2.0,
        jitter: float = 0.25,
        rng: Optional[random.Random] = None,
    ) -> None:
        if initial <= 0:
            raise ValueError("initial delay must be positive")
        if cap < initial:
            raise ValueError("cap must be >= initial delay")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self._initial = initial
        self._cap = cap
        self._factor = factor
        self._jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._current = initial

    @property
    def current(self) -> float:
        """The un-jittered delay the next :meth:`next` call is based on."""
        return self._current

    def next(self) -> float:
        """Return the next (jittered) delay and advance the schedule."""
        base = self._current
        self._current = min(self._cap, self._current * self._factor)
        if self._jitter:
            base *= 1.0 + self._jitter * (2.0 * self._rng.random() - 1.0)
        return base

    def reset(self) -> None:
        """Drop back to the initial delay (progress was made)."""
        self._current = self._initial


class LeaseRenewer:
    """Daemon thread that heartbeats a lease while a task executes.

    Calls ``renew()`` every ``interval`` seconds until stopped (or until
    a renewal reports the lease is no longer current — at that point the
    lease has been reclaimed and further heartbeats are pointless; the
    worker still completes, and per-task reconciliation accepts the late
    result if it arrives first).  Use as a context manager around the
    execution of one lease::

        with LeaseRenewer(lambda: transport.renew_lease(lease_id), 5.0):
            results = execute(lease.tasks)
        transport.complete_lease(lease_id, results)

    ``renew`` runs on the renewer thread, so the transport's
    ``renew_lease`` must be thread-safe (all in-tree transports are).
    Exceptions from ``renew`` stop the heartbeat silently — a broken
    wire surfaces on the completion attempt, with better context.
    """

    def __init__(self, renew: Callable[[], bool], interval: float) -> None:
        if interval <= 0:
            raise ValueError("renew interval must be positive")
        self._renew = renew
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="lease-renewer", daemon=True
        )
        #: Number of successful renewals performed (for tests/telemetry).
        self.renewals = 0

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                if not self._renew():
                    return
            except Exception:
                return
            self.renewals += 1

    def start(self) -> "LeaseRenewer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "LeaseRenewer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
