"""Content-addressed cache of leaf-task results.

A :class:`TaskCache` stores one :class:`~repro.bench.tasks.TaskResult` per
**provenance hash** — the SHA-256 of everything that determines a leaf's
frontiers (:func:`repro.bench.tasks.task_provenance_hash`).  Because the
hash excludes spec fields that cannot affect the leaf (figure name, grid,
algorithm list, worker knobs), a DP(1.01) reference frontier computed for
one figure variant is a cache hit for every variant sharing its test cases,
and a re-run of the same figure executes zero reference leaves.

Only *deterministic* leaves may enter the cache
(:func:`repro.bench.tasks.task_is_deterministic`): a wall-clock-budgeted
leaf's frontier depends on machine load, so serving it from cache would
change results.  :meth:`TaskCache.put` enforces this.

Entries live under ``<root>/<hh>/<hash>.json`` (two-level fan-out keeps
directories small).  Writes are atomic (temp file + ``os.replace``), so
concurrent workers sharing a cache directory can only ever observe complete
entries; corrupted or foreign files are treated as misses — but no longer
*silent* ones: each corrupt entry increments ``cache.corrupt_entries``,
logs a structured warning, and emits a ``cache.corrupt_entry`` trace event
(see :mod:`repro.obs`).

The cache is **append-only by default**.  ``max_bytes`` turns on a
size-capped LRU policy: every hit refreshes its entry's mtime, and a write
that pushes the cache past the cap evicts least-recently-used entries until
it fits again.  Evictions are atomic single-file unlinks (a concurrently
evicted entry is just a miss), so sharing a capped cache between workers
stays safe.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.scenario import ScenarioSpec
from repro.bench.tasks import (
    TaskResult,
    TaskSpec,
    task_is_deterministic,
    task_provenance_hash,
)
from repro.obs import get_tracer
from repro.obs.metrics import Metrics

logger = logging.getLogger(__name__)

#: Legacy names of the cache counters, exposed verbatim by
#: :attr:`TaskCache.stats`; each is metric ``cache.<name>``.
_STAT_KEYS = ("hits", "misses", "stores", "evictions")

#: Version tag of the cache entry file format.
CACHE_ENTRY_FORMAT = "repro-task-cache-v1"

#: Version tag of raw-key entries (subsystems that hash their own
#: provenance, e.g. per-subset DP reductions in :mod:`repro.dist.dp`).
CACHE_RAW_FORMAT = "repro-task-cache-raw-v1"

#: Leading magic of binary raw-key entries (``.bin`` files).  The key is
#: embedded after the magic so foreign or renamed files are misses, exactly
#: like the JSON tiers' ``format``/``key`` checks.
CACHE_RAW_BYTES_MAGIC = b"repro-task-cache-bin-v1\n"

#: File suffixes that count as cache entries (LRU accounting and ``len``).
_ENTRY_SUFFIXES = (".json", ".bin")


def write_json_atomic(path: str, payload: dict) -> None:
    """Write a JSON file atomically (temp file + ``os.replace``).

    Readers — including ones on other machines watching a shared
    directory — only ever observe the complete file.  Used by the cache
    and by every file of the coordinator's directory protocol.
    """
    directory = os.path.dirname(path)
    fd, temp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def write_bytes_atomic(path: str, data: bytes) -> None:
    """Write a binary file atomically (temp file + ``os.replace``).

    The binary twin of :func:`write_json_atomic`, used by the cache's
    packed-bytes tier.
    """
    directory = os.path.dirname(path)
    fd, temp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".bin")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


class TaskCache:
    """Filesystem-backed, content-addressed store of leaf-task results.

    Parameters
    ----------
    root:
        Cache directory (created on first write).  Safe to share between
        concurrent workers and successive runs; entries are immutable.
    max_bytes:
        Optional size cap.  ``None`` (the default) keeps the cache
        append-only; a positive value enables LRU eviction: hits refresh
        recency, and writes evict least-recently-used entries until the
        cache fits the cap.
    metrics:
        Optional shared :class:`~repro.obs.metrics.Metrics` registry the
        ``cache.*`` counters are mirrored into (for live dashboards).
        The cache always keeps a private registry; the legacy
        :attr:`stats` view reads that one.
    """

    def __init__(
        self,
        root: str,
        max_bytes: int | None = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self._root = os.fspath(root)
        self._max_bytes = max_bytes
        # Running size estimate so under-cap writes stay O(1): seeded by one
        # full scan, bumped per store, re-measured only when the estimate
        # crosses the cap (concurrent workers make any local count drift,
        # so eviction always re-scans before unlinking anything).
        self._approx_bytes: int | None = None
        self._metrics = Metrics()
        self._shared_metrics = metrics

    def _count(self, key: str, value: int = 1) -> None:
        """Bump counter ``cache.<key>`` (private + shared registries)."""
        self._metrics.add(f"cache.{key}", value)
        if self._shared_metrics is not None:
            self._shared_metrics.add(f"cache.{key}", value)

    def _count_written(self, path: str) -> None:
        """Account the on-disk size of a freshly written entry."""
        try:
            self._count("bytes_written", os.path.getsize(path))
        except OSError:  # evicted concurrently
            pass

    def _note_corrupt(self, key: str, path: str, error: Exception) -> None:
        """Record a corrupt entry: metric + structured warning + event.

        Corruption (an entry that exists but is unreadable, foreign, or
        stale) still degrades to a miss — throughput, never correctness —
        but is no longer silent: it increments ``cache.corrupt_entries``,
        logs a warning, and emits a ``cache.corrupt_entry`` trace event.
        """
        self._count("corrupt_entries")
        logger.warning(
            "task cache: corrupt entry %s (%s: %s); treating as a miss",
            path,
            type(error).__name__,
            error,
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "cache.corrupt_entry",
                key=key,
                path=path,
                error=f"{type(error).__name__}: {error}",
            )

    @property
    def root(self) -> str:
        """The cache directory."""
        return self._root

    @property
    def max_bytes(self) -> int | None:
        """The size cap in bytes (``None``: append-only)."""
        return self._max_bytes

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss/store/eviction counters, legacy dict shape (thin view).

        Counters live in a :class:`~repro.obs.metrics.Metrics` registry
        (see :attr:`metrics`) since the observability consolidation; this
        property rebuilds the historical four-key dict from it.
        """
        return {key: self._metrics.counter(f"cache.{key}") for key in _STAT_KEYS}

    @property
    def metrics(self) -> Metrics:
        """This cache's private metrics registry (``cache.*`` names).

        Beyond the legacy four, it carries ``cache.corrupt_entries`` and
        the ``cache.bytes_read`` / ``cache.bytes_written`` volumes.
        """
        return self._metrics

    def _entry_path(self, key: str) -> str:
        return os.path.join(self._root, key[:2], f"{key}.json")

    def _entry_path_bin(self, key: str) -> str:
        return os.path.join(self._root, key[:2], f"{key}.bin")

    def get(self, spec: ScenarioSpec, task: TaskSpec) -> Optional[TaskResult]:
        """The cached result of a leaf, or ``None``.

        Non-deterministic leaves always miss (they must be recomputed), as
        do missing, unreadable, or foreign entries — a corrupt cache can
        degrade throughput, never correctness.
        """
        if not task_is_deterministic(spec, task):
            self._count("misses")
            return None
        key = task_provenance_hash(spec, task)
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            # Absent (or unreadable) entry: an ordinary miss.
            self._count("misses")
            return None
        try:
            payload = json.loads(text)
            if payload.get("format") != CACHE_ENTRY_FORMAT or payload.get("key") != key:
                raise ValueError("foreign or stale cache entry")
            result = TaskResult.from_json_dict(payload["result"])
            if result.task != task:
                raise ValueError("cache entry stores a different task")
        except (ValueError, KeyError, TypeError) as error:
            # The entry exists but cannot be trusted: a *corrupt* miss.
            self._note_corrupt(key, path, error)
            self._count("misses")
            return None
        self._count("hits")
        self._count("bytes_read", len(text))
        if self._max_bytes is not None:
            self._touch(path)
        return result

    @staticmethod
    def _touch(path: str) -> None:
        """Refresh an entry's mtime (LRU recency); races are harmless."""
        try:
            os.utime(path)
        except OSError:
            pass

    def partition(
        self, spec: ScenarioSpec, tasks: "Sequence[TaskSpec]"
    ) -> "Tuple[Dict[TaskSpec, TaskResult], List[TaskSpec]]":
        """Split a task list into cache hits and still-pending tasks.

        The single prefill step every backend runs before executing
        anything: hits never enter a queue, pool, or work directory.
        """
        hits: Dict[TaskSpec, TaskResult] = {}
        pending: List[TaskSpec] = []
        for task in tasks:
            cached = self.get(spec, task)
            if cached is not None:
                hits[task] = cached
            else:
                pending.append(task)
        return hits, pending

    def put(self, spec: ScenarioSpec, result: TaskResult) -> str:
        """Store one leaf result; returns the entry's provenance hash.

        Raises ``ValueError`` for non-deterministic leaves — caching a
        load-dependent result would poison every later run.
        """
        if not task_is_deterministic(spec, result.task):
            raise ValueError(
                f"refusing to cache non-deterministic task {result.task.task_id!r} "
                "(wall-clock-budgeted results depend on machine load)"
            )
        key = task_provenance_hash(spec, result.task)
        path = self._entry_path(key)
        try:
            # Entries are content-addressed and immutable: when a valid
            # entry already exists, skip the redundant write (re-collected
            # work directories re-put every result).  A corrupt existing
            # entry falls through and is rewritten.
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if existing.get("format") == CACHE_ENTRY_FORMAT and existing.get("key") == key:
                if self._max_bytes is not None:
                    # A re-put is a use: refresh LRU recency like a hit.
                    self._touch(path)
                return key
        except (OSError, ValueError):
            pass
        os.makedirs(os.path.dirname(path), exist_ok=True)
        write_json_atomic(
            path,
            {
                "format": CACHE_ENTRY_FORMAT,
                "key": key,
                "task_id": result.task.task_id,
                "result": result.to_json_dict(),
            },
        )
        self._count("stores")
        self._count_written(path)
        if self._max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                try:
                    self._approx_bytes += os.path.getsize(path)
                except OSError:
                    pass
            if self._approx_bytes > self._max_bytes:
                self._enforce_cap(keep=path)
        return key

    # -------------------------------------------------------- raw-key entries
    def get_raw(self, key: str) -> Optional[dict]:
        """The JSON payload cached under a caller-computed provenance key.

        The raw-key API serves subsystems whose provenance is not a
        :class:`~repro.bench.tasks.TaskSpec` — the caller hashes everything
        that determines its result (see ``repro.dist.dp.dp_subset_key``) and
        stores an arbitrary JSON-serializable payload.  Raw entries share
        the directory tree, atomic writes, stats, and LRU policy with task
        entries but carry their own format tag, so neither API can misread
        the other's files.
        """
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            self._count("misses")
            return None
        try:
            entry = json.loads(text)
            if entry.get("format") != CACHE_RAW_FORMAT or entry.get("key") != key:
                raise ValueError("foreign or stale cache entry")
            payload = entry["payload"]
        except (ValueError, KeyError, TypeError) as error:
            self._note_corrupt(key, path, error)
            self._count("misses")
            return None
        self._count("hits")
        self._count("bytes_read", len(text))
        if self._max_bytes is not None:
            self._touch(path)
        return payload

    def put_raw(self, key: str, payload: dict) -> str:
        """Store a JSON payload under a caller-computed key; returns the key.

        The caller vouches for determinism: the key must cover every input
        that can affect the payload.
        """
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if existing.get("format") == CACHE_RAW_FORMAT and existing.get("key") == key:
                if self._max_bytes is not None:
                    self._touch(path)
                return key
        except (OSError, ValueError):
            pass
        os.makedirs(os.path.dirname(path), exist_ok=True)
        write_json_atomic(
            path,
            {"format": CACHE_RAW_FORMAT, "key": key, "payload": payload},
        )
        self._count("stores")
        self._count_written(path)
        if self._max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                try:
                    self._approx_bytes += os.path.getsize(path)
                except OSError:
                    pass
            if self._approx_bytes > self._max_bytes:
                self._enforce_cap(keep=path)
        return key

    # ------------------------------------------------- raw-key binary entries
    def get_raw_bytes(self, key: str) -> Optional[bytes]:
        """The packed-bytes payload cached under a caller-computed key.

        The binary tier of the raw-key API: payloads are opaque byte strings
        (e.g. the packed structured-array DP effects of
        :mod:`repro.dist.dp`), stored verbatim after a magic + key header —
        float64 values round-trip exactly, NaN and ±inf included, with none
        of JSON's number-formatting hazards.  Shares the directory tree,
        atomic writes, stats, and LRU policy with the JSON tiers; the
        distinct suffix and magic keep the tiers from misreading each other.
        """
        path = self._entry_path_bin(key)
        prefix = CACHE_RAW_BYTES_MAGIC + key.encode("ascii") + b"\n"
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self._count("misses")
            return None
        if not data.startswith(prefix):
            self._note_corrupt(
                key, path, ValueError("foreign or stale cache entry")
            )
            self._count("misses")
            return None
        self._count("hits")
        self._count("bytes_read", len(data))
        if self._max_bytes is not None:
            self._touch(path)
        return data[len(prefix):]

    def put_raw_bytes(self, key: str, payload: bytes) -> str:
        """Store a packed-bytes payload under a caller-computed key.

        As with :meth:`put_raw`, the caller vouches that the key covers
        every input that can affect the payload.  Entries are immutable:
        an existing valid entry is not rewritten, only LRU-refreshed.
        """
        path = self._entry_path_bin(key)
        prefix = CACHE_RAW_BYTES_MAGIC + key.encode("ascii") + b"\n"
        try:
            with open(path, "rb") as handle:
                existing = handle.read(len(prefix))
            if existing == prefix:
                if self._max_bytes is not None:
                    self._touch(path)
                return key
        except OSError:
            pass
        os.makedirs(os.path.dirname(path), exist_ok=True)
        write_bytes_atomic(path, prefix + payload)
        self._count("stores")
        self._count("bytes_written", len(prefix) + len(payload))
        if self._max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                try:
                    self._approx_bytes += os.path.getsize(path)
                except OSError:
                    pass
            if self._approx_bytes > self._max_bytes:
                self._enforce_cap(keep=path)
        return key

    # ----------------------------------------------------------- LRU policy
    def _entries_by_recency(self) -> "List[Tuple[float, str, int]]":
        """All entries as ``(mtime, path, size)``, least recent first."""
        entries: List[Tuple[float, str, int]] = []
        if not os.path.isdir(self._root):
            return entries
        for shard in sorted(os.listdir(self._root)):
            shard_dir = os.path.join(self._root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(_ENTRY_SUFFIXES) or name.startswith(".tmp-"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    status = os.stat(path)
                except OSError:  # evicted concurrently
                    continue
                entries.append((status.st_mtime, path, status.st_size))
        entries.sort()
        return entries

    def total_bytes(self) -> int:
        """Total size of all entries currently on disk."""
        return sum(size for _, _, size in self._entries_by_recency())

    def _enforce_cap(self, keep: str | None = None) -> None:
        """Evict least-recently-used entries until the cache fits the cap.

        ``keep`` protects the entry just written (it is the most recent
        anyway; the guard matters when a single entry exceeds the cap).
        Evictions are plain unlinks — concurrent readers of an evicted
        entry observe an ordinary miss.
        """
        assert self._max_bytes is not None
        entries = self._entries_by_recency()
        total = sum(size for _, _, size in entries)
        for _, path, size in entries:
            if total <= self._max_bytes:
                break
            if path == keep:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self._count("evictions")
        self._approx_bytes = total

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        count = 0
        if not os.path.isdir(self._root):
            return 0
        for shard in os.listdir(self._root):
            shard_dir = os.path.join(self._root, shard)
            if os.path.isdir(shard_dir):
                count += sum(
                    1
                    for name in os.listdir(shard_dir)
                    if name.endswith(_ENTRY_SUFFIXES) and not name.startswith(".tmp-")
                )
        return count
