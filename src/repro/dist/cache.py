"""Content-addressed cache of leaf-task results.

A :class:`TaskCache` stores one :class:`~repro.bench.tasks.TaskResult` per
**provenance hash** — the SHA-256 of everything that determines a leaf's
frontiers (:func:`repro.bench.tasks.task_provenance_hash`).  Because the
hash excludes spec fields that cannot affect the leaf (figure name, grid,
algorithm list, worker knobs), a DP(1.01) reference frontier computed for
one figure variant is a cache hit for every variant sharing its test cases,
and a re-run of the same figure executes zero reference leaves.

Only *deterministic* leaves may enter the cache
(:func:`repro.bench.tasks.task_is_deterministic`): a wall-clock-budgeted
leaf's frontier depends on machine load, so serving it from cache would
change results.  :meth:`TaskCache.put` enforces this.

Entries live under ``<root>/<hh>/<hash>.json`` (two-level fan-out keeps
directories small).  Writes are atomic (temp file + ``os.replace``), so
concurrent workers sharing a cache directory can only ever observe complete
entries; corrupted or foreign files are treated as misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.scenario import ScenarioSpec
from repro.bench.tasks import (
    TaskResult,
    TaskSpec,
    task_is_deterministic,
    task_provenance_hash,
)

#: Version tag of the cache entry file format.
CACHE_ENTRY_FORMAT = "repro-task-cache-v1"


def write_json_atomic(path: str, payload: dict) -> None:
    """Write a JSON file atomically (temp file + ``os.replace``).

    Readers — including ones on other machines watching a shared
    directory — only ever observe the complete file.  Used by the cache
    and by every file of the coordinator's directory protocol.
    """
    directory = os.path.dirname(path)
    fd, temp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


class TaskCache:
    """Filesystem-backed, content-addressed store of leaf-task results.

    Parameters
    ----------
    root:
        Cache directory (created on first write).  Safe to share between
        concurrent workers and successive runs; entries are immutable.
    """

    def __init__(self, root: str) -> None:
        self._root = os.fspath(root)
        self._stats: Dict[str, int] = {"hits": 0, "misses": 0, "stores": 0}

    @property
    def root(self) -> str:
        """The cache directory."""
        return self._root

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss/store counters of this cache instance (a copy)."""
        return dict(self._stats)

    def _entry_path(self, key: str) -> str:
        return os.path.join(self._root, key[:2], f"{key}.json")

    def get(self, spec: ScenarioSpec, task: TaskSpec) -> Optional[TaskResult]:
        """The cached result of a leaf, or ``None``.

        Non-deterministic leaves always miss (they must be recomputed), as
        do missing, unreadable, or foreign entries — a corrupt cache can
        degrade throughput, never correctness.
        """
        if not task_is_deterministic(spec, task):
            self._stats["misses"] += 1
            return None
        key = task_provenance_hash(spec, task)
        try:
            with open(self._entry_path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("format") != CACHE_ENTRY_FORMAT or payload.get("key") != key:
                raise ValueError("foreign or stale cache entry")
            result = TaskResult.from_json_dict(payload["result"])
            if result.task != task:
                raise ValueError("cache entry stores a different task")
        except (OSError, ValueError, KeyError, TypeError):
            self._stats["misses"] += 1
            return None
        self._stats["hits"] += 1
        return result

    def partition(
        self, spec: ScenarioSpec, tasks: "Sequence[TaskSpec]"
    ) -> "Tuple[Dict[TaskSpec, TaskResult], List[TaskSpec]]":
        """Split a task list into cache hits and still-pending tasks.

        The single prefill step every backend runs before executing
        anything: hits never enter a queue, pool, or work directory.
        """
        hits: Dict[TaskSpec, TaskResult] = {}
        pending: List[TaskSpec] = []
        for task in tasks:
            cached = self.get(spec, task)
            if cached is not None:
                hits[task] = cached
            else:
                pending.append(task)
        return hits, pending

    def put(self, spec: ScenarioSpec, result: TaskResult) -> str:
        """Store one leaf result; returns the entry's provenance hash.

        Raises ``ValueError`` for non-deterministic leaves — caching a
        load-dependent result would poison every later run.
        """
        if not task_is_deterministic(spec, result.task):
            raise ValueError(
                f"refusing to cache non-deterministic task {result.task.task_id!r} "
                "(wall-clock-budgeted results depend on machine load)"
            )
        key = task_provenance_hash(spec, result.task)
        path = self._entry_path(key)
        try:
            # Entries are content-addressed and immutable: when a valid
            # entry already exists, skip the redundant write (re-collected
            # work directories re-put every result).  A corrupt existing
            # entry falls through and is rewritten.
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if existing.get("format") == CACHE_ENTRY_FORMAT and existing.get("key") == key:
                return key
        except (OSError, ValueError):
            pass
        os.makedirs(os.path.dirname(path), exist_ok=True)
        write_json_atomic(
            path,
            {
                "format": CACHE_ENTRY_FORMAT,
                "key": key,
                "task_id": result.task.task_id,
                "result": result.to_json_dict(),
            },
        )
        self._stats["stores"] += 1
        return key

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        count = 0
        if not os.path.isdir(self._root):
            return 0
        for shard in os.listdir(self._root):
            shard_dir = os.path.join(self._root, shard)
            if os.path.isdir(shard_dir):
                count += sum(
                    1
                    for name in os.listdir(shard_dir)
                    if name.endswith(".json") and not name.startswith(".tmp-")
                )
        return count
