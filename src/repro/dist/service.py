"""Optimization as a service: the asyncio TCP lease transport.

The third wire for the lease lifecycle (after the in-memory
:class:`~repro.dist.coordinator.Coordinator` and the shared-directory
:class:`~repro.dist.protocol.FileLeaseTransport`): a long-lived
:class:`LeaseService` that turns the coordinator from a batch scheduler
into a network service.  Dispatch becomes a message round-trip instead of
a directory scan, so lease latency is bounded by the network, not by
filesystem latency and poll intervals.

Topology::

    submit clients ──┐                       ┌── persistent workers
    (ServiceClient,  │   length-prefixed     │   (run_service_worker /
     submit_scenario)│   JSON/binary frames  │    RemoteLeaseTransport,
                     ▼                       ▼    ``work --attach``)
                ┌──────────────────────────────────┐
                │ LeaseService (asyncio TCP server) │
                │  · one Coordinator per live job   │
                │  · multi-tenant dedup router      │
                │  · shared TaskCache (+ raw bytes) │
                │  · admission control/backpressure │
                └──────────────────────────────────┘

**Framing.**  Every frame is a 5-byte header — 4-byte big-endian payload
length + 1-byte kind — followed by the payload.  Kind 0 is a UTF-8 JSON
object (all control messages); kind 1 is opaque bytes, used for packed
:class:`~repro.dist.shm.SubsetEffects` payloads moving through the shared
cache's raw-bytes tier (``cache_put`` / ``cache_get``), so binary DP
effects never pay a JSON round-trip.  Frames above ``MAX_FRAME_BYTES``
are refused and the connection closed — a half-written or garbage header
cannot wedge the server.

**Multi-tenant dedup.**  Each ``submit`` builds one ``Coordinator`` over
the shared :class:`~repro.dist.cache.TaskCache` (disk hits never enter
the queue).  On top of that, the service routes *in-flight* overlap: a
deterministic leaf another live job is already executing is **deferred**
(withheld from the queue) and completed by injection when the first
copy's result arrives; a server-lifetime memo resolves leaves that
completed earlier in the process.  Two clients submitting the same
figure variant concurrently therefore lease each deterministic leaf at
most once between them — and a warm re-submit leases zero.

**Fault model.**  Worker connections hold leases; a dropped connection
fails its leases immediately (requeued, no timeout wait), heartbeat
renewals keep long leases alive, and all the coordinator's lifecycle
guarantees (expiry, late/duplicate completions, validation, straggler
splits) apply unchanged — so service-backed runs are bit-identical to
sequential runs on step-driven specs no matter what the wire does.

The server runs its asyncio loop on a daemon thread
(:func:`start_service`), so tests and the ``serve`` CLI share one code
path.  Clients and workers are synchronous socket code: workers are
threads built on :class:`RemoteLeaseTransport`, reconnecting with
jittered exponential backoff, attaching and detaching at runtime.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import struct
import threading
import time
import uuid
from concurrent.futures import Executor, ProcessPoolExecutor
from concurrent.futures import Future as SyncFuture
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.bench.scenario import ScenarioSpec
from repro.bench.tasks import (
    TaskResult,
    TaskSpec,
    _execute_task_group,
    _execute_task_group_metered,
    schedule_tasks,
    task_is_deterministic,
    task_provenance_hash,
)
from repro.dist.cache import TaskCache
from repro.dist.coordinator import (
    DEFAULT_LEASE_TIMEOUT,
    Coordinator,
    LeaseValidationError,
)
from repro.dist.transport import (
    ExponentialBackoff,
    Lease,
    LeaseRenewer,
    LeaseTransport,
)
from repro.obs import get_tracer, global_metrics
from repro.obs.metrics import Metrics

#: Version tag spoken in the hello/welcome handshake.
PROTOCOL_FORMAT = "repro-lease-service-v1"

#: Default TCP port of the ``serve`` subcommand (0 = ephemeral).
DEFAULT_PORT = 7963

#: Hard cap on one frame's payload — refuse anything larger.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Frame kinds.
KIND_JSON = 0
KIND_BYTES = 1

#: 4-byte big-endian payload length + 1-byte kind.
_HEADER = struct.Struct(">IB")

#: Longest server-side long-poll for one lease request (clients re-ask).
MAX_LEASE_WAIT = 30.0

#: Longest server-side wait slice for one ``wait`` request.
MAX_WAIT_SLICE = 30.0


class FrameError(ValueError):
    """A malformed, oversized, or unexpected frame."""


class ServiceBusyError(RuntimeError):
    """The service refused a submission (admission control) past the deadline."""


class ServiceError(RuntimeError):
    """The service replied with an error frame."""


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------
def encode_frame(kind: int, payload: bytes) -> bytes:
    """One wire frame: header + payload."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds cap")
    return _HEADER.pack(len(payload), kind) + payload


def encode_json_frame(message: Dict[str, Any]) -> bytes:
    return encode_frame(
        KIND_JSON, json.dumps(message, separators=(",", ":")).encode("utf-8")
    )


async def _read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Tuple[int, bytes]:
    """Read one frame; raises ``IncompleteReadError`` on EOF/half frames."""
    header = await reader.readexactly(_HEADER.size)
    length, kind = _HEADER.unpack(header)
    if kind not in (KIND_JSON, KIND_BYTES):
        raise FrameError(f"unknown frame kind {kind}")
    if length > max_bytes:
        raise FrameError(f"frame of {length} bytes exceeds the {max_bytes} cap")
    payload = await reader.readexactly(length) if length else b""
    return kind, payload


class FrameSocket:
    """Blocking client side of the frame protocol (thread-safe requests).

    One request/response exchange at a time: the lock spans send *and*
    receive so a heartbeat thread's ``renew`` can interleave safely with
    the owning thread's RPCs.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._lock = threading.RLock()
        self._file = sock.makefile("rb")

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def _recv_frame(self) -> Tuple[int, bytes]:
        header = self._file.read(_HEADER.size)
        if header is None or len(header) < _HEADER.size:
            raise ConnectionError("connection closed mid-frame")
        length, kind = _HEADER.unpack(header)
        if kind not in (KIND_JSON, KIND_BYTES):
            raise FrameError(f"unknown frame kind {kind}")
        if length > MAX_FRAME_BYTES:
            raise FrameError(f"frame of {length} bytes exceeds cap")
        payload = self._file.read(length) if length else b""
        if payload is None or len(payload) < length:
            raise ConnectionError("connection closed mid-frame")
        return kind, payload

    def send_raw(self, data: bytes) -> None:
        """Ship pre-encoded bytes verbatim (fault-injection seam)."""
        with self._lock:
            self._sock.sendall(data)

    def request(
        self,
        message: Dict[str, Any],
        payload: Optional[bytes] = None,
    ) -> Tuple[Dict[str, Any], Optional[bytes]]:
        """One RPC: send a JSON frame (+ optional bytes frame), read the reply.

        Returns ``(reply, data)`` where ``data`` is the bytes frame that
        follows replies flagged with ``"binary": true``.  Error replies
        raise :class:`ServiceError`.
        """
        with self._lock:
            self._sock.sendall(encode_json_frame(message))
            if payload is not None:
                self._sock.sendall(encode_frame(KIND_BYTES, payload))
            kind, raw = self._recv_frame()
            if kind != KIND_JSON:
                raise FrameError("expected a JSON reply frame")
            reply = json.loads(raw.decode("utf-8"))
            data: Optional[bytes] = None
            if reply.get("binary"):
                kind, data = self._recv_frame()
                if kind != KIND_BYTES:
                    raise FrameError("expected a bytes frame after the reply")
            if reply.get("type") == "error":
                if reply.get("validation"):
                    # The transport contract: a completion that does not
                    # match its lease raises LeaseValidationError.
                    raise LeaseValidationError(
                        reply.get("message", "lease validation failed")
                    )
                raise ServiceError(reply.get("message", "service error"))
            return reply, data


def connect(
    address: Tuple[str, int],
    timeout: float = 60.0,
    role: str = "client",
    peer_id: Optional[str] = None,
) -> FrameSocket:
    """Open a frame connection and perform the hello/welcome handshake."""
    sock = socket.create_connection(address, timeout=timeout)
    sock.settimeout(timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    frames = FrameSocket(sock)
    try:
        welcome, _ = frames.request(
            {
                "type": "hello",
                "format": PROTOCOL_FORMAT,
                "role": role,
                "peer": peer_id or f"{role}-{os.getpid()}-{uuid.uuid4().hex[:6]}",
            }
        )
    except BaseException:
        frames.close()
        raise
    if welcome.get("format") != PROTOCOL_FORMAT:
        frames.close()
        raise ServiceError(
            f"server speaks {welcome.get('format')!r}, not {PROTOCOL_FORMAT!r}"
        )
    return frames


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------
class _Job:
    """One live submission: its coordinator, owner, and completion event."""

    __slots__ = (
        "job_id",
        "coordinator",
        "owner",
        "done_event",
        "det_hashes",
        "submitted_at",
    )

    def __init__(
        self,
        job_id: str,
        coordinator: Coordinator,
        owner: str,
        det_hashes: Dict[TaskSpec, str],
        submitted_at: float,
    ) -> None:
        self.job_id = job_id
        self.coordinator = coordinator
        self.owner = owner
        self.done_event = asyncio.Event()
        #: Provenance hash of every deterministic task in the schedule.
        self.det_hashes = det_hashes
        self.submitted_at = submitted_at


class _Connection:
    """Per-connection state: held leases and owned jobs."""

    __slots__ = ("conn_id", "peer", "role", "held", "jobs")

    def __init__(self, conn_id: str) -> None:
        self.conn_id = conn_id
        self.peer = conn_id
        self.role = "client"
        #: ``(job_id, lease_id)`` pairs this connection currently holds.
        self.held: Set[Tuple[str, str]] = set()
        #: Job ids submitted over this connection.
        self.jobs: Set[str] = set()


class LeaseService:
    """The multi-tenant lease server (runs on an asyncio loop thread).

    One :class:`Coordinator` per live job, a shared
    :class:`~repro.dist.cache.TaskCache`, and the cross-job dedup router
    (see the module docstring).  All router state is touched only on the
    loop thread; coordinators are internally thread-safe.

    Parameters
    ----------
    cache:
        Shared task cache all jobs resolve against (optional).
    lease_timeout:
        Default lease lifetime; per-submit override allowed.
    max_jobs / max_jobs_per_client:
        Admission control: beyond these, ``submit`` is rejected with a
        ``retry_after`` hint (bounded per-client backpressure).
    workers_hint:
        Lease-sizing hint handed to each job's coordinator.
    metrics:
        Metrics registry (default: the process-global one).  Lifecycle
        counters land under ``coordinator.*.tcp``; service counters
        under ``service.*``.
    """

    def __init__(
        self,
        cache: Optional[TaskCache] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_jobs: int = 64,
        max_jobs_per_client: int = 8,
        workers_hint: int = 4,
        granularity: Optional[str] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        metrics: Optional[Metrics] = None,
        retry_after: float = 0.05,
    ) -> None:
        self.cache = cache
        self.lease_timeout = lease_timeout
        self.max_jobs = max_jobs
        self.max_jobs_per_client = max_jobs_per_client
        self.workers_hint = workers_hint
        self.granularity = granularity
        self.max_frame_bytes = max_frame_bytes
        self.retry_after = retry_after
        self._metrics = metrics if metrics is not None else global_metrics()
        self._jobs: Dict[str, _Job] = {}
        #: Server-lifetime memo: provenance hash -> deterministic result.
        self._session_results: Dict[str, TaskResult] = {}
        #: Provenance hash -> job id currently executing that leaf.
        self._inflight: Dict[str, str] = {}
        #: Provenance hash -> jobs waiting for an injection of that leaf.
        self._waiters: Dict[str, List[Tuple[str, TaskSpec]]] = {}
        self._job_counter = 0
        self._conn_counter = 0
        self._lease_cursor = 0
        self._work_event: Optional[asyncio.Event] = None
        #: Serializes defer-decision -> coordinator build -> registration.
        #: Without it two overlapping submits both observe an empty
        #: ``_inflight`` while parked on their executor awaits and lease
        #: duplicate deterministic leaves.
        self._submit_lock = asyncio.Lock()
        self._closing = False

    # ------------------------------------------------------------- helpers
    def _count(self, key: str, value: int = 1) -> None:
        self._metrics.add(f"service.{key}", value)

    def _notify_work(self) -> None:
        if self._work_event is not None:
            self._work_event.set()

    def stats_snapshot(self) -> Dict[str, Any]:
        """Router counts for the ``stats`` RPC and the CLI summary."""
        return {
            "jobs_live": len(self._jobs),
            "session_results": len(self._session_results),
            "inflight": len(self._inflight),
            "jobs_submitted": self._metrics.counter("service.jobs.submitted"),
            "jobs_completed": self._metrics.counter("service.jobs.completed"),
            "jobs_rejected": self._metrics.counter("service.jobs.rejected"),
            "jobs_aborted": self._metrics.counter("service.jobs.aborted"),
            "leases_granted": self._metrics.counter("service.leases.granted"),
            "deferred_injected": self._metrics.counter("service.injected"),
            "connections": self._metrics.counter("service.connections"),
        }

    # ---------------------------------------------------------- connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_counter += 1
        conn = _Connection(f"C{self._conn_counter}")
        self._count("connections")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("service.connect", conn=conn.conn_id)
        try:
            while True:
                try:
                    kind, payload = await _read_frame(reader, self.max_frame_bytes)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return  # clean (or abrupt) disconnect
                except FrameError:
                    self._count("frame_errors")
                    await self._reply(
                        writer, {"type": "error", "message": "bad frame"}
                    )
                    return
                if kind != KIND_JSON:
                    self._count("frame_errors")
                    await self._reply(
                        writer,
                        {"type": "error", "message": "expected a JSON frame"},
                    )
                    return
                try:
                    message = json.loads(payload.decode("utf-8"))
                    if not isinstance(message, dict):
                        raise ValueError("not an object")
                except ValueError:
                    self._count("frame_errors")
                    await self._reply(
                        writer, {"type": "error", "message": "bad JSON frame"}
                    )
                    return
                try:
                    keep_open = await self._dispatch(conn, message, reader, writer)
                except (ConnectionError, OSError):
                    return
                except asyncio.CancelledError:
                    # Server shutdown cancels handlers parked on long-poll
                    # waits; the client sees a closed connection, which its
                    # reconnect loop already handles.
                    return
                if not keep_open:
                    return
        finally:
            self._cleanup_connection(conn)
            self._count("disconnects")
            if tracer.enabled:
                tracer.event("service.disconnect", conn=conn.conn_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError lands here when the server itself is
                # shutting down mid-close; swallowing it at the very end
                # of the handler is safe (nothing left to unwind).
                pass

    async def _reply(
        self,
        writer: asyncio.StreamWriter,
        message: Dict[str, Any],
        payload: Optional[bytes] = None,
    ) -> None:
        if payload is not None:
            message = dict(message)
            message["binary"] = True
        writer.write(encode_json_frame(message))
        if payload is not None:
            writer.write(encode_frame(KIND_BYTES, payload))
        await writer.drain()

    async def _dispatch(
        self,
        conn: _Connection,
        message: Dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Handle one request; returns False to close the connection."""
        mtype = message.get("type")
        if mtype == "hello":
            conn.role = str(message.get("role", "client"))
            conn.peer = str(message.get("peer", conn.conn_id))
            await self._reply(
                writer,
                {
                    "type": "welcome",
                    "format": PROTOCOL_FORMAT,
                    "conn": conn.conn_id,
                },
            )
        elif mtype == "ping":
            await self._reply(writer, {"type": "pong"})
        elif mtype == "submit":
            await self._handle_submit(conn, message, writer)
        elif mtype == "wait":
            await self._handle_wait(conn, message, writer)
        elif mtype == "lease":
            await self._handle_lease(conn, message, writer)
        elif mtype == "job_spec":
            await self._handle_job_spec(message, writer)
        elif mtype == "complete":
            await self._handle_complete(conn, message, writer)
        elif mtype == "renew":
            await self._handle_renew(message, writer)
        elif mtype == "fail":
            await self._handle_fail(conn, message, writer)
        elif mtype == "cache_put":
            return await self._handle_cache_put(message, reader, writer)
        elif mtype == "cache_get":
            await self._handle_cache_get(message, writer)
        elif mtype == "stats":
            await self._reply(
                writer, {"type": "stats", "stats": self.stats_snapshot()}
            )
        else:
            await self._reply(
                writer,
                {"type": "error", "message": f"unknown request type {mtype!r}"},
            )
        return True

    # ------------------------------------------------------------- submit
    async def _handle_submit(
        self,
        conn: _Connection,
        message: Dict[str, Any],
        writer: asyncio.StreamWriter,
    ) -> None:
        live_owned = sum(1 for job_id in conn.jobs if job_id in self._jobs)
        if self._closing or len(self._jobs) >= self.max_jobs:
            self._count("jobs.rejected")
            await self._reply(
                writer,
                {
                    "type": "rejected",
                    "reason": "closing" if self._closing else "busy",
                    "retry_after": self.retry_after,
                },
            )
            return
        if live_owned >= self.max_jobs_per_client:
            self._count("jobs.rejected")
            await self._reply(
                writer,
                {
                    "type": "rejected",
                    "reason": "client_busy",
                    "retry_after": self.retry_after,
                },
            )
            return
        try:
            spec = ScenarioSpec.from_json_dict(message["spec"])
        except (KeyError, TypeError, ValueError) as exc:
            await self._reply(
                writer, {"type": "error", "message": f"bad spec: {exc}"}
            )
            return
        self._job_counter += 1
        job_id = f"J{self._job_counter}"
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        schedule, det_hashes = await loop.run_in_executor(
            None, _schedule_and_hash, spec
        )
        lease_timeout = float(message.get("lease_timeout") or self.lease_timeout)
        granularity = message.get("granularity") or self.granularity

        # The defer decision, coordinator build, and router registration
        # must be atomic with respect to *other submits*: the executor
        # await inside would otherwise let a concurrent submit read the
        # same (pre-registration) ``_inflight`` and lease duplicate
        # leaves.  Completions still interleave freely — the reconcile
        # loop below absorbs results that land mid-construction.
        async with self._submit_lock:
            defer = {
                task
                for task, digest in det_hashes.items()
                if digest in self._session_results or digest in self._inflight
            }

            def _build() -> Coordinator:
                return Coordinator(
                    spec,
                    tasks=schedule,
                    workers_hint=self.workers_hint,
                    granularity=granularity,
                    cache=self.cache,
                    lease_timeout=lease_timeout,
                    deferred=defer,
                    transport_label="tcp",
                    metrics=self._metrics,
                )

            try:
                coordinator = await loop.run_in_executor(None, _build)
            except (ValueError, OSError) as exc:
                await self._reply(
                    writer, {"type": "error", "message": f"submit failed: {exc}"}
                )
                return
            job = _Job(job_id, coordinator, conn.conn_id, det_hashes, started)
            injected = 0
            for task in coordinator.deferred_tasks:
                digest = det_hashes[task]
                memo = self._session_results.get(digest)
                if memo is not None:
                    if coordinator.inject_result(task, memo):
                        injected += 1
                        self._count("injected")
                    continue
                owner = self._inflight.get(digest)
                if owner is not None and owner in self._jobs:
                    self._waiters.setdefault(digest, []).append((job_id, task))
                else:
                    # The in-flight owner died while we were constructing.
                    coordinator.requeue_deferred([task])
                    self._inflight[digest] = job_id
            for task in coordinator.scheduled_tasks:
                digest = det_hashes.get(task)
                if digest is not None and digest not in self._inflight:
                    self._inflight[digest] = job_id
            self._jobs[job_id] = job
            conn.jobs.add(job_id)
        self._count("jobs.submitted")
        self._metrics.observe(
            "service.submit_seconds", time.monotonic() - started
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "service.submit",
                job=job_id,
                scheduled=len(coordinator.scheduled_tasks),
                deferred=len(coordinator.deferred_tasks),
            )
        if coordinator.done:
            self._finish_job(job)
        self._notify_work()
        await self._reply(
            writer,
            {
                "type": "accepted",
                "job": job_id,
                "tasks": len(schedule),
                "scheduled": len(coordinator.scheduled_tasks),
                "cache_hits": coordinator.stats["cache_hits"],
                "deferred": len(coordinator.deferred_tasks),
                "injected": injected,
                "granularity": coordinator.granularity,
            },
        )

    def _finish_job(self, job: _Job) -> None:
        if not job.done_event.is_set():
            job.done_event.set()
            self._count("jobs.completed")
            self._metrics.observe(
                "service.job_seconds", time.monotonic() - job.submitted_at
            )

    # --------------------------------------------------------------- wait
    async def _handle_wait(
        self,
        conn: _Connection,
        message: Dict[str, Any],
        writer: asyncio.StreamWriter,
    ) -> None:
        job = self._jobs.get(str(message.get("job")))
        if job is None:
            await self._reply(
                writer, {"type": "error", "message": "unknown job"}
            )
            return
        slice_seconds = min(
            float(message.get("timeout", MAX_WAIT_SLICE)), MAX_WAIT_SLICE
        )
        try:
            await asyncio.wait_for(job.done_event.wait(), timeout=slice_seconds)
        except asyncio.TimeoutError:
            await self._reply(writer, {"type": "pending", "job": job.job_id})
            return
        results = job.coordinator.results()
        stats = job.coordinator.stats
        # The job is over: release it (its inflight entries resolved on
        # completion; anything left promotes to a waiter or is dropped).
        self._release_job(job.job_id)
        conn.jobs.discard(job.job_id)
        await self._reply(
            writer,
            {
                "type": "done",
                "job": job.job_id,
                "results": [result.to_json_dict() for result in results],
                "stats": stats,
                "granularity": job.coordinator.granularity,
            },
        )

    # -------------------------------------------------------------- lease
    def _try_grant(
        self, conn: _Connection, worker: str
    ) -> Optional[Dict[str, Any]]:
        jobs = list(self._jobs.items())
        if not jobs:
            return None
        count = len(jobs)
        for offset in range(count):
            job_id, job = jobs[(self._lease_cursor + offset) % count]
            lease = job.coordinator.request_lease(worker)
            if lease is None:
                continue
            self._lease_cursor = (self._lease_cursor + offset + 1) % count
            conn.held.add((job_id, lease.lease_id))
            self._count("leases.granted")
            return {
                "type": "granted",
                "job": job_id,
                "lease": lease.lease_id,
                "deadline": lease.deadline,
                "attempt": lease.attempt,
                "tasks": [task.to_json_dict() for task in lease.tasks],
            }
        return None

    async def _handle_lease(
        self,
        conn: _Connection,
        message: Dict[str, Any],
        writer: asyncio.StreamWriter,
    ) -> None:
        worker = str(message.get("worker") or conn.peer)
        wait = min(float(message.get("wait", 0.0)), MAX_LEASE_WAIT)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + wait
        while True:
            grant = self._try_grant(conn, worker)
            if grant is not None:
                await self._reply(writer, grant)
                return
            remaining = deadline - loop.time()
            if remaining <= 0 or self._work_event is None:
                self._count("leases.idle")
                await self._reply(
                    writer, {"type": "idle", "jobs": len(self._jobs)}
                )
                return
            self._work_event.clear()
            grant = self._try_grant(conn, worker)  # re-check after clear
            if grant is not None:
                await self._reply(writer, grant)
                return
            try:
                await asyncio.wait_for(
                    self._work_event.wait(), timeout=remaining
                )
            except asyncio.TimeoutError:
                pass

    async def _handle_job_spec(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job = self._jobs.get(str(message.get("job")))
        if job is None:
            await self._reply(writer, {"type": "error", "message": "unknown job"})
            return
        await self._reply(
            writer,
            {
                "type": "spec",
                "job": job.job_id,
                "spec": job.coordinator.spec.to_json_dict(),
            },
        )

    # ----------------------------------------------------------- complete
    async def _handle_complete(
        self,
        conn: _Connection,
        message: Dict[str, Any],
        writer: asyncio.StreamWriter,
    ) -> None:
        job_id = str(message.get("job"))
        lease_id = str(message.get("lease"))
        job = self._jobs.get(job_id)
        conn.held.discard((job_id, lease_id))
        if job is None:
            # The owning client left mid-run; the work is wasted but the
            # worker is fine — tell it so it can move on.
            await self._reply(
                writer, {"type": "completed", "accepted": False, "job_gone": True}
            )
            return
        try:
            results = [
                TaskResult.from_json_dict(entry)
                for entry in message.get("results", ())
            ]
        except (KeyError, TypeError, ValueError) as exc:
            await self._reply(
                writer, {"type": "error", "message": f"bad results: {exc}"}
            )
            return
        loop = asyncio.get_running_loop()
        try:
            # complete_lease validates coverage and writes the shared
            # cache; run it off-loop so cache IO never stalls the server.
            accepted = await loop.run_in_executor(
                None, job.coordinator.complete_lease, lease_id, results
            )
        except LeaseValidationError as exc:
            await self._reply(
                writer,
                {"type": "error", "message": str(exc), "validation": True},
            )
            return
        self._publish_results(job, results)
        if job.coordinator.done:
            self._finish_job(job)
        self._notify_work()
        await self._reply(writer, {"type": "completed", "accepted": accepted})

    def _publish_results(self, job: _Job, results: Sequence[TaskResult]) -> None:
        """Feed completed leaves to the memo, waiters, and inflight table."""
        for result in results:
            digest = job.det_hashes.get(result.task)
            if digest is None:
                continue  # non-deterministic leaf: never shared
            if digest not in self._session_results:
                self._session_results[digest] = result
            self._inflight.pop(digest, None)
            for waiter_id, task in self._waiters.pop(digest, ()):  # noqa: B020
                waiter = self._jobs.get(waiter_id)
                if waiter is None:
                    continue
                if waiter.coordinator.inject_result(task, result):
                    self._count("injected")
                if waiter.coordinator.done:
                    self._finish_job(waiter)

    async def _handle_renew(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job = self._jobs.get(str(message.get("job")))
        renewed = (
            job is not None
            and job.coordinator.renew_lease(str(message.get("lease")))
        )
        await self._reply(writer, {"type": "renewed", "ok": bool(renewed)})

    async def _handle_fail(
        self,
        conn: _Connection,
        message: Dict[str, Any],
        writer: asyncio.StreamWriter,
    ) -> None:
        job_id = str(message.get("job"))
        lease_id = str(message.get("lease"))
        conn.held.discard((job_id, lease_id))
        job = self._jobs.get(job_id)
        if job is not None:
            try:
                job.coordinator.fail_lease(lease_id)
            except LeaseValidationError:
                pass
            self._notify_work()
        await self._reply(writer, {"type": "failed", "ok": job is not None})

    # -------------------------------------------------------- cache bytes
    async def _handle_cache_put(
        self,
        message: Dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """``cache_put`` + following bytes frame → shared raw-bytes tier."""
        try:
            kind, payload = await _read_frame(reader, self.max_frame_bytes)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return False
        except FrameError:
            self._count("frame_errors")
            await self._reply(writer, {"type": "error", "message": "bad frame"})
            return False
        if kind != KIND_BYTES:
            await self._reply(
                writer,
                {"type": "error", "message": "cache_put expects a bytes frame"},
            )
            return False
        key = str(message.get("key", ""))
        if self.cache is None or not key:
            await self._reply(writer, {"type": "cache_stored", "stored": False})
            return True
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(
                None, self.cache.put_raw_bytes, key, payload
            )
        except (ValueError, OSError) as exc:
            await self._reply(
                writer, {"type": "error", "message": f"cache_put failed: {exc}"}
            )
            return True
        self._count("cache.bytes_put")
        self._metrics.add("service.cache.bytes_in", len(payload))
        await self._reply(writer, {"type": "cache_stored", "stored": True})
        return True

    async def _handle_cache_get(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        key = str(message.get("key", ""))
        payload: Optional[bytes] = None
        if self.cache is not None and key:
            loop = asyncio.get_running_loop()
            try:
                payload = await loop.run_in_executor(
                    None, self.cache.get_raw_bytes, key
                )
            except (ValueError, OSError):
                payload = None
        if payload is None:
            self._count("cache.bytes_miss")
            await self._reply(writer, {"type": "cache_miss", "key": key})
        else:
            self._count("cache.bytes_hit")
            self._metrics.add("service.cache.bytes_out", len(payload))
            await self._reply(
                writer, {"type": "cache_hit", "key": key}, payload=payload
            )

    # ------------------------------------------------------------ cleanup
    def _release_job(self, job_id: str) -> None:
        """Drop a job, promoting its in-flight claims to waiting jobs."""
        job = self._jobs.pop(job_id, None)
        if job is None:
            return
        for digest, owner in list(self._inflight.items()):
            if owner != job_id:
                continue
            del self._inflight[digest]
            queue = self._waiters.get(digest)
            while queue:
                waiter_id, task = queue.pop(0)
                waiter = self._jobs.get(waiter_id)
                if waiter is None:
                    continue
                if waiter.coordinator.requeue_deferred([task]):
                    self._inflight[digest] = waiter_id
                break
            if not self._waiters.get(digest):
                self._waiters.pop(digest, None)
        for digest in list(self._waiters):
            queue = [
                entry for entry in self._waiters[digest] if entry[0] != job_id
            ]
            if queue:
                self._waiters[digest] = queue
            else:
                del self._waiters[digest]

    def _cleanup_connection(self, conn: _Connection) -> None:
        """Fail held leases and abort owned jobs of a dropped connection."""
        for job_id, lease_id in list(conn.held):
            job = self._jobs.get(job_id)
            if job is None:
                continue
            try:
                job.coordinator.fail_lease(lease_id)
            except LeaseValidationError:
                pass
        conn.held.clear()
        for job_id in list(conn.jobs):
            job = self._jobs.get(job_id)
            if job is None:
                continue
            if not job.done_event.is_set():
                self._count("jobs.aborted")
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event("service.job.aborted", job=job_id)
            self._release_job(job_id)
        conn.jobs.clear()
        self._notify_work()

    # -------------------------------------------------------------- serve
    async def _sweep_loop(self) -> None:
        """Surface lease expiries even while no worker is asking."""
        interval = max(0.05, min(self.lease_timeout / 4.0, 5.0))
        while True:
            await asyncio.sleep(interval)
            reclaimed = 0
            for job in list(self._jobs.values()):
                reclaimed += job.coordinator.reclaim_expired()
            if reclaimed:
                self._notify_work()

    async def _serve_main(
        self,
        host: str,
        port: int,
        started: "SyncFuture[Tuple[str, int]]",
    ) -> None:
        loop = asyncio.get_running_loop()
        self._work_event = asyncio.Event()
        self._stop_future: asyncio.Future = loop.create_future()
        try:
            server = await asyncio.start_server(
                self._handle_connection, host, port
            )
        except OSError as exc:
            started.set_exception(exc)
            return
        sockname = server.sockets[0].getsockname()
        sweeper = asyncio.create_task(self._sweep_loop())
        started.set_result((sockname[0], sockname[1]))
        try:
            async with server:
                await self._stop_future
        finally:
            self._closing = True
            sweeper.cancel()

    def request_stop(self) -> None:
        """Thread-safe stop trigger (the handle calls this)."""
        loop = getattr(self, "_loop", None)
        if loop is None:
            return

        def _stop() -> None:
            if not self._stop_future.done():
                self._stop_future.set_result(None)

        loop.call_soon_threadsafe(_stop)


class ServiceHandle:
    """A running service: its address and a stop switch.

    Usable as a context manager::

        with start_service(port=0) as handle:
            results, info = submit_scenario(handle.address, spec)
    """

    def __init__(
        self, service: LeaseService, address: Tuple[str, int], thread: threading.Thread
    ) -> None:
        self.service = service
        self.address = address
        self._thread = thread

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting work, close connections, join the loop thread."""
        self.service.request_stop()
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_service(
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: Any,
) -> ServiceHandle:
    """Start a :class:`LeaseService` on a daemon thread; returns its handle.

    ``port=0`` binds an ephemeral port — read it back from
    ``handle.address``.  Keyword arguments are forwarded to
    :class:`LeaseService`.
    """
    service = LeaseService(**kwargs)
    started: "SyncFuture[Tuple[str, int]]" = SyncFuture()

    def _run() -> None:
        loop = asyncio.new_event_loop()
        service._loop = loop
        try:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(service._serve_main(host, port, started))
            # Give cancelled handler tasks one final cycle to unwind.
            pending = [
                task for task in asyncio.all_tasks(loop) if not task.done()
            ]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    thread = threading.Thread(target=_run, name="repro-lease-service", daemon=True)
    thread.start()
    address = started.result(timeout=30.0)
    return ServiceHandle(service, address, thread)


def _schedule_and_hash(
    spec: ScenarioSpec,
) -> Tuple[List[TaskSpec], Dict[TaskSpec, str]]:
    """A spec's schedule plus the provenance hash of each deterministic leaf."""
    schedule = schedule_tasks(spec)
    det_hashes = {
        task: task_provenance_hash(spec, task)
        for task in schedule
        if task_is_deterministic(spec, task)
    }
    return schedule, det_hashes


# ---------------------------------------------------------------------------
# Submit clients
# ---------------------------------------------------------------------------
class ServiceClient:
    """Synchronous submit/wait/cache client for one service connection."""

    def __init__(
        self,
        address: Tuple[str, int],
        timeout: float = 60.0,
        client_id: Optional[str] = None,
    ) -> None:
        self.address = (address[0], int(address[1]))
        self._frames = connect(
            self.address, timeout=timeout, role="client", peer_id=client_id
        )

    def close(self) -> None:
        self._frames.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def submit(
        self,
        spec: ScenarioSpec,
        granularity: Optional[str] = None,
        lease_timeout: Optional[float] = None,
        timeout: Optional[float] = 120.0,
    ) -> Dict[str, Any]:
        """Submit a scenario, retrying (with backoff) while the server is busy.

        Returns the ``accepted`` reply (job id + dedup accounting).
        Raises :class:`ServiceBusyError` when admission control still
        refuses at the deadline.
        """
        message: Dict[str, Any] = {"type": "submit", "spec": spec.to_json_dict()}
        if granularity is not None:
            message["granularity"] = granularity
        if lease_timeout is not None:
            message["lease_timeout"] = lease_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        backoff = ExponentialBackoff(0.02, 1.0)
        while True:
            reply, _ = self._frames.request(message)
            if reply.get("type") == "accepted":
                return reply
            if reply.get("type") != "rejected":
                raise ServiceError(f"unexpected submit reply: {reply!r}")
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceBusyError(
                    f"service at {self.address} still busy after {timeout}s "
                    f"({reply.get('reason')})"
                )
            time.sleep(max(float(reply.get("retry_after", 0.0)), backoff.next()))

    def wait(
        self, job: str, timeout: Optional[float] = None, slice_seconds: float = 5.0
    ) -> Tuple[List[TaskResult], Dict[str, Any]]:
        """Block until ``job`` finishes; returns (results, stats)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            reply, _ = self._frames.request(
                {"type": "wait", "job": job, "timeout": slice_seconds}
            )
            if reply.get("type") == "done":
                results = [
                    TaskResult.from_json_dict(entry) for entry in reply["results"]
                ]
                return results, reply.get("stats", {})
            if reply.get("type") != "pending":
                raise ServiceError(f"unexpected wait reply: {reply!r}")
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"job {job} not done after {timeout}s")

    def run(
        self,
        spec: ScenarioSpec,
        granularity: Optional[str] = None,
        lease_timeout: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[List[TaskResult], Dict[str, Any]]:
        """Submit and wait; returns (results, submit-info + job stats)."""
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("service.client.run", host=self.address[0]):
                return self._run(spec, granularity, lease_timeout, timeout)
        return self._run(spec, granularity, lease_timeout, timeout)

    def _run(
        self,
        spec: ScenarioSpec,
        granularity: Optional[str],
        lease_timeout: Optional[float],
        timeout: Optional[float],
    ) -> Tuple[List[TaskResult], Dict[str, Any]]:
        info = self.submit(
            spec, granularity=granularity, lease_timeout=lease_timeout,
            timeout=timeout,
        )
        results, stats = self.wait(info["job"], timeout=timeout)
        info = dict(info)
        info["stats"] = stats
        return results, info

    def cache_put_bytes(self, key: str, payload: bytes) -> bool:
        """Store opaque bytes (e.g. packed SubsetEffects) in the shared cache."""
        reply, _ = self._frames.request(
            {"type": "cache_put", "key": key}, payload=payload
        )
        return bool(reply.get("stored"))

    def cache_get_bytes(self, key: str) -> Optional[bytes]:
        """Fetch opaque bytes from the shared cache (``None`` on miss)."""
        reply, data = self._frames.request({"type": "cache_get", "key": key})
        if reply.get("type") == "cache_hit":
            return data
        return None

    def server_stats(self) -> Dict[str, Any]:
        reply, _ = self._frames.request({"type": "stats"})
        return reply.get("stats", {})


def submit_scenario(
    address: Tuple[str, int],
    spec: ScenarioSpec,
    granularity: Optional[str] = None,
    lease_timeout: Optional[float] = None,
    timeout: Optional[float] = None,
    client_id: Optional[str] = None,
) -> Tuple[List[TaskResult], Dict[str, Any]]:
    """One-shot submit+wait against a running service.

    Returns ``(task results in schedule order, info)`` where ``info``
    carries the job id, dedup accounting (``scheduled`` / ``cache_hits``
    / ``deferred`` / ``injected``), and the job's coordinator stats.
    """
    with ServiceClient(address, client_id=client_id) as client:
        return client.run(
            spec,
            granularity=granularity,
            lease_timeout=lease_timeout,
            timeout=timeout,
        )


# ---------------------------------------------------------------------------
# Workers
# ---------------------------------------------------------------------------
class RemoteLeaseTransport(LeaseTransport):
    """Worker-side lease endpoint over one TCP connection.

    Lease ids are ``<job>/<lease>`` composites so one transport can hold
    leases of many jobs at once.  Job specs are fetched once and cached.
    ``wait_for_work`` long-polls the server (bounded), stashing a granted
    lease for the next ``request_lease`` call, so idle workers cost one
    parked connection instead of a poll storm.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        worker_id: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        self.worker_id = (
            worker_id or f"tcp-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )
        self._frames = connect(
            (address[0], int(address[1])),
            timeout=timeout,
            role="worker",
            peer_id=self.worker_id,
        )
        self._specs: Dict[str, ScenarioSpec] = {}
        self._prefetched: Optional[Lease] = None
        self._lease_jobs: Dict[str, str] = {}
        self._idle_jobs = 1  # assume live until the server says otherwise

    def close(self) -> None:
        self._frames.close()

    # -- plumbing
    def _request_lease_rpc(self, worker_id: str, wait: float) -> Optional[Lease]:
        reply, _ = self._frames.request(
            {"type": "lease", "worker": worker_id, "wait": wait}
        )
        if reply.get("type") == "idle":
            self._idle_jobs = int(reply.get("jobs", 0))
            return None
        if reply.get("type") != "granted":
            raise ServiceError(f"unexpected lease reply: {reply!r}")
        job_id = str(reply["job"])
        lease_id = f"{job_id}/{reply['lease']}"
        tasks = tuple(
            TaskSpec.from_json_dict(entry) for entry in reply["tasks"]
        )
        self._lease_jobs[lease_id] = job_id
        return Lease(
            lease_id=lease_id,
            worker_id=worker_id,
            tasks=tasks,
            deadline=float(reply.get("deadline", 0.0)),
            attempt=int(reply.get("attempt", 1)),
        )

    def _split(self, lease_id: str) -> Tuple[str, str]:
        job_id, _, remote_id = lease_id.partition("/")
        if not remote_id:
            raise LeaseValidationError(f"malformed lease id {lease_id!r}")
        return job_id, remote_id

    # -- LeaseTransport
    def request_lease(self, worker_id: str) -> Optional[Lease]:
        if self._prefetched is not None:
            lease, self._prefetched = self._prefetched, None
            return lease
        return self._request_lease_rpc(worker_id, wait=0.0)

    def complete_lease(
        self, lease_id: str, results: Sequence[TaskResult]
    ) -> bool:
        job_id, remote_id = self._split(lease_id)
        reply, _ = self._frames.request(
            {
                "type": "complete",
                "job": job_id,
                "lease": remote_id,
                "results": [result.to_json_dict() for result in results],
            }
        )
        self._lease_jobs.pop(lease_id, None)
        if reply.get("type") != "completed":
            raise ServiceError(f"unexpected complete reply: {reply!r}")
        return bool(reply.get("accepted"))

    def renew_lease(self, lease_id: str) -> bool:
        job_id, remote_id = self._split(lease_id)
        reply, _ = self._frames.request(
            {"type": "renew", "job": job_id, "lease": remote_id}
        )
        return bool(reply.get("ok"))

    def fail_lease(self, lease_id: str) -> None:
        job_id, remote_id = self._split(lease_id)
        self._lease_jobs.pop(lease_id, None)
        self._frames.request({"type": "fail", "job": job_id, "lease": remote_id})

    def wait_for_work(self, timeout: float) -> bool:
        lease = self._request_lease_rpc(
            self.worker_id, wait=min(max(timeout, 0.0), MAX_LEASE_WAIT)
        )
        if lease is not None:
            self._prefetched = lease
        return self.done

    @property
    def done(self) -> bool:
        """No live jobs on the server (as of the last idle reply)."""
        return self._prefetched is None and self._idle_jobs == 0

    def spec_for_lease(self, lease: Lease) -> ScenarioSpec:
        job_id = self._lease_jobs.get(lease.lease_id)
        if job_id is None:
            job_id, _ = self._split(lease.lease_id)
        spec = self._specs.get(job_id)
        if spec is None:
            reply, _ = self._frames.request({"type": "job_spec", "job": job_id})
            if reply.get("type") != "spec":
                raise ServiceError(f"unexpected job_spec reply: {reply!r}")
            spec = ScenarioSpec.from_json_dict(reply["spec"])
            self._specs[job_id] = spec
        return spec


def _service_worker_loop(
    address: Tuple[str, int],
    worker_id: str,
    stop: threading.Event,
    max_leases: Optional[int],
    poll: float,
    poll_cap: float,
    reconnect_initial: float,
    reconnect_cap: float,
    drain: bool,
    executor: Optional[Executor],
    renew_interval: Optional[float],
    on_lease: Optional[Callable[[Lease], None]],
    counters: Dict[str, int],
) -> None:
    """One persistent worker thread: attach, serve, reconnect on failure."""
    reconnect = ExponentialBackoff(reconnect_initial, reconnect_cap)
    completed = 0
    while not stop.is_set() and (max_leases is None or completed < max_leases):
        try:
            transport = RemoteLeaseTransport(address, worker_id=worker_id)
        except (OSError, ConnectionError, ServiceError):
            counters["reconnects"] = counters.get("reconnects", 0) + 1
            if stop.wait(reconnect.next()):
                return
            continue
        reconnect.reset()
        idle = ExponentialBackoff(poll, poll_cap)
        try:
            while not stop.is_set() and (
                max_leases is None or completed < max_leases
            ):
                lease = transport.request_lease(worker_id)
                if lease is None:
                    if drain and transport.done:
                        return
                    # Long-poll server-side: the connection parks on the
                    # server's work event instead of spinning here.
                    transport.wait_for_work(idle.next())
                    continue
                idle.reset()
                if on_lease is not None:
                    # The fault-injection seam: raising here simulates a
                    # worker dying between claim and result — the socket
                    # drops (see the ``finally``) and the server fails the
                    # lease immediately, requeueing its group.
                    try:
                        on_lease(lease)
                    except BaseException:
                        counters["died"] = counters.get("died", 0) + 1
                        return
                spec = transport.spec_for_lease(lease)
                renewer = (
                    LeaseRenewer(
                        _remote_renew(transport, lease.lease_id), renew_interval
                    )
                    if renew_interval is not None
                    else None
                )
                try:
                    if renewer is not None:
                        renewer.start()
                    if executor is not None:
                        results, snapshot = executor.submit(
                            _execute_task_group_metered, spec, list(lease.tasks)
                        ).result()
                        global_metrics().merge_snapshot(snapshot)
                    else:
                        results = _execute_task_group(spec, list(lease.tasks))
                finally:
                    if renewer is not None:
                        renewer.stop()
                        counters["renewals"] = (
                            counters.get("renewals", 0) + renewer.renewals
                        )
                transport.complete_lease(lease.lease_id, results)
                completed += 1
                counters["leases"] = counters.get("leases", 0) + 1
        except (OSError, ConnectionError, FrameError, ServiceError, EOFError):
            counters["reconnects"] = counters.get("reconnects", 0) + 1
            if stop.wait(reconnect.next()):
                return
        finally:
            transport.close()


def _remote_renew(transport: RemoteLeaseTransport, lease_id: str):
    """Bind one remote lease's renewal to a heartbeat callable."""
    return lambda: transport.renew_lease(lease_id)


def run_service_worker(
    address: Tuple[str, int],
    workers: int = 1,
    stop: Optional[threading.Event] = None,
    max_leases: Optional[int] = None,
    poll: float = 0.05,
    poll_cap: Optional[float] = 2.0,
    reconnect_initial: float = 0.1,
    reconnect_cap: float = 5.0,
    drain: bool = False,
    use_processes: bool = False,
    renew_interval: Optional[float] = None,
    on_lease: Optional[Callable[[Lease], None]] = None,
    worker_id: Optional[str] = None,
) -> Dict[str, int]:
    """Attach a persistent worker pool to a service; blocks until stopped.

    Starts ``workers`` threads, each with its own connection, executing
    leases in-thread (or on a shared process pool with
    ``use_processes=True``).  Workers reconnect with jittered exponential
    backoff when the server goes away and park on server-side long-polls
    while idle — attach/detach at any time, in any order.

    Returns the counter dict (``leases``, ``reconnects``, ``renewals``,
    ``died`` — all keys always present).
    ``drain=True`` exits once the server reports zero live jobs (tests,
    benchmarks); the default serves until ``stop`` is set or
    ``max_leases`` leases completed *per worker*.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if poll_cap is None:
        poll_cap = max(poll, poll * 32.0)
    stop = stop if stop is not None else threading.Event()
    prefix = worker_id or f"tcp-{os.getpid()}-{uuid.uuid4().hex[:4]}"
    per_thread: List[Dict[str, int]] = [{} for _ in range(workers)]
    executor: Optional[Executor] = None
    pool: Optional[ProcessPoolExecutor] = None
    if use_processes:
        pool = ProcessPoolExecutor(max_workers=workers)
        executor = pool
    threads = [
        threading.Thread(
            target=_service_worker_loop,
            args=(
                (address[0], int(address[1])),
                f"{prefix}-{index}",
                stop,
                max_leases,
                poll,
                poll_cap,
                reconnect_initial,
                reconnect_cap,
                drain,
                executor,
                renew_interval,
                on_lease,
                per_thread[index],
            ),
            name=f"repro-service-worker-{index}",
            daemon=True,
        )
        for index in range(workers)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    counters: Dict[str, int] = {
        "leases": 0, "reconnects": 0, "renewals": 0, "died": 0
    }
    for partial in per_thread:
        for key, value in partial.items():
            counters[key] = counters.get(key, 0) + value
    return counters
