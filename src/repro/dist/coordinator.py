"""The coordinator: dynamic, fault-tolerant scheduling of the task graph.

A :class:`Coordinator` owns one scenario's pending leaf tasks and hands
them out as time-limited **leases** (one lease = one group of tasks under
the resolved granularity — whole cells or single leaves, chosen by the
adaptive policy of :func:`repro.bench.tasks.resolve_granularity`).  The
lease lifecycle is the whole fault-tolerance story:

``pending --request_lease--> leased --complete_lease--> done``

* a lease that is not completed before its deadline is **reclaimed**: the
  group returns to the front of the queue and the next requesting worker
  re-executes it (a dead worker therefore delays its lease by at most the
  lease timeout);
* a **late** completion of a reclaimed lease is accepted if the group has
  not been completed by someone else yet — leaves are pure, so whichever
  copy arrives first is *the* result;
* a **duplicate** completion (the group is already done) is ignored;
* a **corrupt** completion (results that do not cover the lease's tasks
  exactly) is rejected with :class:`LeaseValidationError` and the group is
  requeued, so a malfunctioning worker cannot poison the run.

Because execution is at-least-once over pure leaves and the reduce
(:func:`repro.bench.runner.reduce_task_results`) is order-insensitive, the
scenario result is bit-identical to a sequential run on step-driven specs
no matter how many leases expire, duplicate, or arrive late.

A :class:`~repro.dist.cache.TaskCache` may be attached: cache hits are
resolved at construction time and never enter the queue — a warm cache
re-run of a figure variant leases zero DP-reference leaves.

All public methods are thread-safe; the clock is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.bench.scenario import ScenarioSpec
from repro.bench.tasks import (
    TaskResult,
    TaskSpec,
    _group_by_cell,
    resolve_granularity,
    schedule_tasks,
    task_is_deterministic,
)
from repro.dist.cache import TaskCache

#: Default lease lifetime in seconds.  Generous — reassignment exists to
#: survive dead workers, not to race slow ones; a reclaimed-but-alive
#: worker's late result is still accepted.
DEFAULT_LEASE_TIMEOUT = 300.0


class LeaseValidationError(ValueError):
    """A completion did not match its lease (unknown id or wrong tasks)."""


@dataclass(frozen=True)
class Lease:
    """One granted lease: a task group, its holder, and its deadline."""

    lease_id: str
    worker_id: str
    tasks: Tuple[TaskSpec, ...]
    deadline: float
    attempt: int


class _Group:
    """Internal scheduling unit: one lease-sized group of tasks."""

    __slots__ = ("group_id", "tasks", "state", "attempts", "current_lease_id")

    def __init__(self, group_id: int, tasks: Tuple[TaskSpec, ...]) -> None:
        self.group_id = group_id
        self.tasks = tasks
        self.state = "pending"  # "pending" | "leased" | "done"
        self.attempts = 0
        self.current_lease_id: Optional[str] = None


class Coordinator:
    """Dynamic scheduler of one scenario's task graph.

    Parameters
    ----------
    spec:
        The scenario whose schedule is executed.
    tasks:
        Optional explicit task list (defaults to the full schedule);
        results are returned in this order.
    workers_hint:
        Expected worker count — input to the adaptive lease-sizing policy
        (it does not limit how many workers may actually connect).
    granularity:
        Lease size: ``"cell"``, ``"case"``, or ``"auto"`` (default: the
        spec's granularity).
    cache:
        Optional :class:`TaskCache`; hits skip the queue entirely and
        newly computed deterministic results are written back.
    lease_timeout:
        Seconds before an uncompleted lease is reclaimed.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        tasks: Optional[Sequence[TaskSpec]] = None,
        workers_hint: int = 1,
        granularity: Optional[str] = None,
        cache: Optional[TaskCache] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers_hint < 1:
            raise ValueError("workers_hint must be at least 1")
        if lease_timeout <= 0:
            raise ValueError("lease timeout must be positive")
        self._spec = spec
        self._schedule: List[TaskSpec] = (
            list(tasks) if tasks is not None else schedule_tasks(spec)
        )
        self._cache = cache
        self._lease_timeout = lease_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._completed: Dict[TaskSpec, TaskResult] = {}
        self._stats: Dict[str, int] = {
            "cache_hits": 0,
            "scheduled": 0,
            "completed": 0,
            "reassignments": 0,
            "late_completions": 0,
            "duplicates": 0,
            "rejected": 0,
        }

        if cache is not None:
            hits, pending_tasks = cache.partition(spec, self._schedule)
            self._completed.update(hits)
            self._stats["cache_hits"] = len(hits)
        else:
            pending_tasks = list(self._schedule)
        self._scheduled_tasks: Tuple[TaskSpec, ...] = tuple(pending_tasks)
        self._stats["scheduled"] = len(pending_tasks)

        requested = granularity if granularity is not None else spec.granularity
        self._granularity = resolve_granularity(requested, pending_tasks, workers_hint)
        if self._granularity == "cell":
            grouped = _group_by_cell(pending_tasks)
        else:
            grouped = [[task] for task in pending_tasks]
        self._groups: List[_Group] = [
            _Group(index, tuple(group)) for index, group in enumerate(grouped)
        ]
        self._pending: Deque[int] = deque(group.group_id for group in self._groups)
        self._leases: Dict[str, int] = {}
        self._deadlines: Dict[str, float] = {}

    # ------------------------------------------------------------ inspection
    @property
    def spec(self) -> ScenarioSpec:
        """The scenario being executed."""
        return self._spec

    @property
    def granularity(self) -> str:
        """The resolved lease granularity (``"cell"`` or ``"case"``)."""
        return self._granularity

    @property
    def scheduled_tasks(self) -> Tuple[TaskSpec, ...]:
        """Tasks that entered the queue (i.e. were not served from cache)."""
        return self._scheduled_tasks

    @property
    def stats(self) -> Dict[str, int]:
        """Lifecycle counters (a copy)."""
        with self._lock:
            return dict(self._stats)

    @property
    def done(self) -> bool:
        """Have all scheduled tasks been completed?"""
        with self._lock:
            return len(self._completed) == len(self._schedule)

    @property
    def pending_count(self) -> int:
        """Number of groups waiting for a lease."""
        with self._lock:
            return len(self._pending)

    @property
    def outstanding_count(self) -> int:
        """Number of currently leased groups."""
        with self._lock:
            return sum(1 for group in self._groups if group.state == "leased")

    # ------------------------------------------------------- lease lifecycle
    def _reclaim_expired_locked(self, now: float) -> None:
        for group in self._groups:
            if group.state != "leased" or group.current_lease_id is None:
                continue
            deadline = self._deadlines.get(group.current_lease_id)
            if deadline is not None and deadline <= now:
                group.state = "pending"
                group.current_lease_id = None
                self._pending.appendleft(group.group_id)
                self._stats["reassignments"] += 1
                self._work_available.notify_all()

    def request_lease(self, worker_id: str) -> Optional[Lease]:
        """Grant the next pending group to ``worker_id``.

        Reclaims expired leases first; returns ``None`` when nothing is
        pending (the caller should :meth:`wait_for_work` and distinguish a
        drained queue from a finished run via :attr:`done`).
        """
        now = self._clock()
        with self._lock:
            self._reclaim_expired_locked(now)
            if not self._pending:
                return None
            group = self._groups[self._pending.popleft()]
            group.attempts += 1
            lease_id = f"L{group.group_id}.{group.attempts}"
            group.state = "leased"
            group.current_lease_id = lease_id
            lease = Lease(
                lease_id=lease_id,
                worker_id=worker_id,
                tasks=group.tasks,
                deadline=now + self._lease_timeout,
                attempt=group.attempts,
            )
            self._leases[lease_id] = group.group_id
            self._deadlines[lease_id] = lease.deadline
            return lease

    def complete_lease(
        self, lease_id: str, results: Sequence[TaskResult]
    ) -> bool:
        """Record the results of a lease.

        Returns ``True`` when the results were accepted, ``False`` for a
        duplicate completion (the group was already completed — possibly by
        another worker after a reclaim).  Raises
        :class:`LeaseValidationError` when the lease id is unknown or the
        results do not cover the lease's tasks exactly; in the latter case
        the group is requeued so the run still finishes.
        """
        with self._lock:
            group_id = self._leases.get(lease_id)
            if group_id is None:
                raise LeaseValidationError(f"unknown lease id {lease_id!r}")
            group = self._groups[group_id]
            if group.state == "done":
                self._stats["duplicates"] += 1
                return False
            by_task = {result.task: result for result in results}
            if len(by_task) != len(results) or set(by_task) != set(group.tasks):
                self._stats["rejected"] += 1
                if group.current_lease_id == lease_id:
                    group.state = "pending"
                    group.current_lease_id = None
                    self._pending.appendleft(group.group_id)
                    self._work_available.notify_all()
                raise LeaseValidationError(
                    f"lease {lease_id!r}: results do not cover the leased tasks "
                    f"(got {len(results)} result(s) for {len(group.tasks)} task(s))"
                )
            if group.current_lease_id != lease_id:
                # A reclaimed lease finishing after all: accept it (the
                # leaves are pure) and cancel the requeued copy.
                self._stats["late_completions"] += 1
                if group.state == "pending":
                    self._pending.remove(group.group_id)
            group.state = "done"
            group.current_lease_id = None
            for task in group.tasks:
                self._completed[task] = by_task[task]
            self._stats["completed"] += len(group.tasks)
            if self._cache is not None:
                for task in group.tasks:
                    if task_is_deterministic(self._spec, task):
                        self._cache.put(self._spec, by_task[task])
            self._work_available.notify_all()
            return True

    def fail_lease(self, lease_id: str) -> None:
        """Return a lease to the queue immediately (a worker giving up)."""
        with self._lock:
            group_id = self._leases.get(lease_id)
            if group_id is None:
                raise LeaseValidationError(f"unknown lease id {lease_id!r}")
            group = self._groups[group_id]
            if group.current_lease_id != lease_id or group.state != "leased":
                return
            group.state = "pending"
            group.current_lease_id = None
            self._pending.appendleft(group.group_id)
            self._stats["reassignments"] += 1
            self._work_available.notify_all()

    def wait_for_work(self, timeout: float) -> bool:
        """Block until work may be available (or ``timeout`` elapses).

        Wakes early on completions and requeues; always returns after at
        most ``timeout`` seconds so callers can re-check expiries against
        the injected clock.  Returns :attr:`done` at the time of waking.
        """
        with self._lock:
            if not self._pending and len(self._completed) < len(self._schedule):
                self._work_available.wait(timeout)
            return len(self._completed) == len(self._schedule)

    # ------------------------------------------------------------- results
    def results(self) -> List[TaskResult]:
        """All task results in schedule order (requires :attr:`done`)."""
        with self._lock:
            if len(self._completed) != len(self._schedule):
                missing = len(self._schedule) - len(self._completed)
                raise RuntimeError(
                    f"coordinator is not done: {missing} task(s) incomplete"
                )
            return [self._completed[task] for task in self._schedule]
