"""The coordinator: dynamic, fault-tolerant scheduling of the task graph.

A :class:`Coordinator` owns one scenario's pending leaf tasks and hands
them out as time-limited **leases** (one lease = one group of tasks under
the resolved granularity — whole cells or single leaves, chosen by the
adaptive policy of :func:`repro.bench.tasks.resolve_granularity`).  The
lease lifecycle is the whole fault-tolerance story:

``pending --request_lease--> leased --complete_lease--> done``

* a lease that is not completed before its deadline is **reclaimed**: the
  group returns to the front of the queue and the next requesting worker
  re-executes it (a dead worker therefore delays its lease by at most the
  lease timeout);
* a **late** completion of a reclaimed lease is accepted if the group has
  not been completed by someone else yet — leaves are pure, so whichever
  copy arrives first is *the* result;
* a **duplicate** completion (the group is already done) is ignored;
* a **corrupt** completion (results that do not cover the lease's tasks
  exactly) is rejected with :class:`LeaseValidationError` and the group is
  requeued, so a malfunctioning worker cannot poison the run;
* when the queue drains while a **straggler** still holds a multi-task
  (cell-granularity) lease, the straggler's incomplete tasks are **split**
  into single-task groups and leased to the idle requesters — the tail of
  a run is no longer bounded by the slowest cell.  The original lease stays
  valid: results are reconciled per task, whichever copy lands first wins,
  and every other copy is ignored.

Because execution is at-least-once over pure leaves and the reduce
(:func:`repro.bench.runner.reduce_task_results`) is order-insensitive, the
scenario result is bit-identical to a sequential run on step-driven specs
no matter how many leases expire, duplicate, or arrive late.

A :class:`~repro.dist.cache.TaskCache` may be attached: cache hits are
resolved at construction time and never enter the queue — a warm cache
re-run of a figure variant leases zero DP-reference leaves.

All public methods are thread-safe; the clock is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.bench.scenario import ScenarioSpec
from repro.bench.tasks import (
    TaskResult,
    TaskSpec,
    _group_by_cell,
    resolve_granularity,
    schedule_tasks,
    task_is_deterministic,
)
from repro.dist.cache import TaskCache
from repro.dist.transport import Lease, LeaseTransport
from repro.obs import get_tracer
from repro.obs.metrics import Metrics

#: Legacy names of the lifecycle counters, exposed verbatim by
#: :attr:`Coordinator.stats`; each is metric ``coordinator.<name>``.
_STAT_KEYS = (
    "cache_hits",
    "scheduled",
    "completed",
    "reassignments",
    "late_completions",
    "duplicates",
    "rejected",
    "splits",
    "failed_leases",
    "renewals",
    "deferred",
    "injected",
)

#: Default lease lifetime in seconds.  Generous — reassignment exists to
#: survive dead workers, not to race slow ones; a reclaimed-but-alive
#: worker's late result is still accepted.
DEFAULT_LEASE_TIMEOUT = 300.0


class LeaseValidationError(ValueError):
    """A completion did not match its lease (unknown id or wrong tasks)."""


__all__ = [
    "Coordinator",
    "DEFAULT_LEASE_TIMEOUT",
    "Lease",
    "LeaseValidationError",
]


class _Group:
    """Internal scheduling unit: one lease-sized group of tasks."""

    __slots__ = (
        "group_id", "tasks", "state", "attempts", "current_lease_id", "split_into",
    )

    def __init__(self, group_id: int, tasks: Tuple[TaskSpec, ...]) -> None:
        self.group_id = group_id
        self.tasks = tasks
        # "pending" | "leased" | "done" | "split" (a straggler whose
        # incomplete tasks were re-queued as single-task groups).
        self.state = "pending"
        self.attempts = 0
        self.current_lease_id: Optional[str] = None
        #: Group ids of the single-task groups this group was split into.
        self.split_into: List[int] = []


class Coordinator(LeaseTransport):
    """Dynamic scheduler of one scenario's task graph.

    Parameters
    ----------
    spec:
        The scenario whose schedule is executed.
    tasks:
        Optional explicit task list (defaults to the full schedule);
        results are returned in this order.
    workers_hint:
        Expected worker count — input to the adaptive lease-sizing policy
        (it does not limit how many workers may actually connect).
    granularity:
        Lease size: ``"cell"``, ``"case"``, or ``"auto"`` (default: the
        spec's granularity).
    cache:
        Optional :class:`TaskCache`; hits skip the queue entirely and
        newly computed deterministic results are written back.
    lease_timeout:
        Seconds before an uncompleted lease is reclaimed.
    clock:
        Monotonic time source (injectable for tests).
    split_stragglers:
        When True (the default), an idle lease request against a drained
        queue splits the largest outstanding multi-task lease into
        single-task leases (see the module docstring).  Execution stays
        at-least-once over pure leaves, so results are unchanged.
    metrics:
        Optional shared :class:`~repro.obs.metrics.Metrics` registry
        (e.g. :func:`repro.obs.global_metrics`) that lifecycle counters
        and the ``coordinator.lease_seconds`` latency histogram are
        mirrored into, so a live dashboard can tail them mid-run.  The
        coordinator always keeps a private registry as well — the
        :attr:`stats` view reads that one, so per-instance counts stay
        exact even when many coordinators share one sink.
    deferred:
        Optional set of scheduled tasks to **withhold from the queue**:
        they count toward :attr:`done` but are never leased.  The owner
        (e.g. the multi-tenant dedup router in
        :mod:`repro.dist.service`) completes them out-of-band via
        :meth:`inject_result` — or re-queues them with
        :meth:`requeue_deferred` when the out-of-band source dies.
        Tasks already resolved by the cache are ignored.
    transport_label:
        Short label of the wire this coordinator's leases travel over
        (``"memory"``, ``"file"``, or ``"tcp"``).  Lifecycle counters and
        the lease-latency histogram are mirrored into the shared registry
        under *both* the unlabelled name (``coordinator.completed``) and
        the per-transport name (``coordinator.completed.tcp``), so
        ``top`` and the dashboard can tell file and TCP runs apart.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        tasks: Optional[Sequence[TaskSpec]] = None,
        workers_hint: int = 1,
        granularity: Optional[str] = None,
        cache: Optional[TaskCache] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        clock: Callable[[], float] = time.monotonic,
        split_stragglers: bool = True,
        metrics: Optional[Metrics] = None,
        deferred: Optional[Iterable[TaskSpec]] = None,
        transport_label: str = "memory",
    ) -> None:
        if workers_hint < 1:
            raise ValueError("workers_hint must be at least 1")
        if lease_timeout <= 0:
            raise ValueError("lease timeout must be positive")
        self._spec = spec
        self._schedule: List[TaskSpec] = (
            list(tasks) if tasks is not None else schedule_tasks(spec)
        )
        self._schedule_set: Set[TaskSpec] = set(self._schedule)
        self._cache = cache
        self._lease_timeout = lease_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._completed: Dict[TaskSpec, TaskResult] = {}
        self._split_stragglers = split_stragglers
        self._transport_label = transport_label
        # Private registry (source of truth for the legacy ``stats`` view)
        # plus the optional shared sink every count is mirrored into.
        self._metrics = Metrics()
        self._shared_metrics = metrics
        #: Grant instants of live leases (for the latency histogram).
        self._grant_times: Dict[str, float] = {}

        if cache is not None:
            hits, pending_tasks = cache.partition(spec, self._schedule)
            self._completed.update(hits)
            if hits:
                self._count("cache_hits", len(hits))
        else:
            pending_tasks = list(self._schedule)

        deferred_set = set(deferred) if deferred is not None else set()
        # Ordered set of withheld tasks, resolved by injection/requeue.
        self._deferred: Dict[TaskSpec, None] = dict.fromkeys(
            task for task in pending_tasks if task in deferred_set
        )
        if self._deferred:
            pending_tasks = [
                task for task in pending_tasks if task not in self._deferred
            ]
            self._count("deferred", len(self._deferred))
        self._scheduled_tasks: Tuple[TaskSpec, ...] = tuple(pending_tasks)
        if pending_tasks:
            self._count("scheduled", len(pending_tasks))

        requested = granularity if granularity is not None else spec.granularity
        self._granularity = resolve_granularity(requested, pending_tasks, workers_hint)
        if self._granularity == "cell":
            grouped = _group_by_cell(pending_tasks)
        else:
            grouped = [[task] for task in pending_tasks]
        self._groups: List[_Group] = [
            _Group(index, tuple(group)) for index, group in enumerate(grouped)
        ]
        self._pending: Deque[int] = deque(group.group_id for group in self._groups)
        self._leases: Dict[str, int] = {}
        self._deadlines: Dict[str, float] = {}

    # ------------------------------------------------------------ telemetry
    def _count(self, key: str, value: int = 1) -> None:
        """Bump lifecycle counter ``key`` (private + shared registries).

        The shared sink additionally gets a per-transport twin
        (``coordinator.<key>.<transport_label>``) so concurrent file and
        TCP runs stay distinguishable in ``top`` and the dashboard.
        """
        self._metrics.add(f"coordinator.{key}", value)
        if self._shared_metrics is not None:
            self._shared_metrics.add(f"coordinator.{key}", value)
            self._shared_metrics.add(
                f"coordinator.{key}.{self._transport_label}", value
            )

    def _observe_lease_latency(self, lease_id: str, now: float) -> None:
        """Record grant→completion latency of a finishing lease."""
        granted = self._grant_times.pop(lease_id, None)
        if granted is None:
            return
        elapsed = now - granted
        self._metrics.observe("coordinator.lease_seconds", elapsed)
        if self._shared_metrics is not None:
            self._shared_metrics.observe("coordinator.lease_seconds", elapsed)
            self._shared_metrics.observe(
                f"coordinator.lease_seconds.{self._transport_label}", elapsed
            )

    # ------------------------------------------------------------ inspection
    @property
    def spec(self) -> ScenarioSpec:
        """The scenario being executed."""
        return self._spec

    @property
    def granularity(self) -> str:
        """The resolved lease granularity (``"cell"`` or ``"case"``)."""
        return self._granularity

    @property
    def scheduled_tasks(self) -> Tuple[TaskSpec, ...]:
        """Tasks that entered the queue (not cache-served, not deferred)."""
        return self._scheduled_tasks

    @property
    def deferred_tasks(self) -> Tuple[TaskSpec, ...]:
        """Tasks withheld from the queue, awaiting :meth:`inject_result`."""
        with self._lock:
            return tuple(self._deferred)

    def spec_for_lease(self, lease: Lease) -> ScenarioSpec:
        """The scenario spec every lease of this coordinator belongs to."""
        return self._spec

    @property
    def stats(self) -> Dict[str, int]:
        """Lifecycle counters, legacy dict shape (a thin view).

        Since the :mod:`repro.obs` consolidation the counters live in a
        :class:`~repro.obs.metrics.Metrics` registry (see
        :attr:`metrics`); this property rebuilds the historical
        ``{"cache_hits": ..., "scheduled": ..., ...}`` dict from it so
        existing callers and tests observe identical values.
        """
        with self._lock:
            return {
                key: self._metrics.counter(f"coordinator.{key}")
                for key in _STAT_KEYS
            }

    @property
    def metrics(self) -> Metrics:
        """This coordinator's private metrics registry.

        Counters are named ``coordinator.<stat>``; lease latencies land in
        the ``coordinator.lease_seconds`` histogram.
        """
        return self._metrics

    @property
    def done(self) -> bool:
        """Have all scheduled tasks been completed?"""
        with self._lock:
            return len(self._completed) == len(self._schedule)

    @property
    def pending_count(self) -> int:
        """Number of groups waiting for a lease."""
        with self._lock:
            return len(self._pending)

    @property
    def outstanding_count(self) -> int:
        """Number of currently leased groups."""
        with self._lock:
            return sum(1 for group in self._groups if group.state == "leased")

    # ------------------------------------------------------- lease lifecycle
    def _reclaim_expired_locked(self, now: float) -> None:
        for group in self._groups:
            if group.state != "leased" or group.current_lease_id is None:
                continue
            deadline = self._deadlines.get(group.current_lease_id)
            if deadline is not None and deadline <= now:
                expired_lease_id = group.current_lease_id
                group.state = "pending"
                group.current_lease_id = None
                self._pending.appendleft(group.group_id)
                self._count("reassignments")
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "coordinator.lease.expired",
                        lease_id=expired_lease_id,
                        group=group.group_id,
                        tasks=len(group.tasks),
                    )
                self._work_available.notify_all()

    def _split_straggler_locked(self) -> bool:
        """Split the largest outstanding multi-task lease into case leases.

        Called when the pending queue is empty but leased cell-granularity
        groups are still outstanding: their not-yet-completed tasks are
        re-queued as single-task groups so idle workers can share the tail.
        The original lease remains valid — results are reconciled per task.
        Returns True when a group was split.
        """
        straggler: Optional[_Group] = None
        for group in self._groups:
            if group.state != "leased" or len(group.tasks) < 2:
                continue
            if straggler is None or len(group.tasks) > len(straggler.tasks):
                straggler = group
        if straggler is None:
            return False
        remaining = [
            task for task in straggler.tasks if task not in self._completed
        ]
        if not remaining:
            return False
        straggler.state = "split"
        for task in remaining:
            sub_group = _Group(len(self._groups), (task,))
            self._groups.append(sub_group)
            straggler.split_into.append(sub_group.group_id)
            self._pending.append(sub_group.group_id)
        self._count("splits")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "coordinator.lease.split",
                lease_id=straggler.current_lease_id,
                group=straggler.group_id,
                requeued=len(remaining),
            )
        self._work_available.notify_all()
        return True

    def reclaim_expired(self) -> int:
        """Reclaim every expired lease now; returns the number reclaimed.

        :meth:`request_lease` does this implicitly, but a transport that
        grants leases on demand (e.g. the TCP service's sweeper) needs an
        explicit tick so expiries surface even while no worker is asking.
        """
        with self._lock:
            before = self._metrics.counter("coordinator.reassignments")
            self._reclaim_expired_locked(self._clock())
            return self._metrics.counter("coordinator.reassignments") - before

    def request_lease(self, worker_id: str) -> Optional[Lease]:
        """Grant the next pending group to ``worker_id``.

        Reclaims expired leases first.  When nothing is pending but a
        multi-task lease is still outstanding, that straggler is split into
        single-task leases (work stealing) and the first one is granted.
        Returns ``None`` when no work can be produced (the caller should
        :meth:`wait_for_work` and distinguish a drained queue from a
        finished run via :attr:`done`).
        """
        now = self._clock()
        with self._lock:
            self._reclaim_expired_locked(now)
            if not self._pending and self._split_stragglers:
                self._split_straggler_locked()
            if not self._pending:
                return None
            group = self._groups[self._pending.popleft()]
            group.attempts += 1
            lease_id = f"L{group.group_id}.{group.attempts}"
            group.state = "leased"
            group.current_lease_id = lease_id
            lease = Lease(
                lease_id=lease_id,
                worker_id=worker_id,
                tasks=group.tasks,
                deadline=now + self._lease_timeout,
                attempt=group.attempts,
            )
            self._leases[lease_id] = group.group_id
            self._deadlines[lease_id] = lease.deadline
            self._grant_times[lease_id] = now
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "coordinator.lease.claimed",
                    lease_id=lease_id,
                    worker=worker_id,
                    tasks=len(group.tasks),
                    attempt=group.attempts,
                )
            return lease

    def complete_lease(
        self, lease_id: str, results: Sequence[TaskResult]
    ) -> bool:
        """Record the results of a lease.

        Results are reconciled **per task**: whichever lease delivers a
        task's result first wins (leaves are pure), every later copy is
        ignored.  Returns ``True`` when at least one new task result was
        recorded, ``False`` for a full duplicate (every task already
        completed — by a reclaimed lease's other copy, or by the split
        leases of a straggler).  Raises :class:`LeaseValidationError` when
        the lease id is unknown or the results do not cover the lease's
        tasks exactly; in the latter case the group is requeued so the run
        still finishes.
        """
        with self._lock:
            group_id = self._leases.get(lease_id)
            if group_id is None:
                raise LeaseValidationError(f"unknown lease id {lease_id!r}")
            group = self._groups[group_id]
            by_task = {result.task: result for result in results}
            if len(by_task) != len(results) or set(by_task) != set(group.tasks):
                self._count("rejected")
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "coordinator.lease.rejected",
                        lease_id=lease_id,
                        group=group.group_id,
                        results=len(results),
                        tasks=len(group.tasks),
                    )
                if group.current_lease_id == lease_id and group.state == "leased":
                    group.state = "pending"
                    group.current_lease_id = None
                    self._pending.appendleft(group.group_id)
                    self._work_available.notify_all()
                raise LeaseValidationError(
                    f"lease {lease_id!r}: results do not cover the leased tasks "
                    f"(got {len(results)} result(s) for {len(group.tasks)} task(s))"
                )
            new_tasks = [
                task for task in group.tasks if task not in self._completed
            ]
            if not new_tasks:
                if group.state not in ("done", "split"):
                    group.state = "done"
                    group.current_lease_id = None
                self._count("duplicates")
                self._grant_times.pop(lease_id, None)
                return False
            if group.current_lease_id != lease_id and group.state == "leased":
                # A reclaimed lease finishing after all: accept it (the
                # leaves are pure); the requeued copy is cancelled below.
                self._count("late_completions")
            if group.state == "pending":
                # The group was reclaimed and requeued; this completion
                # makes the requeued copy unnecessary.
                self._pending.remove(group.group_id)
            for task in new_tasks:
                self._completed[task] = by_task[task]
            self._count("completed", len(new_tasks))
            self._observe_lease_latency(lease_id, self._clock())
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "coordinator.lease.completed",
                    lease_id=lease_id,
                    group=group.group_id,
                    new_tasks=len(new_tasks),
                )
            group.state = "done"
            group.current_lease_id = None
            self._cancel_covered_groups_locked(group)
            if self._cache is not None:
                for task in new_tasks:
                    if task_is_deterministic(self._spec, task):
                        self._cache.put(self._spec, by_task[task])
            self._work_available.notify_all()
            return True

    def _cancel_covered_groups_locked(self, completed_group: _Group) -> None:
        """Drop pending groups whose tasks the completed lease covered.

        After a straggler split, a task may live in two groups: the split
        original and its single-task twin.  Whichever completes first marks
        the other side done (a pending twin leaves the queue; a leased twin
        simply becomes a duplicate on delivery).
        """
        for sub_id in completed_group.split_into:
            sub_group = self._groups[sub_id]
            if sub_group.state == "pending" and all(
                task in self._completed for task in sub_group.tasks
            ):
                sub_group.state = "done"
                self._pending.remove(sub_group.group_id)

    def renew_lease(self, lease_id: str) -> bool:
        """Heartbeat: push a live lease's deadline out by the lease timeout.

        Returns ``True`` when the lease was still current (its holder keeps
        it for another full timeout window), ``False`` when it was already
        completed, reclaimed, or unknown — renewing late is benign, the
        worker just loses the extension and races the requeued copy like
        any late completion.  Successful renewals count as ``renewals`` in
        :attr:`stats`/metrics.
        """
        with self._lock:
            group_id = self._leases.get(lease_id)
            if group_id is None:
                return False
            group = self._groups[group_id]
            if group.current_lease_id != lease_id or group.state != "leased":
                return False
            now = self._clock()
            deadline = self._deadlines.get(lease_id)
            if deadline is not None and deadline <= now:
                # Expired but not yet reclaimed: reclaim rather than revive,
                # so renewal cannot resurrect a lease another worker may
                # already have been granted a copy of.
                self._reclaim_expired_locked(now)
                return False
            self._deadlines[lease_id] = now + self._lease_timeout
            self._count("renewals")
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "coordinator.lease.renewed",
                    lease_id=lease_id,
                    group=group.group_id,
                    deadline=self._deadlines[lease_id],
                )
            return True

    def inject_result(self, task: TaskSpec, result: TaskResult) -> bool:
        """Complete one task out-of-band (no lease involved).

        The multi-tenant service uses this to resolve **deferred** tasks
        from another tenant's identical leaf (same provenance hash) or
        from the server-lifetime memo.  Any scheduled task can be
        injected; pending groups whose tasks are all now complete are
        cancelled (their queue entries dropped), mirroring the straggler
        reconciliation.  Returns ``True`` when the task was newly
        completed, ``False`` when it already had a result.  Raises
        :class:`LeaseValidationError` for a task outside the schedule.
        """
        if result.task != task:
            raise LeaseValidationError("injected result does not match task")
        with self._lock:
            if task not in self._schedule_set:
                raise LeaseValidationError(
                    "injected task is not part of this coordinator's schedule"
                )
            if task in self._completed:
                return False
            self._completed[task] = result
            self._deferred.pop(task, None)
            self._count("injected")
            # Cancel pending groups the injection just fully covered.
            for group in self._groups:
                if group.state == "pending" and all(
                    t in self._completed for t in group.tasks
                ):
                    group.state = "done"
                    self._pending.remove(group.group_id)
            if self._cache is not None and task_is_deterministic(self._spec, task):
                self._cache.put(self._spec, result)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event("coordinator.result.injected")
            self._work_available.notify_all()
            return True

    def requeue_deferred(self, tasks: Iterable[TaskSpec]) -> int:
        """Promote deferred tasks back into the lease queue.

        The service calls this when the out-of-band source of a deferred
        task dies (its owning tenant disconnected mid-run): each still
        uncompleted deferred task becomes a fresh single-task group at the
        back of the queue.  Returns the number of tasks requeued.
        """
        with self._lock:
            promoted: List[TaskSpec] = []
            for task in tasks:
                if task not in self._deferred or task in self._completed:
                    continue
                del self._deferred[task]
                group = _Group(len(self._groups), (task,))
                self._groups.append(group)
                self._pending.append(group.group_id)
                promoted.append(task)
            if promoted:
                self._count("scheduled", len(promoted))
                self._scheduled_tasks = self._scheduled_tasks + tuple(promoted)
                self._work_available.notify_all()
            return len(promoted)

    def fail_lease(self, lease_id: str) -> None:
        """Return a lease to the queue immediately (a worker giving up).

        The explicit-failure twin of lease expiry: workers whose execution
        raises hand the group back right away instead of letting the
        timeout clock run (``failed_leases`` counts these separately from
        timeout ``reassignments``, which also increments).
        """
        with self._lock:
            group_id = self._leases.get(lease_id)
            if group_id is None:
                raise LeaseValidationError(f"unknown lease id {lease_id!r}")
            group = self._groups[group_id]
            if group.current_lease_id != lease_id or group.state != "leased":
                return
            group.state = "pending"
            group.current_lease_id = None
            self._pending.appendleft(group.group_id)
            self._count("reassignments")
            self._count("failed_leases")
            self._grant_times.pop(lease_id, None)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "coordinator.lease.failed",
                    lease_id=lease_id,
                    group=group.group_id,
                    tasks=len(group.tasks),
                )
            self._work_available.notify_all()

    def wait_for_work(self, timeout: float) -> bool:
        """Block until work may be available (or ``timeout`` elapses).

        Wakes early on completions and requeues; always returns after at
        most ``timeout`` seconds so callers can re-check expiries against
        the injected clock.  Returns :attr:`done` at the time of waking.
        """
        with self._lock:
            if not self._pending and len(self._completed) < len(self._schedule):
                self._work_available.wait(timeout)
            return len(self._completed) == len(self._schedule)

    # ------------------------------------------------------------- results
    def results(self) -> List[TaskResult]:
        """All task results in schedule order (requires :attr:`done`)."""
        with self._lock:
            if len(self._completed) != len(self._schedule):
                missing = len(self._schedule) - len(self._completed)
                raise RuntimeError(
                    f"coordinator is not done: {missing} task(s) incomplete"
                )
            return [self._completed[task] for task in self._schedule]
