"""Distributed execution of the benchmark task graph.

The static execution modes of :mod:`repro.bench.tasks` — a process pool or
``--shard k/n`` round-robin — assign work up front, so one slow or dead
machine stalls the whole figure.  This package executes the *same* schedule
dynamically instead:

* :class:`~repro.dist.coordinator.Coordinator` holds the pending task queue
  and hands out time-limited **leases**; expired leases are reassigned, late
  or duplicate completions are reconciled (leaves are pure, so at-least-once
  execution still yields exactly-once results);
* :mod:`~repro.dist.worker` drives local workers — threads pulling leases
  and executing on a shared process pool;
* :mod:`~repro.dist.protocol` is the file-based variant of the same lease
  lifecycle over a shared directory, so workers on other machines can pull
  work with nothing but filesystem access;
* :class:`~repro.dist.cache.TaskCache` is a content-addressed store of leaf
  results keyed by provenance hash
  (:func:`repro.bench.tasks.task_provenance_hash`), so deterministic leaves
  — above all the DP(1.01) reference frontiers — are computed once and
  reused across figure variants and re-runs.

On step-driven specs every mode is bit-identical to a sequential
:func:`repro.bench.runner.run_scenario` (pinned by ``tests/test_dist.py``).
"""

from repro.dist.cache import TaskCache
from repro.dist.coordinator import Coordinator, Lease, LeaseValidationError
from repro.dist.dp import (
    DPLevelResult,
    DPLevelTask,
    compute_dp_level,
    dp_provenance_signature,
    dp_subset_key,
)
from repro.dist.protocol import collect_results, init_workdir, run_worker
from repro.dist.worker import Worker, run_coordinated

__all__ = [
    "Coordinator",
    "Lease",
    "LeaseValidationError",
    "TaskCache",
    "Worker",
    "run_coordinated",
    "init_workdir",
    "run_worker",
    "collect_results",
    "DPLevelTask",
    "DPLevelResult",
    "compute_dp_level",
    "dp_provenance_signature",
    "dp_subset_key",
]
