"""Distributed execution of the benchmark task graph.

The static execution modes of :mod:`repro.bench.tasks` — a process pool or
``--shard k/n`` round-robin — assign work up front, so one slow or dead
machine stalls the whole figure.  This package executes the *same* schedule
dynamically instead:

* :class:`~repro.dist.coordinator.Coordinator` holds the pending task queue
  and hands out time-limited **leases**; expired leases are reassigned, late
  or duplicate completions are reconciled (leaves are pure, so at-least-once
  execution still yields exactly-once results);
* :class:`~repro.dist.transport.LeaseTransport` is the explicit interface
  of that lifecycle — claim/complete/renew/fail as messages — with three
  wires: in-memory (the coordinator itself), a shared directory
  (:class:`~repro.dist.protocol.FileLeaseTransport`), and TCP
  (:mod:`repro.dist.service`);
* :mod:`~repro.dist.worker` drives local workers — threads pulling leases
  from any transport and executing on a shared process pool;
* :mod:`~repro.dist.protocol` is the file-based variant of the lease
  lifecycle over a shared directory, so workers on other machines can pull
  work with nothing but filesystem access;
* :mod:`~repro.dist.service` is **optimization as a service**: a
  long-lived asyncio TCP server multiplexing many tenants' jobs over
  persistent worker pools, with admission control and a shared cache so
  concurrent clients never execute the same deterministic leaf twice;
* :class:`~repro.dist.cache.TaskCache` is a content-addressed store of leaf
  results keyed by provenance hash
  (:func:`repro.bench.tasks.task_provenance_hash`), so deterministic leaves
  — above all the DP(1.01) reference frontiers — are computed once and
  reused across figure variants, re-runs, and tenants.

On step-driven specs every mode is bit-identical to a sequential
:func:`repro.bench.runner.run_scenario` (pinned by ``tests/test_dist.py``
and ``tests/test_service.py``).
"""

from repro.dist.cache import TaskCache
from repro.dist.coordinator import Coordinator, Lease, LeaseValidationError
from repro.dist.dp import (
    DPLevelResult,
    DPLevelTask,
    compute_dp_level,
    dp_provenance_signature,
    dp_subset_key,
)
from repro.dist.protocol import (
    FileLeaseTransport,
    collect_results,
    init_workdir,
    run_worker,
)
from repro.dist.service import (
    LeaseService,
    RemoteLeaseTransport,
    ServiceClient,
    ServiceHandle,
    run_service_worker,
    start_service,
    submit_scenario,
)
from repro.dist.transport import ExponentialBackoff, LeaseRenewer, LeaseTransport
from repro.dist.worker import Worker, run_coordinated

__all__ = [
    "Coordinator",
    "Lease",
    "LeaseValidationError",
    "LeaseTransport",
    "LeaseRenewer",
    "ExponentialBackoff",
    "TaskCache",
    "Worker",
    "run_coordinated",
    "init_workdir",
    "run_worker",
    "collect_results",
    "FileLeaseTransport",
    "LeaseService",
    "ServiceClient",
    "ServiceHandle",
    "RemoteLeaseTransport",
    "start_service",
    "submit_scenario",
    "run_service_worker",
    "DPLevelTask",
    "DPLevelResult",
    "compute_dp_level",
    "dp_provenance_signature",
    "dp_subset_key",
]
