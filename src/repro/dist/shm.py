"""Zero-copy shared-memory task fabric for the distributed DP.

The coordinator backend used to re-pickle per-level frontier state into
every worker and ship effects back as JSON — costing more than the
parallelism bought (``BENCH_dp.json`` recorded a *negative* parallel
speedup).  The fabric replaces that transport wholesale:

* **Publish** — per DP level, the driver copies exactly the arena column
  rows appended since its last publish (via
  :meth:`~repro.plans.arena.PlanArena.column_snapshot`) and the newly final
  frontier handle runs into ``multiprocessing.shared_memory`` segments.
  Segments grow by capacity doubling under generation-bumped names; the
  preserved prefix is copied across and the old segment unlinked (on
  Linux, attached workers keep their mappings until they refresh).
* **Attach / refresh** — persistent worker processes (one fork-context
  ``ProcessPoolExecutor``, prewarmed before any driver thread exists)
  attach each segment by name once and only re-attach when a generation
  bump renames it.  Per shard they receive a small ``meta`` dict of
  counters and slice read-only NumPy views up to the published counts —
  refresh ships *deltas*, never state.
* **Reduce** — workers rebuild a read-only twin of the arena
  (:class:`BorrowedPlanArena`) over the attached buffers, cost whole
  shards through the trusted level kernel
  (:meth:`~repro.cost.batch.BatchCostModel.join_candidates_level`), and
  simulate frontier insertion with
  :class:`~repro.core.plan_cache.FrontierSimulator`.  Results return as
  one packed structured array per subset (:class:`SubsetEffects`) instead
  of pickled nested tuples.
* **Unlink** — the driver owns every segment and unlinks all of them in
  :meth:`ShmTaskFabric.close` (also run by a finalizer on the optimizer).
  Workers only ever attach + close.  The driver starts the
  ``resource_tracker`` *before* forking the pool so every worker shares
  it: attach-time registrations (Python < 3.13 registers attaches like
  creates) are then set no-ops in the shared tracker, and the driver's
  unlink unregisters each name exactly once — no spurious leak warnings,
  no premature unlinks, from worker exits.

Determinism is untouched: workers report accept *decisions* in canonical
batch order, and the driver replays them — the fabric is a transport and
layout change only (pinned bit-identical by ``tests/test_dp_arena.py`` and
``tests/test_shm.py`` for 1/2/4 workers, worker death, and warm/cold
caches).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import secrets
import threading
from concurrent.futures import ProcessPoolExecutor
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plan_cache import FrontierSimulator
from repro.cost.batch import BatchCostModel, CandidateBatch
from repro.obs import get_tracer, global_metrics
from repro.plans.arena import PlanArena

__all__ = [
    "SubsetEffects",
    "ShmTaskFabric",
    "BorrowedPlanArena",
    "accepted_dtype",
    "pack_batches",
]

#: Format tag of the packed-bytes encoding of :class:`SubsetEffects`.
EFFECTS_BYTES_FORMAT = "repro-dp-effects-v1"

#: Beyond this many tables the int64 bitset layout overflows; the fabric
#: declines and the coordinator falls back to in-process threads.
_MAX_NUMPY_BITS = 62

#: Minimum per-segment capacity in items (keeps tiny levels from thrashing
#: the doubling schedule).
_MIN_SEGMENT_ITEMS = 256

_EMPTY_HANDLES = np.empty(0, dtype=np.int64)


# ------------------------------------------------------------- record layout
_ACCEPTED_DTYPES: Dict[int, np.dtype] = {}


def accepted_dtype(num_metrics: int) -> np.dtype:
    """Record dtype of one accepted candidate row.

    Explicitly little-endian and unpadded, so the raw bytes are a stable
    on-disk / cross-process format: ``split`` (index of the split within
    its subset), ``outer`` / ``inner`` (frontier positions), ``op``
    (operator code), ``card`` (output cardinality), ``cost``
    (``num_metrics`` float64 values, NaN/±inf exact).
    """
    dtype = _ACCEPTED_DTYPES.get(num_metrics)
    if dtype is None:
        dtype = np.dtype(
            [
                ("split", "<i4"),
                ("outer", "<i4"),
                ("inner", "<i4"),
                ("op", "<i4"),
                ("card", "<f8"),
                ("cost", "<f8", (num_metrics,)),
            ]
        )
        _ACCEPTED_DTYPES[num_metrics] = dtype
    return dtype


class SubsetEffects:
    """One subset's recorded DP decisions as packed arrays.

    ``counts[s]`` is split ``s``'s candidate count; ``rows`` holds every
    accepted candidate (including ones evicted later within the same split
    — replay needs them) in acceptance order, split-major, as
    :func:`accepted_dtype` records.  This is the wire format between
    fabric workers and the driver, and — via :meth:`to_bytes` /
    :meth:`from_bytes` — the binary ``TaskCache`` payload.
    """

    __slots__ = ("counts", "rows", "_offsets")

    def __init__(self, counts: np.ndarray, rows: np.ndarray) -> None:
        self.counts = counts
        self.rows = rows
        self._offsets: Optional[np.ndarray] = None

    @property
    def num_splits(self) -> int:
        """Number of splits recorded for the subset."""
        return int(self.counts.shape[0])

    def split(self, index: int) -> Tuple[int, np.ndarray]:
        """``(candidate count, accepted records)`` of one split."""
        if self._offsets is None:
            per_split = np.bincount(
                self.rows["split"], minlength=self.counts.shape[0]
            )
            self._offsets = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(per_split, dtype=np.int64)]
            )
        start = int(self._offsets[index])
        stop = int(self._offsets[index + 1])
        return int(self.counts[index]), self.rows[start:stop]

    # ------------------------------------------------------------- codecs
    def to_bytes(self) -> bytes:
        """Pack into one byte string: JSON header line + raw array bytes.

        Float64 values round-trip exactly — NaN and ±inf included — because
        they are stored as raw IEEE-754 bytes, not decimal text.
        """
        num_metrics = int(self.rows.dtype["cost"].shape[0])
        header = json.dumps(
            {
                "format": EFFECTS_BYTES_FORMAT,
                "num_metrics": num_metrics,
                "splits": int(self.counts.shape[0]),
                "accepted": int(self.rows.shape[0]),
            },
            sort_keys=True,
        ).encode("ascii")
        return (
            header
            + b"\n"
            + np.ascontiguousarray(self.counts, dtype="<i8").tobytes()
            + np.ascontiguousarray(self.rows).tobytes()
        )

    @classmethod
    def from_bytes(cls, data: bytes, num_metrics: int) -> "SubsetEffects":
        """Decode :meth:`to_bytes` output; raises ``ValueError`` on foreign
        or truncated payloads (callers treat that as a cache miss)."""
        newline = data.find(b"\n")
        if newline < 0:
            raise ValueError("missing effects header")
        try:
            header = json.loads(data[:newline])
        except json.JSONDecodeError as exc:
            raise ValueError("corrupt effects header") from exc
        if (
            header.get("format") != EFFECTS_BYTES_FORMAT
            or header.get("num_metrics") != num_metrics
        ):
            raise ValueError("foreign effects payload")
        splits = int(header["splits"])
        accepted = int(header["accepted"])
        dtype = accepted_dtype(num_metrics)
        body = newline + 1
        expected = body + 8 * splits + dtype.itemsize * accepted
        if len(data) != expected:
            raise ValueError("truncated effects payload")
        counts = np.frombuffer(data, dtype="<i8", count=splits, offset=body)
        rows = np.frombuffer(
            data, dtype=dtype, count=accepted, offset=body + 8 * splits
        )
        return cls(counts, rows)

    # ------------------------------------------- legacy tuple interchange
    @classmethod
    def from_split_effects(
        cls, per_split: Sequence[Tuple[int, list]], num_metrics: int
    ) -> "SubsetEffects":
        """Build from the legacy nested-tuple ``SplitEffect`` list."""
        dtype = accepted_dtype(num_metrics)
        counts = np.asarray([count for count, _ in per_split], dtype="<i8")
        total = sum(len(accepted) for _, accepted in per_split)
        rows = np.empty(total, dtype=dtype)
        position = 0
        for index, (_, accepted) in enumerate(per_split):
            for outer, inner, op_code, cardinality, cost in accepted:
                record = rows[position]
                record["split"] = index
                record["outer"] = outer
                record["inner"] = inner
                record["op"] = op_code
                record["card"] = cardinality
                record["cost"] = cost
                position += 1
        return cls(counts, rows)

    def to_split_effects(self) -> List[Tuple[int, list]]:
        """The legacy nested-tuple form (tests and debugging)."""
        effects = []
        for index in range(self.num_splits):
            count, records = self.split(index)
            accepted = [
                (
                    int(record["outer"]),
                    int(record["inner"]),
                    int(record["op"]),
                    float(record["card"]),
                    tuple(float(value) for value in record["cost"]),
                )
                for record in records
            ]
            effects.append((count, accepted))
        return effects

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SubsetEffects(splits={self.num_splits}, "
            f"accepted={int(self.rows.shape[0])})"
        )


# --------------------------------------------------------------- reduction
def pack_batches(
    batches: Sequence[CandidateBatch], num_metrics: int, level_alpha: float
) -> SubsetEffects:
    """Simulate one subset's frontier over its costed batches; pack results.

    The shared reduce step of the fabric workers and the thread fallback:
    each batch runs through a private :class:`FrontierSimulator` (decision-
    identical to sequential insertion) and the accepted positions are
    gathered into :func:`accepted_dtype` records.
    """
    simulator = FrontierSimulator(num_metrics)
    dtype = accepted_dtype(num_metrics)
    counts = np.empty(len(batches), dtype="<i8")
    chunks: List[np.ndarray] = []
    base = 0
    for index, batch in enumerate(batches):
        positions = simulator.insert_batch(batch, level_alpha, base=base)
        base += batch.size
        counts[index] = batch.size
        if positions:
            gather = np.asarray(positions, dtype=np.int64)
            records = np.empty(gather.shape[0], dtype=dtype)
            records["split"] = index
            records["outer"] = batch.outer_pos[gather]
            records["inner"] = batch.inner_pos[gather]
            records["op"] = batch.op_codes[gather]
            records["card"] = batch.cardinalities[gather]
            records["cost"] = batch.costs[gather]
            chunks.append(records)
    rows = np.concatenate(chunks) if chunks else np.empty(0, dtype=dtype)
    return SubsetEffects(counts, rows)


# ----------------------------------------------------- subset enumeration
_SPLIT_POSITIONS: Dict[Tuple[int, int], np.ndarray] = {}
_SPLIT_POSITIONS_LOCK = threading.Lock()


def _split_positions(size: int, left_size: int) -> np.ndarray:
    """Combination-position matrix, identical to the optimizer's cache."""
    key = (size, left_size)
    positions = _SPLIT_POSITIONS.get(key)
    if positions is None:
        positions = np.fromiter(
            (
                position
                for combination in combinations(range(size), left_size)
                for position in combination
            ),
            dtype=np.int64,
        ).reshape(-1, left_size)
        with _SPLIT_POSITIONS_LOCK:
            _SPLIT_POSITIONS.setdefault(key, positions)
    return positions


def _bits_members(bits: int) -> Tuple[int, ...]:
    """Set bit positions of a subset bitset, ascending."""
    members = []
    table = 0
    while bits:
        if bits & 1:
            members.append(table)
        bits >>= 1
        table += 1
    return tuple(members)


def _left_bits_for(subset: Tuple[int, ...]) -> List[int]:
    """Left-side bitsets of a subset's ordered splits, scalar-loop order.

    Must enumerate identically to
    ``ArenaDPOptimizer._left_bits_of`` — the driver replays split ``s`` of
    a subset against the worker's recorded split ``s``.
    """
    size = len(subset)
    member_bits = np.array([1 << table for table in subset], dtype=np.int64)
    parts = [
        member_bits[_split_positions(size, left_size)].sum(axis=1)
        for left_size in range(1, size)
    ]
    return np.concatenate(parts).tolist()


# ------------------------------------------------------------ borrowed arena
class BorrowedPlanArena(PlanArena):
    """A read-only arena twin over attached shared-memory columns.

    Worker processes never build plan nodes — they only gather the numeric
    columns (operator codes, cardinalities, costs) that the trusted level
    kernel and the frontier simulator read.  :meth:`attach_columns` points
    the column storage at borrowed views; every mutation path raises.
    The Python side-car lists stay empty, so scalar accessors must not be
    used on a borrowed arena (the trusted pipeline never does).
    """

    def attach_columns(
        self,
        op_codes: np.ndarray,
        cardinalities: np.ndarray,
        costs: np.ndarray,
        size: int,
    ) -> None:
        """Adopt borrowed column views; valid rows are ``[0, size)``."""
        if not 0 <= size <= op_codes.shape[0]:
            raise ValueError(f"size {size} exceeds column capacity")
        self._op = op_codes
        self._card = cardinalities
        self._cost = costs
        self._size = size

    def _append(self, key, rel, rel_bits, cardinality, cost):  # noqa: ANN001
        raise RuntimeError("BorrowedPlanArena is read-only")


# -------------------------------------------------------------- worker side
_WORKER_STATE: Optional["_WorkerFabricState"] = None
_PREWARM_BARRIER = None


def _fabric_initializer(model_blob: bytes, barrier) -> None:  # noqa: ANN001
    """Pool initializer: build the per-process reduce state once."""
    global _WORKER_STATE, _PREWARM_BARRIER
    _PREWARM_BARRIER = barrier
    cost_model = pickle.loads(model_blob)
    _WORKER_STATE = _WorkerFabricState(cost_model)


def _prewarm_wait(timeout: float = 30.0) -> bool:
    """Block until every pool process exists (or the barrier breaks).

    Submitted ``workers`` times right after pool construction: each task
    pins one process (none is idle while its task waits on the barrier),
    forcing the executor to spawn the full complement *before* the driver
    starts any worker threads — forking later, with threads live, risks
    inheriting held locks.
    """
    barrier = _PREWARM_BARRIER
    if barrier is None:
        return False
    try:
        barrier.wait(timeout)
        return True
    except Exception:
        return False


class _WorkerFabricState:
    """Per-process attach/refresh state and the shard reduce pipeline."""

    def __init__(self, cost_model) -> None:  # noqa: ANN001
        library = cost_model.library
        self._num_metrics = cost_model.num_metrics
        self._arena = BorrowedPlanArena(
            cost_model.query,
            library.scan_operators,
            library.join_operators,
            cost_model.num_metrics,
        )
        self._model = BatchCostModel(cost_model, arena=self._arena)
        self._segments: Dict[str, object] = {}
        self._names: Dict[str, str] = {}
        self._views: Dict[str, np.ndarray] = {}
        #: Retired mappings that still had exported buffers at swap time.
        self._graveyard: List[object] = []
        #: bits -> (start, count) into the frontier handle pool.
        self._frontiers: Dict[int, Tuple[int, int]] = {}
        self._applied_entries = 0
        self._pool_offset = 0
        self._rel_memo: Dict[int, FrozenSet[int]] = {}

    def _view(self, role: str, shm, capacity: int) -> np.ndarray:  # noqa: ANN001
        if role == "cost":
            view = np.frombuffer(
                shm.buf, dtype=np.float64, count=capacity * self._num_metrics
            ).reshape(capacity, self._num_metrics)
        elif role == "op":
            view = np.frombuffer(shm.buf, dtype=np.int32, count=capacity)
        elif role == "card":
            view = np.frombuffer(shm.buf, dtype=np.float64, count=capacity)
        else:  # fbits / fcnt / fh
            view = np.frombuffer(shm.buf, dtype=np.int64, count=capacity)
        view.flags.writeable = False
        return view

    def refresh(self, meta: dict) -> None:
        """Attach-or-refresh to the published state described by ``meta``.

        Idempotent per ``meta``: segments are re-attached only on a
        generation rename, and only frontier entries past the applied
        counter are ingested, so duplicate or out-of-order shard
        submissions (lease reassignment) are harmless.
        """
        from multiprocessing import shared_memory

        if meta["num_metrics"] != self._num_metrics:
            raise ValueError("fabric meta disagrees on num_metrics")
        retired = []
        for role, name in meta["names"].items():
            if self._names.get(role) == name:
                continue
            # Attach-time registration (Python < 3.13) is a set no-op in
            # the resource tracker shared with the driver, which started
            # it before forking; the driver's unlink unregisters once.
            attached = shared_memory.SharedMemory(name=name)
            old = self._segments.get(role)
            self._segments[role] = attached
            self._names[role] = name
            self._views[role] = self._view(role, attached, meta["caps"][role])
            if old is not None:
                retired.append(old)
        self._arena.attach_columns(
            self._views["op"],
            self._views["card"],
            self._views["cost"],
            meta["nodes"],
        )
        fbits = self._views["fbits"]
        fcnt = self._views["fcnt"]
        for index in range(self._applied_entries, meta["fentries"]):
            count = int(fcnt[index])
            self._frontiers[int(fbits[index])] = (self._pool_offset, count)
            self._pool_offset += count
        self._applied_entries = meta["fentries"]
        for old in retired:
            try:
                old.close()
            except BufferError:  # pragma: no cover - lingering view export
                self._graveyard.append(old)

    def _rel(self, bits: int) -> FrozenSet[int]:
        rel = self._rel_memo.get(bits)
        if rel is None:
            rel = frozenset(_bits_members(bits))
            self._rel_memo[bits] = rel
        return rel

    def _handles(self, bits: int, pool: np.ndarray) -> np.ndarray:
        entry = self._frontiers.get(bits)
        if entry is None:
            return _EMPTY_HANDLES
        start, count = entry
        return pool[start : start + count]

    def reduce_subset(self, bits: int, level_alpha: float) -> SubsetEffects:
        """Reduce one subset over the attached views; pure and zero-copy."""
        lefts = _left_bits_for(_bits_members(bits))
        pool = self._views["fh"]
        splits = []
        for left_bits in lefts:
            right_bits = bits ^ left_bits
            splits.append(
                (
                    self._handles(left_bits, pool),
                    self._handles(right_bits, pool),
                    self._rel(left_bits),
                    self._rel(right_bits),
                )
            )
        batches = self._model.join_candidates_level(splits)
        return pack_batches(batches, self._num_metrics, level_alpha)


def _reduce_shard(
    meta: dict, subsets: Tuple[int, ...], level_alpha: float
) -> Tuple[List[SubsetEffects], dict]:
    """Pool entry point: refresh, then reduce every subset of the shard.

    Returns ``(effects, metrics snapshot)`` — worker-process counters ride
    back piggybacked on the packed effects, and the driver folds them into
    its global registry (order-independent merges keep the totals
    deterministic across lease orderings).
    """
    from repro.obs import reset_global_metrics

    state = _WORKER_STATE
    if state is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("fabric worker used before initialization")
    metrics = reset_global_metrics()
    state.refresh(meta)
    effects = [state.reduce_subset(bits, level_alpha) for bits in subsets]
    metrics.add("dp.worker_subsets", len(effects))
    metrics.add(
        "dp.worker_candidates",
        int(sum(int(packed.counts.sum()) for packed in effects)),
    )
    metrics.add(
        "dp.worker_accepted",
        int(sum(int(packed.rows.shape[0]) for packed in effects)),
    )
    return effects, metrics.snapshot()


# -------------------------------------------------------------- driver side
class _Segment:
    """Driver-side bookkeeping of one published shared-memory segment."""

    __slots__ = ("role", "item_bytes", "name", "shm", "capacity", "gen")

    def __init__(self, role: str, item_bytes: int) -> None:
        self.role = role
        self.item_bytes = item_bytes
        self.name: Optional[str] = None
        self.shm = None
        self.capacity = 0
        self.gen = 0


class ShmTaskFabric:
    """The driver half of the fabric: publish levels, dispatch reductions.

    Construct through :meth:`create`, which returns ``None`` whenever the
    platform or workload cannot support the fabric (no fork start method,
    more than 62 tables, unpicklable cost model, ``REPRO_DP_FABRIC``
    forced to ``threads``) — callers then fall back to the in-process
    thread reducer, which produces identical results.
    """

    def __init__(
        self, batch_model: BatchCostModel, workers: int, pool, base: str
    ) -> None:  # noqa: ANN001 - pool is a ProcessPoolExecutor
        self._model = batch_model
        self._arena = batch_model.arena
        self._num_metrics = batch_model.num_metrics
        self._workers = workers
        self._pool = pool
        self._base = base
        metrics = self._num_metrics
        self._segments: Dict[str, _Segment] = {
            "op": _Segment("op", 4),
            "card": _Segment("card", 8),
            "cost": _Segment("cost", 8 * metrics),
            "fbits": _Segment("fbits", 8),
            "fcnt": _Segment("fcnt", 8),
            "fh": _Segment("fh", 8),
        }
        self._published_nodes = 0
        self._fentries = 0
        self._fhlen = 0
        self._queued: List[Tuple[int, np.ndarray]] = []
        self._meta: Optional[dict] = None
        self._closed = False

    # ----------------------------------------------------------- lifecycle
    @classmethod
    def create(
        cls, batch_model: BatchCostModel, workers: int
    ) -> Optional["ShmTaskFabric"]:
        """Build the fabric, or ``None`` when it cannot run here."""
        mode = os.environ.get("REPRO_DP_FABRIC", "").strip().lower()
        if mode in ("threads", "off"):
            return None
        if mode not in ("", "shm"):
            raise ValueError(
                f"unknown REPRO_DP_FABRIC value {mode!r}; "
                "expected 'shm' or 'threads'"
            )
        if batch_model.query.num_tables > _MAX_NUMPY_BITS:
            return None
        pool = None
        try:
            from multiprocessing import shared_memory  # noqa: F401

            if "fork" not in multiprocessing.get_all_start_methods():
                return None
            # Start the resource tracker *before* forking so every worker
            # inherits (shares) it: their attach-time registrations become
            # set no-ops instead of spawning per-child trackers that would
            # unlink driver-owned segments on worker exit.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
            blob = pickle.dumps(batch_model.cost_model)
            context = multiprocessing.get_context("fork")
            barrier = context.Barrier(workers)
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_fabric_initializer,
                initargs=(blob, barrier),
            )
            # Prewarm the full complement before any driver thread exists;
            # each blocked task pins one process, forcing the next spawn.
            futures = [pool.submit(_prewarm_wait) for _ in range(workers)]
            for future in futures:
                future.result(timeout=60.0)
            base = f"rdp{os.getpid():x}{secrets.token_hex(3)}"
            return cls(batch_model, workers, pool, base)
        except Exception:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            return None

    def close(self) -> None:
        """Shut the pool down and unlink every segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)
        for segment in self._segments.values():
            if segment.shm is None:
                continue
            try:
                segment.shm.close()
            except BufferError:  # pragma: no cover - no views survive flush
                pass
            try:
                segment.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            segment.shm = None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    @property
    def segment_names(self) -> List[str]:
        """Names of the currently live segments (tests check for leaks)."""
        return [
            segment.name
            for segment in self._segments.values()
            if segment.shm is not None and segment.name is not None
        ]

    # ------------------------------------------------------------- publish
    def queue_frontier(self, bits: int, handles: np.ndarray) -> None:
        """Queue one final frontier (a lower-level subset's handle run).

        Nothing is written until :meth:`flush` — levels served entirely
        from a warm task cache never touch shared memory.
        """
        self._queued.append(
            (int(bits), np.ascontiguousarray(handles, dtype=np.int64))
        )

    def flush(self) -> dict:
        """Publish the arena delta and queued frontiers; returns the meta.

        Writes are strictly append-only at item granularity: workers only
        read rows below the published counters in ``meta``, so a flush
        racing an in-flight shard (impossible in the current driver, which
        flushes before submitting) would still never be observed.
        """
        if self._closed:
            raise RuntimeError("fabric is closed")
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "shm.flush",
                queued_frontiers=len(self._queued),
                published_nodes=self._published_nodes,
            ):
                return self._flush_inner()
        return self._flush_inner()

    def _flush_inner(self) -> dict:
        arena_size = len(self._arena)
        if arena_size > self._published_nodes:
            snapshot = self._arena.column_snapshot(
                self._published_nodes, arena_size
            )
            self._write("op", self._published_nodes, snapshot.op_codes, arena_size)
            self._write(
                "card", self._published_nodes, snapshot.cardinalities, arena_size
            )
            self._write("cost", self._published_nodes, snapshot.costs, arena_size)
            self._published_nodes = arena_size
        for bits, handles in self._queued:
            count = handles.shape[0]
            if count:
                self._write("fh", self._fhlen, handles, self._fhlen + count)
                self._fhlen += count
            stop = self._fentries + 1
            self._write(
                "fbits", self._fentries, np.asarray([bits], dtype=np.int64), stop
            )
            self._write(
                "fcnt", self._fentries, np.asarray([count], dtype=np.int64), stop
            )
            self._fentries = stop
        self._queued.clear()
        self._meta = {
            "names": {
                role: segment.name for role, segment in self._segments.items()
            },
            "caps": {
                role: segment.capacity for role, segment in self._segments.items()
            },
            "nodes": self._published_nodes,
            "fentries": self._fentries,
            "fhlen": self._fhlen,
            "num_metrics": self._num_metrics,
        }
        metrics = global_metrics()
        metrics.add("shm.flushes")
        metrics.gauge("shm.published_nodes", float(self._published_nodes))
        metrics.gauge("shm.frontier_entries", float(self._fentries))
        metrics.gauge(
            "shm.segment_bytes",
            float(
                sum(
                    segment.capacity * segment.item_bytes
                    for segment in self._segments.values()
                )
            ),
        )
        return self._meta

    def _ensure(self, role: str, need: int) -> _Segment:
        """Grow a segment to hold ``need`` items (generation-bumped name).

        The preserved prefix is copied into the new segment before the old
        one is unlinked; attached workers keep reading their old mapping
        until a refresh hands them the new name.
        """
        from multiprocessing import shared_memory

        segment = self._segments[role]
        if segment.shm is not None and need <= segment.capacity:
            return segment
        capacity = max(_MIN_SEGMENT_ITEMS, need, segment.capacity * 2)
        name = f"{self._base}{role}{segment.gen}"
        grown = shared_memory.SharedMemory(
            name=name, create=True, size=capacity * segment.item_bytes
        )
        if segment.shm is not None:
            preserved = self._preserved_items(role) * segment.item_bytes
            grown.buf[:preserved] = segment.shm.buf[:preserved]
            old = segment.shm
            old.close()
            old.unlink()
        segment.shm = grown
        segment.name = name
        segment.capacity = capacity
        segment.gen += 1
        global_metrics().add("shm.segment_growths")
        return segment

    def _preserved_items(self, role: str) -> int:
        if role in ("op", "card", "cost"):
            return self._published_nodes
        if role == "fh":
            return self._fhlen
        return self._fentries

    def _write(self, role: str, start: int, data: np.ndarray, stop: int) -> None:
        segment = self._ensure(role, stop)
        if role == "cost":
            view = np.frombuffer(
                segment.shm.buf,
                dtype=np.float64,
                count=segment.capacity * self._num_metrics,
            ).reshape(segment.capacity, self._num_metrics)
        else:
            dtype = {"op": np.int32, "card": np.float64}.get(role, np.int64)
            view = np.frombuffer(segment.shm.buf, dtype=dtype, count=segment.capacity)
        view[start:stop] = data
        del view  # release the buffer export before any close/unlink
        global_metrics().add(
            "shm.bytes_published", (stop - start) * segment.item_bytes
        )

    # -------------------------------------------------------------- reduce
    def reduce_shard(
        self, subsets: Sequence[int], level_alpha: float
    ) -> List[SubsetEffects]:
        """Reduce a shard of subsets on the worker pool (blocking).

        Called from coordinator worker threads; the pool runs shards of
        different leases truly in parallel.  Reductions are pure, so a
        reassigned lease re-running a shard is merely redundant work.
        """
        if self._meta is None:
            raise RuntimeError("flush() must run before reduce_shard()")
        future = self._pool.submit(
            _reduce_shard, self._meta, tuple(subsets), level_alpha
        )
        effects, snapshot = future.result()
        global_metrics().merge_snapshot(snapshot)
        return effects

    @property
    def num_metrics(self) -> int:
        """Cost-vector width of the published arena."""
        return self._num_metrics

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShmTaskFabric(workers={self._workers}, "
            f"nodes={self._published_nodes}, frontiers={self._fentries}, "
            f"closed={self._closed})"
        )
