"""Level-sharded distributed DP — pure subset reductions under leases.

The coordinator backend of
:class:`~repro.baselines.dp.ArenaDPOptimizer` computes one subset level of
the DP lattice at a time through the generic lease
:class:`~repro.dist.coordinator.Coordinator`: the level's subsets are
sharded into :class:`DPLevelTask` leaf tasks, each worker reduces its
subsets against the (immutable during the level) lower-level frontiers,
and the optimizer replays the recorded per-split decisions in canonical
enumeration order.

Determinism rests on two facts:

* a level-``s`` subset's reduction is **pure**: its candidate costs read
  only strictly-smaller subsets' frontiers (final once the level starts)
  and its own entry starts empty, so the reduction is a function of the
  query/cost-model provenance and the subset alone — sharding layout,
  worker count, lease reassignment after a crash, and execution order
  cannot change it;
* workers report *decisions*, not state: for every split, the candidate
  count and the accepted candidate rows (including candidates accepted and
  later evicted within the same split — later accept tests depend on
  them).  Replaying exactly that subsequence through
  :meth:`~repro.core.plan_cache.ArenaPlanCache.insert` reproduces the
  sequential engine's frontier bit-for-bit.

Purity also makes the reductions content-addressable: with a
:class:`~repro.dist.cache.TaskCache`, each subset's decisions are stored
under a provenance hash (:func:`dp_subset_key`) covering tables, join
graph, metrics, cost-model configuration, operator library, and the
per-level pruning factor — a warm cache replays a level without computing
anything, bit-identically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.plan_cache import ArenaPlanCache, FrontierSimulator
from repro.cost.batch import BatchCostModel
from repro.dist.cache import TaskCache
from repro.dist.coordinator import DEFAULT_LEASE_TIMEOUT, Coordinator, Lease
from repro.dist.shm import ShmTaskFabric, SubsetEffects, pack_batches
from repro.dist.worker import Worker
from repro.obs import get_tracer, global_metrics

#: Format tag hashed into every DP provenance key.  v2: effect payloads
#: moved from JSON nested tuples to the packed binary records of
#: :mod:`repro.dist.shm` (``.bin`` cache tier), so keys never collide with
#: v1 entries.
DP_PROVENANCE_FORMAT = "repro-dp-subset-v2"

#: Re-exported lease type granted to DP workers (the ``on_lease`` hook of
#: :func:`compute_dp_level` receives these).
DPLease = Lease

#: One accepted candidate: (outer position, inner position, operator code,
#: output cardinality, cost row).
AcceptedRow = Tuple[int, int, int, float, Tuple[float, ...]]

#: One split's recorded decisions: (candidate count, accepted rows in
#: batch order — including rows evicted later within the same split).
SplitEffect = Tuple[int, List[AcceptedRow]]


@dataclass(frozen=True)
class DPLevelTask:
    """One shard of a DP level: a run of subset bitsets to reduce."""

    task_id: str
    subsets: Tuple[int, ...]


@dataclass(frozen=True)
class DPLevelResult:
    """A shard's recorded decisions, keyed back to its task."""

    task: DPLevelTask
    #: ``(subset bits, packed effects)`` per subset of the shard.
    effects: Tuple[Tuple[int, SubsetEffects], ...]


# --------------------------------------------------------------- provenance
def dp_provenance_signature(
    batch_model: BatchCostModel, level_alpha: float
) -> str:
    """Canonical JSON string of everything that determines a DP reduction.

    Covers the query (table indices, cardinalities, row widths, join edges
    with selectivities), the metric names, every cost-model configuration
    field, the full operator library, and the per-level pruning factor.
    Floats are serialized by JSON's shortest-round-trip repr (NaN and
    Infinity included), so equal signatures imply bit-equal inputs.
    """
    model = batch_model.cost_model
    query = batch_model.query
    library = model.library
    signature = {
        "format": DP_PROVENANCE_FORMAT,
        "tables": [
            [table.index, table.cardinality, table.row_width]
            for table in query.tables
        ],
        "edges": sorted(
            [a, b, selectivity] for a, b, selectivity in query.join_graph.edges()
        ),
        "metrics": list(model.metric_names),
        "config": dataclasses.asdict(model.config),
        "scan_operators": [
            [op.name, op.algorithm.value, op.output_format.value,
             op.sampling_rate, op.parallelism]
            for op in library.scan_operators
        ],
        "join_operators": [
            [op.name, op.algorithm.value, op.output_format.value,
             op.memory_pages, op.parallelism]
            for op in library.join_operators
        ],
        "level_alpha": level_alpha,
    }
    return json.dumps(signature, sort_keys=True)


def dp_subset_key(signature: str, subset_bits: int) -> str:
    """Content-address of one subset's reduction under a provenance signature."""
    digest = hashlib.sha256()
    digest.update(signature.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(str(subset_bits).encode("ascii"))
    return digest.hexdigest()


def _payload_from_effects(per_split: Sequence[SplitEffect]) -> dict:
    return {
        "splits": [
            {
                "count": count,
                "accepted": [
                    [outer, inner, op_code, cardinality, list(cost)]
                    for outer, inner, op_code, cardinality, cost in accepted
                ],
            }
            for count, accepted in per_split
        ]
    }


def _effects_from_payload(payload: dict) -> List[SplitEffect]:
    return [
        (
            int(split["count"]),
            [
                (
                    int(outer),
                    int(inner),
                    int(op_code),
                    float(cardinality),
                    tuple(float(value) for value in cost),
                )
                for outer, inner, op_code, cardinality, cost in split["accepted"]
            ],
        )
        for split in payload["splits"]
    ]


# ---------------------------------------------------------------- reduction
def _reduce_subset_packed(
    batch_model: BatchCostModel,
    cache: ArenaPlanCache,
    sets: Dict[int, FrozenSet[int]],
    lefts: Sequence[int],
    level_alpha: float,
    bits: int,
) -> SubsetEffects:
    """In-process twin of the shared-memory workers' reduce pipeline.

    The thread fallback of :func:`compute_dp_level` (used when
    :meth:`~repro.dist.shm.ShmTaskFabric.create` declines): the same
    trusted level kernel and frontier simulation as the fabric workers,
    run against the live arena and cache — which are read-only for the
    duration of a level — and packed into the same record layout.
    """
    splits = []
    for left_bits in lefts:
        outer_rel = sets[left_bits]
        inner_rel = sets[bits ^ left_bits]
        splits.append(
            (
                cache.handles_array(outer_rel),
                cache.handles_array(inner_rel),
                outer_rel,
                inner_rel,
            )
        )
    batches = batch_model.join_candidates_level(splits)
    return pack_batches(batches, batch_model.num_metrics, level_alpha)


def _reduce_subset(
    batch_model: BatchCostModel,
    cache: ArenaPlanCache,
    sets: Dict[int, FrozenSet[int]],
    lefts: Sequence[int],
    level_alpha: float,
    bits: int,
) -> List[SplitEffect]:
    """Reduce one subset: cost all splits, simulate pruning, record decisions.

    Runs on worker threads against shared read-only state (the arena and
    cache are only appended to between levels, never during one).  The
    frontier the subset would build is simulated on a private scratch
    entry, so nothing here mutates shared structures.
    """
    pairs = []
    for left_bits in lefts:
        outer_handles = cache.handles(sets[left_bits])
        inner_handles = cache.handles(sets[bits ^ left_bits])
        pairs.append((outer_handles, inner_handles))
    batches = batch_model.join_candidates_multi(pairs)
    simulator = FrontierSimulator(batch_model.num_metrics)
    effects: List[SplitEffect] = []
    for batch in batches:
        positions = simulator.insert_batch(batch, level_alpha)
        accepted: List[AcceptedRow] = [
            (
                int(batch.outer_pos[position]),
                int(batch.inner_pos[position]),
                int(batch.op_codes[position]),
                float(batch.cardinalities[position]),
                tuple(float(value) for value in batch.costs[position]),
            )
            for position in positions
        ]
        effects.append((batch.size, accepted))
    return effects


class _DPWorker(Worker):
    """Lease-pulling worker executing DP shard reductions in place of leaves."""

    def __init__(
        self,
        worker_id: str,
        coordinator: Coordinator,
        reducer: Callable[[DPLevelTask], DPLevelResult],
        poll: float = 0.01,
        on_lease: Optional[Callable[[Lease], None]] = None,
    ) -> None:
        super().__init__(worker_id, coordinator, poll=poll, on_lease=on_lease)
        self._reducer = reducer

    def _execute(self, spec, tasks):  # noqa: ANN001 - duck-typed like the base
        return [self._reducer(task) for task in tasks]


def compute_dp_level(
    batch_model: BatchCostModel,
    cache: ArenaPlanCache,
    sets: Dict[int, FrozenSet[int]],
    splits: Dict[int, List[int]],
    level_alpha: float,
    workers: int = 1,
    task_cache: Optional[TaskCache] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    on_lease: Optional[Callable[[Lease], None]] = None,
    fabric: Optional[ShmTaskFabric] = None,
) -> Dict[int, SubsetEffects]:
    """Compute one DP level's split decisions across lease-based workers.

    Parameters
    ----------
    batch_model / cache / sets:
        The optimizer's shared state; read-only for the duration of the
        level (all replay happens afterwards, on the optimizer's thread).
    splits:
        ``subset bits -> left-side bits of its ordered splits`` for every
        subset of the level, in canonical enumeration order.
    level_alpha:
        Per-join pruning factor.
    workers:
        Worker threads; results are bit-identical for any count.
    task_cache:
        Optional content-addressed cache of per-subset decisions (packed
        binary tier — exact float64 round-trip).
    lease_timeout:
        Seconds before the coordinator reclaims an uncompleted lease.
    on_lease:
        Fault-injection hook passed to every worker.
    fabric:
        Optional shared-memory task fabric.  When given (and flushed
        here), worker threads dispatch their shards to its process pool,
        which reduces over published zero-copy views; without one, the
        same reductions run on the threads themselves
        (:func:`_reduce_subset_packed`) — results are identical.

    Returns ``subset bits -> packed effects`` for the whole level.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    num_metrics = batch_model.num_metrics
    effects: Dict[int, SubsetEffects] = {}
    keys: Dict[int, str] = {}
    pending: List[int] = []
    if task_cache is not None:
        signature = dp_provenance_signature(batch_model, level_alpha)
        for bits in sorted(splits):
            key = dp_subset_key(signature, bits)
            keys[bits] = key
            payload = task_cache.get_raw_bytes(key)
            if payload is not None:
                try:
                    effects[bits] = SubsetEffects.from_bytes(payload, num_metrics)
                    continue
                except ValueError:  # foreign/corrupt entry: recompute
                    pass
            pending.append(bits)
        metrics = global_metrics()
        if effects:
            metrics.add("dp.subset_cache_hits", len(effects))
        if pending:
            metrics.add("dp.subset_cache_misses", len(pending))
    else:
        pending = sorted(splits)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "dp.level.scheduled",
            subsets=len(splits),
            cached=len(effects),
            pending=len(pending),
            workers=workers,
            fabric=fabric is not None,
        )
    if not pending:
        return effects

    # Publish the level before any shard is submitted: the arena rows and
    # frontiers a level reads are final once it starts, so one flush per
    # level (deltas only) is all the data movement the fabric ever does.
    # Fully cache-warm levels return above without touching shared memory.
    if fabric is not None:
        fabric.flush()

    # One lease per worker: pool round-trips dominate small levels, so
    # shards are as coarse as fault tolerance allows — a dead worker's
    # whole share requeues on lease expiry and any survivor picks it up.
    shard_size = max(1, -(-len(pending) // workers))
    tasks = [
        DPLevelTask(
            task_id=f"dp-shard-{index}",
            subsets=tuple(pending[start : start + shard_size]),
        )
        for index, start in enumerate(range(0, len(pending), shard_size))
    ]

    def reduce_shard(task: DPLevelTask) -> List[SubsetEffects]:
        if fabric is not None:
            return fabric.reduce_shard(task.subsets, level_alpha)
        return [
            _reduce_subset_packed(
                batch_model, cache, sets, splits[bits], level_alpha, bits
            )
            for bits in task.subsets
        ]

    def reduce_task(task: DPLevelTask) -> DPLevelResult:
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "dp.shard",
                task=task.task_id,
                subsets=len(task.subsets),
                fabric=fabric is not None,
            ):
                per_subset = reduce_shard(task)
        else:
            per_subset = reduce_shard(task)
        return DPLevelResult(
            task=task, effects=tuple(zip(task.subsets, per_subset))
        )

    # The generic coordinator is reused duck-typed: explicit task list,
    # "case" granularity (one group per shard), no spec introspection and
    # no TaskSpec-keyed cache — DP caching is the raw-key flow above.
    coordinator = Coordinator(
        None,
        tasks=tasks,
        workers_hint=workers,
        granularity="case",
        cache=None,
        lease_timeout=lease_timeout,
        metrics=global_metrics(),
    )
    if workers == 1:
        _DPWorker("dp-worker-0", coordinator, reduce_task, on_lease=on_lease).drain()
    else:
        threads = [
            _DPWorker(
                f"dp-worker-{index}", coordinator, reduce_task, on_lease=on_lease
            )
            for index in range(workers)
        ]
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join()
        if not coordinator.done:
            errors = [worker.error for worker in threads if worker.error is not None]
            if errors:
                raise errors[0]
            raise RuntimeError("DP level ended with incomplete shards")

    for result in coordinator.results():
        for bits, packed in result.effects:
            effects[bits] = packed
            if task_cache is not None:
                task_cache.put_raw_bytes(keys[bits], packed.to_bytes())
    return effects
