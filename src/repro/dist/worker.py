"""Local workers driving a :class:`~repro.dist.coordinator.Coordinator`.

A :class:`Worker` is a thread in the coordinator's process that pulls
leases and executes them — in-process for a single worker, or by
submitting the lease's task group to a shared ``ProcessPoolExecutor`` so
that leases run truly in parallel.  :func:`run_coordinated` wires the
standard topology together (coordinator + N workers + pool) and is what
``run_scenario(backend="coordinator")`` calls.

Fault model: a worker that raises mid-lease simply stops completing it —
its thread records the error and exits, the lease expires, and the
coordinator reassigns the group to a surviving worker.  Tests inject
exactly this through the ``on_lease`` hook.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Callable, List, Optional

from repro.bench.scenario import ScenarioSpec
from repro.bench.tasks import (
    TaskResult,
    TaskSpec,
    _execute_task_group,
    _execute_task_group_metered,
)
from repro.dist.cache import TaskCache
from repro.dist.coordinator import DEFAULT_LEASE_TIMEOUT, Coordinator, Lease
from repro.dist.transport import LeaseRenewer, LeaseTransport
from repro.obs import METRICS_OUT_ENV_VAR, get_tracer, global_metrics
from repro.obs.dashboard import MetricsPublisher


def _renew_callback(transport: "LeaseTransport", lease_id: str):
    """Bind one lease's renewal to a zero-argument heartbeat callable."""
    return lambda: transport.renew_lease(lease_id)

# ----------------------------------------------------- shared process pool
# One persistent ProcessPoolExecutor shared by successive run_coordinated
# calls: at micro scale the per-run fork + warm-up of a fresh pool used to
# exceed the work itself, which is exactly the regression BENCH_dp.json
# recorded for the coordinator backend.  The pool is replaced (after a
# deterministic shutdown) when a caller needs more workers, torn down on
# worker-thread error paths, and reaped at interpreter exit.
_POOL_LOCK = threading.Lock()
_SHARED_POOL: Optional[ProcessPoolExecutor] = None
_SHARED_POOL_WORKERS = 0


def shared_process_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent process pool, grown to at least ``workers`` workers."""
    global _SHARED_POOL, _SHARED_POOL_WORKERS
    with _POOL_LOCK:
        if _SHARED_POOL is None or _SHARED_POOL_WORKERS < workers:
            if _SHARED_POOL is not None:
                _SHARED_POOL.shutdown(wait=True, cancel_futures=True)
            _SHARED_POOL = ProcessPoolExecutor(max_workers=workers)
            _SHARED_POOL_WORKERS = workers
        return _SHARED_POOL


def shutdown_shared_pool() -> None:
    """Deterministically shut the shared pool down (idempotent).

    Called on every ``run_coordinated`` error path — a raised worker error
    must not strand pool processes — and registered via ``atexit`` for
    normal interpreter shutdown.
    """
    global _SHARED_POOL, _SHARED_POOL_WORKERS
    with _POOL_LOCK:
        if _SHARED_POOL is not None:
            _SHARED_POOL.shutdown(wait=True, cancel_futures=True)
            _SHARED_POOL = None
            _SHARED_POOL_WORKERS = 0


atexit.register(shutdown_shared_pool)


class Worker(threading.Thread):
    """One lease-pulling worker thread.

    Drains any :class:`~repro.dist.transport.LeaseTransport` — the
    in-memory :class:`Coordinator`, the file protocol's
    :class:`~repro.dist.protocol.FileLeaseTransport`, or the TCP
    service's :class:`~repro.dist.service.RemoteLeaseTransport` — the
    loop only speaks the transport's message vocabulary.

    Parameters
    ----------
    worker_id:
        Identifier recorded on every lease this worker holds.
    transport:
        The lease transport to pull leases from (historically always a
        :class:`Coordinator`).
    executor:
        Optional executor; when given, lease groups are submitted to it
        (one lease = one submission) instead of executing on this thread.
    poll:
        Seconds to wait between queue checks when no lease is pending.
    on_lease:
        Optional hook called with every granted :class:`Lease` before
        execution — the fault-injection seam used by the tests (raising
        here simulates a worker dying mid-lease).
    renew_interval:
        Optional heartbeat period in seconds: while a lease executes, a
        :class:`~repro.dist.transport.LeaseRenewer` thread extends its
        deadline every that-many seconds, so lease timeouts can be much
        shorter than the slowest healthy lease.
    """

    def __init__(
        self,
        worker_id: str,
        transport: "LeaseTransport",
        executor: Optional[Executor] = None,
        poll: float = 0.05,
        on_lease: Optional[Callable[[Lease], None]] = None,
        renew_interval: Optional[float] = None,
    ) -> None:
        super().__init__(name=f"repro-dist-{worker_id}", daemon=True)
        self.worker_id = worker_id
        self.error: Optional[BaseException] = None
        self.completed_leases = 0
        self._transport = transport
        self._executor = executor
        self._poll = poll
        self._on_lease = on_lease
        self._renew_interval = renew_interval

    def run(self) -> None:  # pragma: no cover - thin wrapper around drain()
        try:
            self.drain()
        except BaseException as exc:
            self.error = exc

    def drain(self) -> int:
        """Pull and execute leases until the transport is done.

        Returns the number of leases this worker completed.  Runs on the
        calling thread — ``start()`` runs it on the worker thread instead.
        """
        transport = self._transport
        while True:
            lease = transport.request_lease(self.worker_id)
            if lease is None:
                if transport.done:
                    return self.completed_leases
                transport.wait_for_work(self._poll)
                continue
            if self._on_lease is not None:
                self._on_lease(lease)
            try:
                spec = transport.spec_for_lease(lease)
                renewer = (
                    LeaseRenewer(
                        _renew_callback(transport, lease.lease_id),
                        self._renew_interval,
                    )
                    if self._renew_interval is not None
                    else None
                )
                try:
                    if renewer is not None:
                        renewer.start()
                    tracer = get_tracer()
                    if tracer.enabled:
                        with tracer.span(
                            "worker.lease",
                            lease_id=lease.lease_id,
                            worker=self.worker_id,
                            tasks=len(lease.tasks),
                        ):
                            results = self._execute(spec, list(lease.tasks))
                    else:
                        results = self._execute(spec, list(lease.tasks))
                finally:
                    if renewer is not None:
                        renewer.stop()
                transport.complete_lease(lease.lease_id, results)
            except BaseException:
                # An execution failure hands the lease back immediately
                # instead of waiting out the lease timeout.  Deliberately
                # *not* done for ``on_lease`` errors above: that hook
                # simulates a worker dying silently, and the tests pin the
                # resulting expiry/reassignment behaviour.
                try:
                    transport.fail_lease(lease.lease_id)
                except Exception:
                    pass
                raise
            self.completed_leases += 1

    def _execute(
        self, spec: ScenarioSpec, tasks: List[TaskSpec]
    ) -> List[TaskResult]:
        if self._executor is None:
            return _execute_task_group(spec, tasks)
        # Process-pool dispatch ships the worker process's metrics snapshot
        # back piggybacked on the lease results; folding is deterministic
        # (order-independent merges), so driver totals match a sequential
        # run no matter which lease lands first.
        results, snapshot = self._executor.submit(
            _execute_task_group_metered, spec, tasks
        ).result()
        global_metrics().merge_snapshot(snapshot)
        return results


def run_coordinated(
    spec: ScenarioSpec,
    workers: int = 1,
    granularity: Optional[str] = None,
    cache: Optional[TaskCache] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    use_processes: Optional[bool] = None,
    renew_interval: Optional[float] = None,
) -> Coordinator:
    """Execute a scenario's schedule through a coordinator with local workers.

    ``workers == 1`` drains the queue on the calling thread (no pool);
    ``workers > 1`` starts that many worker threads sharing the persistent
    :func:`shared_process_pool` (``use_processes=False`` keeps execution on
    the threads themselves — useful in tests that monkeypatch task
    execution).  The pool outlives the call, so repeated micro-scale runs
    pay the fork + warm-up cost once; every error path shuts it down
    deterministically before raising.  Returns the finished coordinator;
    call ``results()`` for the task results in schedule order.  Raises the
    first worker error when the run could not finish.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    coordinator = Coordinator(
        spec,
        workers_hint=workers,
        granularity=granularity,
        cache=cache,
        lease_timeout=lease_timeout,
        metrics=global_metrics(),
    )
    # A live dashboard (``repro top``) tails the file named by
    # REPRO_METRICS_OUT; publish the global registry there during the run.
    publisher: Optional[MetricsPublisher] = None
    metrics_path = os.environ.get(METRICS_OUT_ENV_VAR)
    if metrics_path:
        publisher = MetricsPublisher(global_metrics(), metrics_path).start()
    try:
        if use_processes is None:
            use_processes = workers > 1
        if workers == 1 and not use_processes:
            Worker("worker-0", coordinator, renew_interval=renew_interval).drain()
        else:
            pool: Optional[ProcessPoolExecutor] = None
            try:
                if use_processes:
                    pool = shared_process_pool(workers)
                threads = [
                    Worker(
                        f"worker-{index}",
                        coordinator,
                        executor=pool,
                        renew_interval=renew_interval,
                    )
                    for index in range(workers)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            except BaseException:
                if pool is not None:
                    shutdown_shared_pool()
                raise
            if not coordinator.done:
                if pool is not None:
                    shutdown_shared_pool()
                errors = [
                    thread.error for thread in threads if thread.error is not None
                ]
                if errors:
                    raise errors[0]
                raise RuntimeError("coordinator run ended with incomplete tasks")
    finally:
        if publisher is not None:
            publisher.stop()
    return coordinator
