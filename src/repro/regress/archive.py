"""The pinned fingerprint archive and its drift reports.

An archive maps :class:`Coordinate` keys — one per
``(workload, algorithm, engine, seed, alpha)`` grid point of the workload
zoo — to the frontier fingerprint pinned for that coordinate.  The pinned
file lives at ``tests/regression/archive.json`` and is the regression
baseline: CI re-runs the zoo and any fingerprint that differs from its pin
is reported as drift, naming the exact coordinate.

Design rules:

* **Versioned format** (:data:`ARCHIVE_FORMAT`): an archive written under a
  different format tag is rejected outright, never reinterpreted.
* **Provenance-keyed entries**: every entry stores its coordinate *and* the
  coordinate's provenance signature (the same canonical-JSON + format-tag
  SHA-256 convention as :func:`repro.bench.tasks.task_provenance_hash`).
  Loading recomputes each signature; a mismatch means the entry was
  hand-edited or truncated and the load fails naming it — a corrupt entry
  must never silently shrink the baseline.
* **Atomic rewrite**: saving goes through
  :func:`repro.dist.cache.write_json_atomic` (write temp file, fsync,
  rename), so a crashed ``record`` can never leave a half-written pin file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.dist.cache import write_json_atomic

#: Version tag of the archive file format.
ARCHIVE_FORMAT = "repro-regress-archive-v1"

#: Version tag of the coordinate-signature derivation (see
#: :data:`repro.bench.tasks.PROVENANCE_KEY_FORMAT` for the convention).
REGRESS_KEY_FORMAT = "repro-regress-key-v1"


def _canonical_json(payload: object) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace (stable across runs)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True, order=True)
class Coordinate:
    """One grid point of the regression zoo.

    ``workload`` names the query distribution (shape + statistics model,
    e.g. ``"snowflake-zipf"``); ``alpha`` is the approximation factor for
    DP-style algorithms and ``None`` otherwise.
    """

    workload: str
    algorithm: str
    engine: str
    seed: int
    alpha: float | None = None

    @property
    def label(self) -> str:
        """Human-readable coordinate label used in reports."""
        parts = f"{self.workload} / {self.algorithm} / {self.engine} / seed={self.seed}"
        if self.alpha is not None:
            parts += f" / alpha={self.alpha}"
        return parts

    def signature(self) -> str:
        """Provenance signature of the coordinate (hex SHA-256)."""
        payload = {"format": REGRESS_KEY_FORMAT, "coordinate": self.to_json_dict()}
        return hashlib.sha256(_canonical_json(payload)).hexdigest()

    # -------------------------------------------------------- serialization
    def to_json_dict(self) -> dict:
        return {
            "workload": self.workload,
            "algorithm": self.algorithm,
            "engine": self.engine,
            "seed": self.seed,
            "alpha": self.alpha,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "Coordinate":
        try:
            alpha = data["alpha"]
            return cls(
                workload=str(data["workload"]),
                algorithm=str(data["algorithm"]),
                engine=str(data["engine"]),
                seed=int(data["seed"]),
                alpha=None if alpha is None else float(alpha),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"invalid coordinate {data!r}: {error}") from None


@dataclass(frozen=True)
class ArchiveEntry:
    """One pinned result: a coordinate, its fingerprint, the frontier size."""

    coordinate: Coordinate
    fingerprint: str
    frontier_size: int

    def to_json_dict(self) -> dict:
        return {
            "coordinate": self.coordinate.to_json_dict(),
            "signature": self.coordinate.signature(),
            "fingerprint": self.fingerprint,
            "frontier_size": self.frontier_size,
        }


class Archive:
    """In-memory archive: coordinate signature → :class:`ArchiveEntry`."""

    def __init__(self, entries: Iterable[ArchiveEntry] = ()) -> None:
        self._entries: Dict[str, ArchiveEntry] = {}
        for entry in entries:
            self.record(entry)

    def record(self, entry: ArchiveEntry) -> None:
        """Pin (or re-pin) one entry."""
        self._entries[entry.coordinate.signature()] = entry

    def get(self, coordinate: Coordinate) -> ArchiveEntry | None:
        """The pinned entry for ``coordinate``, if any."""
        return self._entries.get(coordinate.signature())

    def entries(self) -> List[ArchiveEntry]:
        """All entries, sorted by coordinate (stable file diffs)."""
        return sorted(self._entries.values(), key=lambda entry: entry.coordinate)

    def __len__(self) -> int:
        return len(self._entries)

    # -------------------------------------------------------- serialization
    def to_json_dict(self) -> dict:
        return {
            "format": ARCHIVE_FORMAT,
            "entries": [entry.to_json_dict() for entry in self.entries()],
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "Archive":
        """Rebuild an archive, rejecting corrupt entries with clear errors."""
        if not isinstance(data, dict):
            raise ValueError(
                f"archive must be a JSON object, got {type(data).__name__}"
            )
        if data.get("format") != ARCHIVE_FORMAT:
            raise ValueError(
                f"not a {ARCHIVE_FORMAT} archive (format={data.get('format')!r})"
            )
        raw_entries = data.get("entries")
        if not isinstance(raw_entries, list):
            raise ValueError("archive needs an 'entries' list")
        archive = cls()
        for position, raw in enumerate(raw_entries):
            if not isinstance(raw, dict):
                raise ValueError(f"archive entry #{position}: not an object")
            try:
                coordinate = Coordinate.from_json_dict(raw["coordinate"])
                fingerprint = raw["fingerprint"]
                signature = raw["signature"]
                frontier_size = int(raw["frontier_size"])
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(f"archive entry #{position}: {error}") from None
            if not isinstance(fingerprint, str) or len(fingerprint) != 64:
                raise ValueError(
                    f"archive entry #{position} ({coordinate.label}): "
                    f"invalid fingerprint {fingerprint!r}"
                )
            if signature != coordinate.signature():
                raise ValueError(
                    f"archive entry #{position} ({coordinate.label}): "
                    f"signature does not match its coordinate — entry is corrupt"
                )
            if coordinate.signature() in archive._entries:
                raise ValueError(
                    f"archive entry #{position} ({coordinate.label}): "
                    f"coordinate pinned twice"
                )
            archive.record(ArchiveEntry(coordinate, fingerprint, frontier_size))
        return archive


def load_archive(path: str) -> Archive:
    """Load and validate a pinned archive file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON ({error})") from None
    try:
        return Archive.from_json_dict(data)
    except ValueError as error:
        raise ValueError(f"{path}: {error}") from None


def save_archive(archive: Archive, path: str) -> None:
    """Atomically (re)write the pinned archive file."""
    write_json_atomic(path, archive.to_json_dict())


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DiffReport:
    """Comparison of a fresh zoo run against the pinned archive.

    ``mismatches`` are coordinates whose fingerprints differ (regression
    drift); ``missing`` are pinned coordinates the fresh run did not cover
    (a silently shrunk zoo); ``unpinned`` are fresh coordinates with no pin
    (a grown zoo awaiting ``regress record``).  Only ``mismatches`` and
    ``missing`` fail a check.
    """

    matches: Tuple[Coordinate, ...]
    mismatches: Tuple[Tuple[Coordinate, str, str], ...]
    missing: Tuple[Coordinate, ...]
    unpinned: Tuple[Coordinate, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.missing

    def render(self) -> str:
        """Readable per-coordinate report."""
        lines = [
            f"regression archive diff: {len(self.matches)} match, "
            f"{len(self.mismatches)} mismatch, {len(self.missing)} missing, "
            f"{len(self.unpinned)} unpinned"
        ]
        for coordinate, pinned, fresh in self.mismatches:
            lines.append(f"  MISMATCH {coordinate.label}")
            lines.append(f"    pinned {pinned}")
            lines.append(f"    fresh  {fresh}")
        for coordinate in self.missing:
            lines.append(f"  MISSING  {coordinate.label} (pinned but not re-run)")
        for coordinate in self.unpinned:
            lines.append(f"  UNPINNED {coordinate.label} (run 'regress record')")
        if self.ok and not self.unpinned:
            lines.append("  all pinned fingerprints reproduced exactly")
        return "\n".join(lines)


def diff_archives(pinned: Archive, fresh: Archive) -> DiffReport:
    """Compare a fresh run against the pinned baseline."""
    matches: List[Coordinate] = []
    mismatches: List[Tuple[Coordinate, str, str]] = []
    missing: List[Coordinate] = []
    unpinned: List[Coordinate] = []
    for entry in pinned.entries():
        fresh_entry = fresh.get(entry.coordinate)
        if fresh_entry is None:
            missing.append(entry.coordinate)
        elif fresh_entry.fingerprint == entry.fingerprint:
            matches.append(entry.coordinate)
        else:
            mismatches.append(
                (entry.coordinate, entry.fingerprint, fresh_entry.fingerprint)
            )
    for entry in fresh.entries():
        if pinned.get(entry.coordinate) is None:
            unpinned.append(entry.coordinate)
    return DiffReport(
        matches=tuple(matches),
        mismatches=tuple(mismatches),
        missing=tuple(missing),
        unpinned=tuple(unpinned),
    )
