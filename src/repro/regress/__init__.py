"""Pinned frontier-fingerprint regression archive.

The optimizers in this library are deterministic functions of their seeds:
every frontier an algorithm produces is a pure function of
``(workload, algorithm, engine, seed)``.  That makes exact regression
testing possible — and this package implements it:

``fingerprint``
    Canonical frontier fingerprints: sorted cost rows (exact float64 hex,
    NaN/±inf safe) plus plan-shape digests, hashed under a versioned format
    tag.  Any change to any cost component or plan shape changes the
    fingerprint.
``archive``
    The pinned archive (``tests/regression/archive.json``): a versioned,
    atomically rewritten store of fingerprints keyed by provenance-hashed
    coordinates, and the diff machinery producing readable per-coordinate
    drift reports.
``zoo``
    The workload zoo grid — join-graph shapes × statistics models ×
    algorithms × plan engines — micro-scaled so the full sweep replays in
    CI seconds.

Entry point: the ``regress`` subcommand of ``python -m repro.bench.cli``
(``check`` / ``record`` / ``diff`` / ``lint``).
"""

from repro.regress.fingerprint import (
    FINGERPRINT_FORMAT,
    cost_row,
    fingerprint_rows,
    float_hex,
    frontier_fingerprint,
    frontier_rows,
    plan_shape_digest,
)
from repro.regress.archive import (
    ARCHIVE_FORMAT,
    Archive,
    ArchiveEntry,
    Coordinate,
    DiffReport,
    diff_archives,
    load_archive,
    save_archive,
)
from repro.regress.zoo import (
    ZOO_SEED,
    run_coordinate,
    run_zoo,
    zoo_coordinates,
)

__all__ = [
    "FINGERPRINT_FORMAT",
    "cost_row",
    "fingerprint_rows",
    "float_hex",
    "frontier_fingerprint",
    "frontier_rows",
    "plan_shape_digest",
    "ARCHIVE_FORMAT",
    "Archive",
    "ArchiveEntry",
    "Coordinate",
    "DiffReport",
    "diff_archives",
    "load_archive",
    "save_archive",
    "ZOO_SEED",
    "run_coordinate",
    "run_zoo",
    "zoo_coordinates",
]
