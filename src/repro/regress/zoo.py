"""The workload zoo: the regression grid and its runner.

The zoo spans every result-affecting axis of the library on micro-scaled
inputs, so the full sweep replays in CI seconds:

* **5 join-graph shapes** — chain, cycle, star, clique, snowflake;
* **4 statistics models** — ``uniform`` (the paper's Steinbrunn setup),
  ``zipf`` (Zipf-skewed cardinalities + correlated/low selectivities),
  ``minmax`` (Bruno's MinMax selectivities), and ``job`` (the bundled
  micro-scaled IMDB/JOB catalog, fixed real statistics);
* **8 algorithms** — DP(2), RMQ, II, SA, 2P, NSGA-II, WeightedSum,
  RandomSampling;
* **both plan engines** — ``arena`` (columnar) and ``object`` (plan trees).

Every coordinate re-derives its query, cost model and RNG streams from
:data:`ZOO_SEED` and the coordinate alone — the same purity discipline as
:mod:`repro.bench.tasks` — so the pinned fingerprints are reproducible on
any machine.  Randomized algorithms run a fixed micro step budget; DP runs
to completion under a step cap (its frontier stays empty until it
finishes), and a DP leaf that fails to finish raises instead of pinning a
half-run frontier.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Tuple

from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.bench.tasks import build_optimizer, build_test_case, reference_alpha
from repro.core.interface import run_steps
from repro.query.catalog import job_sample_catalog
from repro.query.generator import CardinalityModel, SelectivityModel
from repro.query.join_graph import GraphShape
from repro.regress.archive import Archive, ArchiveEntry, Coordinate
from repro.regress.fingerprint import fingerprint_rows, frontier_rows
from repro.utils.rng import derive_rng

#: Base seed of the whole zoo (the paper's SIGMOD publication date).
ZOO_SEED = 20160626

#: Tables per zoo query: the smallest count every shape supports
#: (snowflake needs ≥ 4) that still yields non-trivial plan spaces.
ZOO_NUM_TABLES = 5

#: Cost metrics per zoo query (the paper's time/buffer/disk pool).
ZOO_NUM_METRICS = 3

#: Step budget of randomized algorithms (micro-scaled for CI).
ZOO_STEPS = 3

#: Step cap under which DP must run to completion (its frontier is empty
#: until it finishes); generous versus the ~2^5 subsets of a zoo query.
DP_STEP_CAP = 4096

#: NSGA-II population at zoo scale.
ZOO_NSGA_POPULATION = 12

#: Join-graph shapes of the zoo grid.
ZOO_SHAPES: Tuple[GraphShape, ...] = (
    GraphShape.CHAIN,
    GraphShape.CYCLE,
    GraphShape.STAR,
    GraphShape.CLIQUE,
    GraphShape.SNOWFLAKE,
)

#: Algorithms of the zoo grid (report names of ``make_optimizer``).
ZOO_ALGORITHMS: Tuple[str, ...] = (
    "DP(2)",
    "RMQ",
    "II",
    "SA",
    "2P",
    "NSGA-II",
    "WeightedSum",
    "RandomSampling",
)

#: Plan engines of the zoo grid.
ZOO_ENGINES: Tuple[str, ...] = ("arena", "object")

#: Statistics models of the zoo grid, by name.
ZOO_STAT_MODELS: Tuple[str, ...] = ("uniform", "zipf", "minmax", "job")


def _stat_model_fields(stats: str) -> dict:
    """ScenarioSpec field overrides of one statistics model."""
    if stats == "uniform":
        return {}
    if stats == "zipf":
        return {
            "selectivity_model": SelectivityModel.CORRELATED,
            "cardinality_model": CardinalityModel.ZIPF,
        }
    if stats == "minmax":
        return {"selectivity_model": SelectivityModel.MINMAX}
    if stats == "job":
        return {"catalog_json": _job_catalog_json()}
    raise ValueError(f"unknown statistics model: {stats}")


_JOB_CATALOG_JSON_CACHE: List[str] = []


def _job_catalog_json() -> str:
    """Canonical JSON string of the bundled JOB catalog (cached)."""
    if not _JOB_CATALOG_JSON_CACHE:
        import json

        payload = job_sample_catalog().to_json_dict()
        _JOB_CATALOG_JSON_CACHE.append(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )
    return _JOB_CATALOG_JSON_CACHE[0]


def workload_name(shape: GraphShape, stats: str) -> str:
    """Zoo workload label, e.g. ``"snowflake-zipf"``."""
    return f"{shape.value}-{stats}"


def workload_spec(shape: GraphShape, stats: str) -> ScenarioSpec:
    """The scenario spec of one zoo workload.

    Reuses the benchmark harness' spec plumbing (query/metric derivation,
    scenario-level optimizer options) so zoo runs exercise the exact
    production code paths.
    """
    return ScenarioSpec(
        name=workload_name(shape, stats),
        description=f"regression-zoo workload {workload_name(shape, stats)}",
        graph_shapes=(shape,),
        table_counts=(ZOO_NUM_TABLES,),
        num_metrics=ZOO_NUM_METRICS,
        algorithms=ZOO_ALGORITHMS,
        num_test_cases=1,
        step_checkpoints=(ZOO_STEPS,),
        nsga_population=ZOO_NSGA_POPULATION,
        seed=ZOO_SEED,
        scale=ScenarioScale.SMOKE,
        **_stat_model_fields(stats),
    )


def zoo_coordinates() -> List[Coordinate]:
    """All grid points of the zoo, in canonical order."""
    coordinates: List[Coordinate] = []
    for shape in ZOO_SHAPES:
        for stats in ZOO_STAT_MODELS:
            for algorithm in ZOO_ALGORITHMS:
                for engine in ZOO_ENGINES:
                    coordinates.append(
                        Coordinate(
                            workload=workload_name(shape, stats),
                            algorithm=algorithm,
                            engine=engine,
                            seed=ZOO_SEED,
                            alpha=_algorithm_alpha(algorithm),
                        )
                    )
    return coordinates


def _algorithm_alpha(algorithm: str) -> float | None:
    """The α of DP-style algorithm names, ``None`` for everything else."""
    if algorithm.startswith("DP("):
        return reference_alpha(algorithm)
    return None


def _split_workload(workload: str) -> Tuple[GraphShape, str]:
    """Parse a workload label back into its (shape, statistics) pair."""
    shape_value, _, stats = workload.partition("-")
    try:
        shape = GraphShape(shape_value)
    except ValueError:
        raise ValueError(f"unknown workload {workload!r}") from None
    if stats not in ZOO_STAT_MODELS:
        raise ValueError(f"unknown workload {workload!r}")
    return shape, stats


@contextmanager
def _pinned_engine(engine: str) -> Iterator[None]:
    """Pin the plan engine via the ``REPRO_PLAN_ENGINE`` convention."""
    previous = os.environ.get("REPRO_PLAN_ENGINE")
    os.environ["REPRO_PLAN_ENGINE"] = engine
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_PLAN_ENGINE"]
        else:
            os.environ["REPRO_PLAN_ENGINE"] = previous


def run_coordinate(coordinate: Coordinate) -> ArchiveEntry:
    """Run one zoo coordinate and return its fresh archive entry.

    Pure in the :mod:`repro.bench.tasks` sense: the query, cost model, and
    algorithm RNG derive from the coordinate alone.
    """
    shape, stats = _split_workload(coordinate.workload)
    spec = workload_spec(shape, stats)
    if coordinate.seed != spec.seed:
        spec = ScenarioSpec.from_json_dict(
            {**spec.to_json_dict(), "seed": coordinate.seed}
        )
    with _pinned_engine(coordinate.engine):
        cost_model = build_test_case(spec, shape, ZOO_NUM_TABLES, 0)
        rng = derive_rng(
            spec.seed, "algo", coordinate.algorithm, str(shape), ZOO_NUM_TABLES, 0
        )
        optimizer = build_optimizer(coordinate.algorithm, cost_model, rng, spec)
        is_exhaustive = coordinate.alpha is not None
        run_steps(
            optimizer, max_steps=DP_STEP_CAP if is_exhaustive else ZOO_STEPS
        )
        if is_exhaustive and not optimizer.finished:
            raise RuntimeError(
                f"{coordinate.label}: DP did not finish within {DP_STEP_CAP} "
                f"steps — refusing to pin a partial frontier"
            )
        rows = frontier_rows(optimizer.frontier())
    return ArchiveEntry(
        coordinate=coordinate,
        fingerprint=fingerprint_rows(rows),
        frontier_size=len(rows),
    )


def run_zoo(
    coordinates: List[Coordinate] | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> Archive:
    """Run the full zoo (or a subset) and return the fresh archive.

    ``progress`` is called as ``progress(done, total)`` after every
    coordinate — the CLI uses it for a coarse heartbeat.
    """
    todo = zoo_coordinates() if coordinates is None else coordinates
    archive = Archive()
    for index, coordinate in enumerate(todo):
        archive.record(run_coordinate(coordinate))
        if progress is not None:
            progress(index + 1, len(todo))
    return archive


def coverage_summary(archive: Archive) -> Dict[str, int]:
    """Distinct shapes / statistics models / algorithms / engines pinned."""
    shapes = set()
    stats = set()
    algorithms = set()
    engines = set()
    for entry in archive.entries():
        shape, stat = _split_workload(entry.coordinate.workload)
        shapes.add(shape)
        stats.add(stat)
        algorithms.add(entry.coordinate.algorithm)
        engines.add(entry.coordinate.engine)
    return {
        "shapes": len(shapes),
        "stat_models": len(stats),
        "algorithms": len(algorithms),
        "engines": len(engines),
        "entries": len(archive),
    }
