"""Canonical frontier fingerprints.

A fingerprint compresses one Pareto frontier — the list of plans an
optimizer returns — into a single hex digest that changes whenever *any*
result-affecting detail changes, and never changes otherwise:

* **Cost exactness** — every cost component is encoded as the big-endian
  IEEE-754 float64 hex of its bit pattern (:func:`float_hex`), so the
  fingerprint distinguishes values that ``repr`` or a float comparison with
  tolerance would conflate, and handles ``±inf`` exactly.  NaNs are
  canonicalized to the quiet-NaN bit pattern first: any NaN payload
  fingerprints identically (Python cannot round-trip payloads portably),
  but NaN never fingerprints equal to any number.
* **Plan shapes** — each plan contributes a structural digest
  (:func:`plan_shape_digest`) covering the join tree, table indices and
  operator choices, so a cost-identical frontier built from different plans
  still drifts.
* **Order invariance** — rows are sorted canonically before hashing
  (:func:`fingerprint_rows`), so frontier insertion order, plan-engine
  internals, and set iteration order cannot affect the digest.

Examples
--------
>>> from repro.regress.fingerprint import cost_row, fingerprint_rows
>>> rows = [cost_row([1.0, 2.0]), cost_row([3.0, 4.0])]
>>> fingerprint_rows(rows) == fingerprint_rows(list(reversed(rows)))
True
>>> fingerprint_rows(rows) == fingerprint_rows([cost_row([1.0, 2.0])])
False
>>> cost_row([1.0])["cost"]        # exact float64 bit pattern, big-endian
['3ff0000000000000']
"""

from __future__ import annotations

import hashlib
import json
import math
import struct
from typing import Dict, Iterable, List, Sequence

from repro.plans.plan import Plan

#: Version tag of the fingerprint derivation.  Bump whenever the row format
#: or hashing changes — every pinned fingerprint then reads as drift instead
#: of silently comparing digests computed under different rules.
FINGERPRINT_FORMAT = "repro-frontier-fingerprint-v1"

#: Length (hex chars) of per-plan shape digests.
_SHAPE_DIGEST_LEN = 16


def _canonical_json(payload: object) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace (stable across runs)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def float_hex(value: float) -> str:
    """Exact big-endian IEEE-754 float64 hex of ``value``.

    ``-0.0`` and ``0.0`` encode differently (they are different results);
    ``±inf`` encode exactly; NaNs are canonicalized to the positive quiet
    NaN so every NaN fingerprints identically — and never equal to a number.

    >>> float_hex(1.0)
    '3ff0000000000000'
    >>> float_hex(float("inf"))
    '7ff0000000000000'
    >>> float_hex(float("nan"))
    '7ff8000000000000'
    """
    number = float(value)
    if math.isnan(number):
        number = float("nan")
    return struct.pack(">d", number).hex()


def cost_row(costs: Sequence[float], shape: str = "") -> Dict[str, object]:
    """Build one canonical frontier row from a raw cost vector.

    ``shape`` is the plan-shape digest; synthetic rows (tests, external
    tooling) may leave it empty.
    """
    return {"cost": [float_hex(value) for value in costs], "shape": shape}


def _shape_signature(plan: Plan) -> object:
    """Recursive structural signature: tree shape, tables, operators."""
    if plan.is_join:
        return [
            "join",
            plan.operator.name,
            _shape_signature(plan.outer),
            _shape_signature(plan.inner),
        ]
    return ["scan", plan.operator.name, plan.table.index]


def plan_shape_digest(plan: Plan) -> str:
    """Short hex digest of a plan's full structure.

    Covers the join-tree shape, the base-table indices at the leaves, and
    every scan/join operator choice — two plans share a digest exactly when
    they are structurally equal.
    """
    digest = hashlib.sha256(_canonical_json(_shape_signature(plan))).hexdigest()
    return digest[:_SHAPE_DIGEST_LEN]


def frontier_rows(frontier: Iterable[Plan]) -> List[Dict[str, object]]:
    """Canonical rows of a frontier: one :func:`cost_row` per plan."""
    return [cost_row(plan.cost, shape=plan_shape_digest(plan)) for plan in frontier]


def fingerprint_rows(rows: Iterable[Dict[str, object]]) -> str:
    """Hex SHA-256 fingerprint of a row set, invariant to row order.

    Rows are sorted by their canonical JSON encoding before hashing, so the
    digest depends only on the row *multiset* — duplicated rows (distinct
    plans with identical costs and shapes are legal frontier members) are
    preserved, insertion order is not.
    """
    encoded = sorted(_canonical_json(row).decode("ascii") for row in rows)
    payload = {"format": FINGERPRINT_FORMAT, "rows": encoded}
    return hashlib.sha256(_canonical_json(payload)).hexdigest()


def frontier_fingerprint(frontier: Iterable[Plan]) -> str:
    """Fingerprint of a frontier of :class:`~repro.plans.plan.Plan` objects."""
    return fingerprint_rows(frontier_rows(frontier))
